"""Command-line interface: list and run the paper's experiments.

Usage::

    esharing list
    esharing run table5
    esharing run table2 --seed 1 --csv out.csv
    esharing run all
    esharing sweep table5 --seeds 0,1,2,3 --workers 4   # parallel seed grid
    esharing sweep pipeline --seeds 0:4 --workers 4     # merged sweep table
    esharing stats                     # describe the synthetic workload
    esharing stats --mobike trips.csv  # describe a real Mobike CSV
    esharing stats --mobike trips.csv --workers 4       # sharded ingest
    esharing checkpoint --dir ckpt --trips 400 --crash-at 150
    esharing resume --dir ckpt --trips 400   # recover + finish the workload
    esharing serve --dir city --shards 4 --supervise   # self-healing fleet
    esharing scrub --dir city                # repair snapshots/WAL in place
    esharing scrub --dir city --check        # verify only; exit 4 on damage

(or ``python -m repro.cli ...``)

Exit codes: 0 success; 2 usage error; 3 a serve run ended halted (its
durable state is intact — inspect with ``esharing incidents`` and
``esharing scrub --check``); 4 ``scrub`` found damage (``--check``) or
damage it could not repair.
"""

from __future__ import annotations

import argparse
import math
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="esharing",
        description="E-Sharing (ICDCS 2020) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--seed", type=int, default=0, help="RNG seed")
    run.add_argument("--csv", default=None, help="also write rows to this CSV path")
    sweep = sub.add_parser(
        "sweep",
        help="run one experiment across a seed grid, fanned over worker "
        "processes (results merge in seed order — identical for any "
        "--workers value)",
    )
    sweep.add_argument("experiment", help="experiment id (see 'list')")
    sweep.add_argument(
        "--seeds",
        default="0,1,2,3",
        help="seed grid: comma list ('0,1,5') or a 'start:stop' range ('0:8')",
    )
    sweep.add_argument(
        "--workers", type=int, default=1,
        help="worker processes (1 = serial in-process reference path)",
    )
    sweep.add_argument(
        "--volume", type=int, default=600,
        help="trip volume per cell (pipeline sweep only)",
    )
    stats = sub.add_parser(
        "stats", help="describe a trip workload (synthetic or a Mobike CSV)"
    )
    stats.add_argument("--mobike", default=None, help="path to a Mobike-schema CSV")
    stats.add_argument("--seed", type=int, default=0, help="synthetic workload seed")
    stats.add_argument("--days", type=int, default=14, help="synthetic workload days")
    stats.add_argument(
        "--volume", type=int, default=1500, help="synthetic weekday trip volume"
    )
    stats.add_argument(
        "--workers", type=int, default=1,
        help="CSV parse workers (--mobike only); sharded ingest is "
        "byte-identical to the serial load",
    )
    ckpt = sub.add_parser(
        "checkpoint",
        help="run a demo workload under the crash-safe checkpointing service",
    )
    ckpt.add_argument(
        "--dir", required=True, help="checkpoint directory (snapshots + journal)"
    )
    ckpt.add_argument("--trips", type=int, default=400, help="demo workload length")
    ckpt.add_argument(
        "--every", type=int, default=100, help="trips between periodic snapshots"
    )
    ckpt.add_argument("--seed", type=int, default=0, help="workload seed")
    ckpt.add_argument("--bikes", type=int, default=80, help="fleet size")
    ckpt.add_argument(
        "--crash-at",
        type=int,
        default=None,
        dest="crash_at",
        help="stop after this many trips to simulate a crash",
    )
    serve = sub.add_parser(
        "serve",
        help="serve a demo workload through the live placement service, "
        "optionally under the guarded runtime",
    )
    serve.add_argument(
        "--dir", required=True, help="checkpoint directory (snapshots + journal)"
    )
    serve.add_argument("--trips", type=int, default=400, help="demo workload length")
    serve.add_argument(
        "--every", type=int, default=100, help="trips between periodic snapshots"
    )
    serve.add_argument("--seed", type=int, default=0, help="workload seed")
    serve.add_argument("--bikes", type=int, default=80, help="fleet size")
    serve.add_argument(
        "--guard",
        action="store_true",
        help="wrap the service in the guarded runtime (validation, "
        "watermark reordering, circuit breakers, incident log)",
    )
    serve.add_argument(
        "--lateness",
        type=float,
        default=600.0,
        help="watermark lateness bound in seconds (--guard only)",
    )
    serve.add_argument(
        "--chaos",
        action="store_true",
        help="deliver the workload through a faulty upstream "
        "(duplicates, drops, reorder, clock skew, garbage fields)",
    )
    serve.add_argument(
        "--block-size",
        type=int,
        default=256,
        help="trips per columnar block on the stream hot path "
        "(1 = the scalar per-trip pipeline)",
    )
    serve.add_argument(
        "--scenario",
        default=None,
        help="generate the workload from a named loadgen surge scenario "
        "(baseline, festival, stadium, weather, rush) instead of the "
        "uniform demo stream",
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=1,
        help="partition the plane by geohash prefix and serve each "
        "territory as an independently checkpointed guarded shard "
        "(> 1 enables the geo-sharded runtime with cross-shard "
        "referrals; resume with ShardedRuntime.recover)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=1,
        help="process workers to fan shards across (--shards > 1 only); "
        "any worker count is bit-identical to serial",
    )
    serve.add_argument(
        "--supervise",
        action="store_true",
        help="run the sharded fleet under the self-healing supervisor "
        "(--shards > 1 only): crashed shards restart from their own "
        "durable state, poison blocks are quarantined with provenance, "
        "and the storage scrubber runs after the epoch",
    )
    scrub = sub.add_parser(
        "scrub",
        help="verify and repair the durable state of a checkpoint "
        "directory or sharded fleet root (snapshot checksums, WAL "
        "tails, orphan tmp files, advisory logs)",
    )
    scrub.add_argument(
        "--dir", required=True,
        help="checkpoint directory or fleet root to scrub",
    )
    scrub.add_argument(
        "--check",
        action="store_true",
        help="report damage without touching any file; exit 4 if "
        "anything is found",
    )
    inc = sub.add_parser(
        "incidents",
        help="inspect the incident and dead-letter logs a guarded "
        "'serve --guard' run wrote",
    )
    inc.add_argument(
        "--dir", required=True, help="checkpoint directory of the guarded run"
    )
    inc.add_argument(
        "--limit", type=int, default=20, help="detail rows to show per log"
    )
    inc.add_argument(
        "--kind",
        default=None,
        help="only show rows whose incident kind / dead-letter rule "
        "contains this substring (e.g. shed, breaker, ladder, "
        "backpressure)",
    )
    res = sub.add_parser(
        "resume", help="recover a checkpointed run and optionally finish the workload"
    )
    res.add_argument("--dir", required=True, help="checkpoint directory to recover")
    res.add_argument(
        "--trips",
        type=int,
        default=None,
        help="regenerate the demo workload (same --seed) and serve the "
        "remainder; already-served trips are screened as duplicates",
    )
    res.add_argument("--seed", type=int, default=0, help="workload seed")
    res.add_argument(
        "--every", type=int, default=100, help="snapshot cadence going forward"
    )
    return parser


def _run_one(exp_id: str, seed: int, csv_path: Optional[str]) -> None:
    runner = EXPERIMENTS[exp_id]
    start = time.time()
    result = runner(seed=seed)
    elapsed = time.time() - start
    print(result.to_text())
    print(f"({exp_id} finished in {elapsed:.1f}s)")
    if csv_path:
        result.save_csv(csv_path)
        print(f"rows written to {csv_path}")


def _run_stats(args) -> int:
    from .datasets import SyntheticConfig, describe, load_mobike_csv, mobike_like_dataset
    from .geo import UniformGrid

    if args.mobike:
        dataset = load_mobike_csv(args.mobike, workers=args.workers)
        source = args.mobike
    else:
        dataset = mobike_like_dataset(
            seed=args.seed,
            days=args.days,
            config=SyntheticConfig(
                trips_per_weekday=args.volume,
                trips_per_weekend_day=int(args.volume * 0.75),
            ),
        )
        source = f"synthetic (seed={args.seed}, days={args.days}, volume={args.volume})"
    grid = UniformGrid(dataset.bounding_box(margin=50.0), cell_size=150.0)
    print(f"workload: {source}")
    print(describe(dataset, grid).to_text())
    return 0


def _parse_seed_grid(spec: str) -> List[int]:
    """Parse a ``--seeds`` spec: ``"0,1,5"`` or a ``"start:stop"`` range."""
    spec = spec.strip()
    if ":" in spec:
        start_s, stop_s = spec.split(":", 1)
        start, stop = int(start_s), int(stop_s)
        if stop <= start:
            raise ValueError(f"empty seed range {spec!r}")
        return list(range(start, stop))
    seeds = [int(s) for s in spec.split(",") if s.strip()]
    if not seeds:
        raise ValueError(f"no seeds in {spec!r}")
    return seeds


def _run_sweep(args) -> int:
    from .experiments import ExperimentResult, run_pipeline_sweep
    from .parallel.cells import experiment_cell
    from .parallel.pool import ParallelRunner

    try:
        seeds = _parse_seed_grid(args.seeds)
    except ValueError as exc:
        print(f"bad --seeds: {exc}", file=sys.stderr)
        return 2
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    start = time.time()
    if args.experiment == "pipeline":
        # The pipeline sweep merges all seeds into one table (and one
        # whole-sweep phase-timer breakdown).
        result = run_pipeline_sweep(seeds, volume=args.volume, workers=args.workers)
        print(result.to_text())
    else:
        cells = ParallelRunner(args.workers).map(
            experiment_cell,
            [(args.experiment, s) for s in seeds],
            labels=[f"{args.experiment}[seed={s}]" for s in seeds],
        )
        for cell in cells:  # canonical seed order, independent of workers
            result = ExperimentResult(
                experiment_id=cell["experiment_id"],
                title=f"{cell['title']} [seed={cell['seed']}]",
                headers=cell["headers"],
                rows=cell["rows"],
                notes=cell["notes"],
            )
            print(result.to_text())
            print()
    elapsed = time.time() - start
    print(
        f"({args.experiment} x {len(seeds)} seeds finished in {elapsed:.1f}s "
        f"on {args.workers} worker(s))"
    )
    return 0


def _demo_trips(seed: int, trips: int):
    """Deterministic demo workload shared by ``checkpoint`` and ``resume``.

    Both commands must regenerate the identical stream from the same
    seed so that ``resume`` can replay the full workload and let the
    duplicate screen drop what the crashed run already served.
    """
    from .datasets import SyntheticConfig, mobike_like_dataset

    volume = max(trips, 50)
    dataset = mobike_like_dataset(
        seed=seed,
        days=3,
        config=SyntheticConfig(
            trips_per_weekday=volume, trips_per_weekend_day=volume
        ),
    )
    return list(dataset)[:trips]


def _serve_workload(args):
    """The serve workload: the demo stream, or a named loadgen scenario.

    ``--scenario`` validity is checked by :func:`_run_serve` before any
    dispatch, so this only builds.
    """
    if getattr(args, "scenario", None) is None:
        return _demo_trips(args.seed, args.trips)
    from .geo.points import BoundingBox
    from .loadgen import ODConfig, TripStream, make_scenario

    plane = 2000.0
    rate = 2400.0  # city-wide trips/hour; duration scales to --trips
    bounds = BoundingBox(0.0, 0.0, plane, plane)
    duration_s = max(60.0, args.trips * 3600.0 / rate)
    schedule = make_scenario(args.scenario, bounds, duration_s)
    return TripStream(
        ODConfig(bounds=bounds, trips_per_hour=rate), schedule, seed=args.seed
    ).records(duration_s)


_DEMO_COST = 8000.0


def _demo_service(records, seed: int, bikes: int):
    """Build the demo planner+fleet service over a workload's extent."""
    import numpy as np

    from .core.costs import constant_facility_cost
    from .core.esharing import EsharingConfig, EsharingPlanner
    from .core.streaming import PlacementService
    from .energy.fleet import Fleet
    from .geo.points import Point

    xs = [r.start.x for r in records]
    ys = [r.start.y for r in records]
    anchors = [
        Point(float(x), float(y))
        for x in np.linspace(min(xs), max(xs), 3)
        for y in np.linspace(min(ys), max(ys), 3)
    ]
    historical = np.asarray([[r.start.x, r.start.y] for r in records], dtype=float)
    planner = EsharingPlanner(
        anchors,
        constant_facility_cost(_DEMO_COST),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(),
    )
    fleet = Fleet(
        planner.stations, n_bikes=bikes, rng=np.random.default_rng(seed + 2)
    )
    return PlacementService(planner, fleet)


def _run_checkpoint(args) -> int:
    from .resilience import CheckpointingService, constant_cost_spec

    records = _demo_trips(args.seed, args.trips)
    wrapped = CheckpointingService(
        _demo_service(records, args.seed, args.bikes),
        args.dir,
        checkpoint_every=args.every,
        facility_cost_spec=constant_cost_spec(_DEMO_COST),
    )
    served = len(records) if args.crash_at is None else min(args.crash_at, len(records))
    for record in records[:served]:
        wrapped.handle_trip(record)
    if args.crash_at is None:
        # Clean completion gets a final snapshot; a simulated crash does
        # not, so 'resume' genuinely exercises the journal-tail replay.
        wrapped.checkpoint()
    wrapped.close()
    print(f"served {served}/{len(records)} trips; checkpoints in {args.dir}")
    if served < len(records):
        print(
            "stopped early (simulated crash); "
            "run 'esharing resume' to recover and finish"
        )
    return 0


def _run_serve_sharded(args) -> int:
    """``esharing serve --shards N``: the geo-sharded fleet."""
    import numpy as np

    from .geo import geohash
    from .geo.distance import LocalProjection
    from .geo.points import BoundingBox, Point
    from .guard import GuardConfig, ValidationConfig
    from .resilience.chaos import ChaosConfig, FaultInjector
    from .shard import ShardPlan, ShardedRuntime

    clean = _serve_workload(args)
    records = clean
    if args.chaos:
        injector = FaultInjector(ChaosConfig(
            seed=args.seed, p_duplicate=0.03, p_drop=0.03, p_swap=0.05,
            p_clock_skew=0.02, skew_max_s=900.0, p_garbage=0.02,
            p_late=0.02, late_max_positions=8,
        ))
        records = injector.mutate_trips(clean)
        print(f"chaos upstream: {injector.summary().to_text()}")

    xs = [r.start.x for r in clean] + [r.end.x for r in clean]
    ys = [r.start.y for r in clean] + [r.end.y for r in clean]
    box = BoundingBox(min(xs), min(ys), max(xs), max(ys))
    demand = np.asarray([[r.end.x, r.end.y] for r in clean], dtype=float)
    plan = ShardPlan.from_bounds(box, args.shards, demand=demand)

    # City-wide anchors: a 3x3 grid over the extent, plus each
    # territory's first-cell centre so every shard owns at least one
    # anchor (and one historical row) however the split fell.
    proj = LocalProjection(plan.ref_lat, plan.ref_lon)
    anchors = [
        Point(float(x), float(y))
        for x in np.linspace(box.min_x, box.max_x, 3)
        for y in np.linspace(box.min_y, box.max_y, 3)
    ]
    for sid in range(plan.n_shards):
        lat, lon = geohash.decode(plan.cells_of_shard(sid)[0])
        anchors.append(proj.to_plane(lat, lon))
    historical = np.vstack([demand, [[p.x, p.y] for p in anchors]])

    margin = 500.0
    guard = GuardConfig(
        validation=ValidationConfig(
            bounds=BoundingBox(
                box.min_x - margin, box.min_y - margin,
                box.max_x + margin, box.max_y + margin,
            ),
            max_backwards_s=3600.0,
        ),
        lateness_s=args.lateness,
    )
    runtime = ShardedRuntime(
        plan, args.dir, anchors, historical, seed=args.seed,
        n_bikes=args.bikes, cost_value=_DEMO_COST, guard=guard,
        checkpoint_every=args.every,
    )
    if args.supervise:
        from .guard.runtime import HALTED
        from .shard import FleetSupervisor

        supervisor = FleetSupervisor(runtime)
        outcome = supervisor.serve(
            records, workers=args.workers, block_size=args.block_size
        )
        for report in outcome.reports:
            extra = ""
            if report.restarts:
                extra = f", {report.restarts} restart(s)"
            if report.quarantined:
                extra += f", {len(report.quarantined)} quarantined block(s)"
            inner = report.report
            counts = (
                f"{inner.offered} offered, {inner.served} served, "
                f"{inner.deadlettered} dead-lettered"
                if inner is not None else f"halted: {report.error}"
            )
            print(
                f"shard {report.shard_id:03d}: {counts}, "
                f"health {report.state}{extra}"
            )
        scrub_note = ""
        if outcome.scrub is not None and not outcome.scrub.clean:
            scrub_note = (
                f"; scrub repaired {outcome.scrub.repaired} finding(s)"
            )
        print(
            f"supervised run ({plan.n_shards} shards, {args.workers} "
            f"worker(s)): {outcome.served} served, {outcome.restarts} "
            f"restart(s), {len(outcome.quarantined)} quarantined block(s), "
            f"fleet health {outcome.health}{scrub_note}"
        )
        print(f"per-shard checkpoints in {args.dir}")
        if outcome.health == HALTED:
            print(
                "fleet ended halted; durable state kept for inspection",
                file=sys.stderr,
            )
            return 3
        return 0
    from .guard.runtime import HALTED

    outcome = runtime.serve(
        records, workers=args.workers, block_size=args.block_size
    )
    for report in outcome.reports:
        print(
            f"shard {report.shard_id:03d}: {report.offered} offered, "
            f"{report.served} served, {report.deadlettered} dead-lettered, "
            f"{report.degraded} degraded, health {report.health}"
        )
    print(
        f"sharded run ({plan.n_shards} shards, {args.workers} worker(s)): "
        f"{outcome.served} served, {len(outcome.referrals)} cross-shard "
        f"referral(s), worst health {outcome.health}"
    )
    print(f"per-shard checkpoints in {args.dir}")
    if outcome.health == HALTED:
        print(
            "fleet ended halted; durable state kept for inspection "
            "(consider 'esharing scrub' and '--supervise')",
            file=sys.stderr,
        )
        return 3
    return 0


def _run_serve(args) -> int:
    from pathlib import Path

    from .geo.points import BoundingBox
    from .guard import GuardConfig, GuardedRuntime, ValidationConfig
    from .resilience import CheckpointingService, constant_cost_spec
    from .resilience.chaos import ChaosConfig, FaultInjector

    if args.shards < 1:
        print(f"--shards must be >= 1, got {args.shards}", file=sys.stderr)
        return 2
    if args.block_size < 1:
        print(f"--block-size must be >= 1, got {args.block_size}", file=sys.stderr)
        return 2
    if args.scenario is not None:
        from .loadgen import SCENARIOS

        if args.scenario not in SCENARIOS:
            print(
                f"unknown scenario {args.scenario!r} "
                f"(known: {', '.join(sorted(SCENARIOS))})",
                file=sys.stderr,
            )
            return 2
    if args.shards > 1:
        return _run_serve_sharded(args)
    records = _serve_workload(args)
    if args.chaos:
        injector = FaultInjector(ChaosConfig(
            seed=args.seed, p_duplicate=0.03, p_drop=0.03, p_swap=0.05,
            p_clock_skew=0.02, skew_max_s=900.0, p_garbage=0.02,
            p_late=0.02, late_max_positions=8,
        ))
        records = injector.mutate_trips(records)
        print(f"chaos upstream: {injector.summary().to_text()}")
        if not args.guard:
            print(
                "warning: --chaos without --guard feeds raw faults to the "
                "unguarded service", file=sys.stderr,
            )
    wrapped = CheckpointingService(
        _demo_service(records, args.seed, args.bikes),
        args.dir,
        checkpoint_every=args.every,
        facility_cost_spec=constant_cost_spec(_DEMO_COST),
    )
    if not args.guard:
        if args.block_size == 1:
            served = sum(1 for r in records if wrapped.handle_trip(r) is not None)
        else:
            served = 0
            for lo in range(0, len(records), args.block_size):
                chunk = records[lo : lo + args.block_size]
                served += sum(
                    1 for r in wrapped.handle_block(chunk) if r is not None
                )
        wrapped.checkpoint()
        wrapped.close()
        print(f"served {served}/{len(records)} trips; checkpoints in {args.dir}")
        return 0

    # The city plane: the clean workload's extent plus a margin wide
    # enough that chaos-skewed-but-sane events still pass the bounds rule.
    xs = [r.start.x for r in records] + [r.end.x for r in records]
    ys = [r.start.y for r in records] + [r.end.y for r in records]
    finite_xs = [x for x in xs if math.isfinite(x) and abs(x) < 1e6]
    finite_ys = [y for y in ys if math.isfinite(y) and abs(y) < 1e6]
    box = BoundingBox(
        min(finite_xs) - 500.0, min(finite_ys) - 500.0,
        max(finite_xs) + 500.0, max(finite_ys) + 500.0,
    )
    from .errors import RuntimeHaltedError

    runtime = GuardedRuntime(
        wrapped,
        GuardConfig(
            validation=ValidationConfig(bounds=box, max_backwards_s=3600.0),
            lateness_s=args.lateness,
        ),
    )
    logs = Path(args.dir) / "guard-logs"
    try:
        runtime.serve(records, block_size=args.block_size)
    except RuntimeHaltedError:
        # Durability was lost mid-stream; keep the logs and journal for
        # the operator and report the halt through the exit code.
        runtime.flush_logs(logs)
        runtime.close()
        print(
            f"guarded run HALTED: {runtime.halt_reason} "
            f"({runtime.served} served before the halt)",
            file=sys.stderr,
        )
        print(f"incident and dead-letter logs in {logs}")
        return 3
    runtime.consistency_check()
    runtime.flush_logs(logs)
    runtime.inner.checkpoint()
    runtime.close()
    print(
        f"guarded run: {runtime.validator.offered} offered, "
        f"{runtime.served} served, {runtime.duplicates} duplicates screened, "
        f"{runtime.sink.total} dead-lettered, "
        f"{len(runtime.degraded_decisions)} degraded, "
        f"final health {runtime.health}"
    )
    print(f"incident and dead-letter logs in {logs}")
    return 0


def _run_incidents(args) -> int:
    import json
    from pathlib import Path

    logs = Path(args.dir) / "guard-logs"
    missing = True
    for name, fields in (
        ("incidents.jsonl", ("seq", "kind", "detail")),
        ("deadletter.jsonl", ("seq", "rule", "reason", "order_id")),
    ):
        current = logs / name
        # Size-capped rotation keeps at most one predecessor file
        # (incidents.jsonl -> incidents.1.jsonl); read oldest first.
        rotated = current.with_name(f"{current.stem}.1{current.suffix}")
        paths = [p for p in (rotated, current) if p.exists()]
        if not paths:
            continue
        missing = False
        rows = []
        torn = 0
        for path in paths:
            for line in path.read_text().splitlines():
                if not line.strip():
                    continue
                try:
                    rows.append(json.loads(line))
                except ValueError:
                    # A torn trailing line is the normal signature of a
                    # crash mid-flush — skip it rather than refusing the
                    # whole log.
                    torn += 1
        kind = getattr(args, "kind", None)
        if kind:
            # Incident rows carry 'kind', dead-letter rows 'rule' — one
            # filter serves both logs (shed rows match via their rule).
            total = len(rows)
            rows = [
                row
                for row in rows
                if kind in str(row.get("kind") or row.get("rule") or "")
            ]
            suffix = f" matching {kind!r} (of {total})"
        else:
            suffix = ""
        if len(paths) > 1:
            suffix += " (+ rotated)"
        print(f"{name}: {len(rows)} row(s){suffix}")
        if torn:
            print(
                f"warning: {name}: skipped {torn} torn line(s); "
                "run 'esharing scrub' to clean the log in place",
                file=sys.stderr,
            )
        for row in rows[-args.limit:]:
            print("  " + "  ".join(f"{f}={row.get(f)}" for f in fields))
    if missing:
        print(
            f"no guard logs under {logs}; run 'esharing serve --guard' first",
            file=sys.stderr,
        )
        return 2
    return 0


def _run_scrub(args) -> int:
    from pathlib import Path

    from .resilience import scrub_tree

    root = Path(args.dir)
    if not root.exists():
        print(f"no such directory: {root}", file=sys.stderr)
        return 2
    repair = not args.check
    report = scrub_tree(root, repair=repair, record=repair)
    print(report.to_text())
    if args.check:
        return 4 if report.findings else 0
    return 4 if report.refused else 0


def _run_resume(args) -> int:
    from .resilience import CheckpointingService

    wrapped = CheckpointingService.recover(args.dir, checkpoint_every=args.every)
    info = wrapped.last_recovery
    print(
        f"recovered from {info.snapshot_path} "
        f"(snapshot seq {info.snapshot_seq}, replayed {info.replayed} "
        "journal records)"
    )
    wrapped.consistency_check()
    print(f"{wrapped.applied_seq} trips applied; consistency check passed")
    if args.trips is not None:
        records = _demo_trips(args.seed, args.trips)
        fresh = sum(1 for r in records if wrapped.handle_trip(r) is not None)
        wrapped.consistency_check()
        print(
            f"continued: {fresh} new trips served "
            f"({len(records) - fresh} duplicates screened), "
            f"total {wrapped.applied_seq}"
        )
    wrapped.close()
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "sweep":
        return _run_sweep(args)
    if args.command == "checkpoint":
        return _run_checkpoint(args)
    if args.command == "serve":
        return _run_serve(args)
    if args.command == "incidents":
        return _run_incidents(args)
    if args.command == "scrub":
        return _run_scrub(args)
    if args.command == "resume":
        return _run_resume(args)
    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[key].__doc__ or "").strip().splitlines()[0]
            print(f"{key.ljust(width)}  {doc}")
        return 0
    if args.experiment == "all":
        for key in sorted(EXPERIMENTS):
            _run_one(key, args.seed, None)
            print()
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    _run_one(args.experiment, args.seed, args.csv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
