"""Command-line interface: list and run the paper's experiments.

Usage::

    esharing list
    esharing run table5
    esharing run table2 --seed 1 --csv out.csv
    esharing run all
    esharing stats                     # describe the synthetic workload
    esharing stats --mobike trips.csv  # describe a real Mobike CSV

(or ``python -m repro.cli ...``)
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .experiments import EXPERIMENTS

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="esharing",
        description="E-Sharing (ICDCS 2020) reproduction — experiment runner",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", help="experiment id (see 'list') or 'all'")
    run.add_argument("--seed", type=int, default=0, help="RNG seed")
    run.add_argument("--csv", default=None, help="also write rows to this CSV path")
    stats = sub.add_parser(
        "stats", help="describe a trip workload (synthetic or a Mobike CSV)"
    )
    stats.add_argument("--mobike", default=None, help="path to a Mobike-schema CSV")
    stats.add_argument("--seed", type=int, default=0, help="synthetic workload seed")
    stats.add_argument("--days", type=int, default=14, help="synthetic workload days")
    stats.add_argument(
        "--volume", type=int, default=1500, help="synthetic weekday trip volume"
    )
    return parser


def _run_one(exp_id: str, seed: int, csv_path: Optional[str]) -> None:
    runner = EXPERIMENTS[exp_id]
    start = time.time()
    result = runner(seed=seed)
    elapsed = time.time() - start
    print(result.to_text())
    print(f"({exp_id} finished in {elapsed:.1f}s)")
    if csv_path:
        result.save_csv(csv_path)
        print(f"rows written to {csv_path}")


def _run_stats(args) -> int:
    from .datasets import SyntheticConfig, describe, load_mobike_csv, mobike_like_dataset
    from .geo import UniformGrid

    if args.mobike:
        dataset = load_mobike_csv(args.mobike)
        source = args.mobike
    else:
        dataset = mobike_like_dataset(
            seed=args.seed,
            days=args.days,
            config=SyntheticConfig(
                trips_per_weekday=args.volume,
                trips_per_weekend_day=int(args.volume * 0.75),
            ),
        )
        source = f"synthetic (seed={args.seed}, days={args.days}, volume={args.volume})"
    grid = UniformGrid(dataset.bounding_box(margin=50.0), cell_size=150.0)
    print(f"workload: {source}")
    print(describe(dataset, grid).to_text())
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "list":
        width = max(len(k) for k in EXPERIMENTS)
        for key in sorted(EXPERIMENTS):
            doc = (EXPERIMENTS[key].__doc__ or "").strip().splitlines()[0]
            print(f"{key.ljust(width)}  {doc}")
        return 0
    if args.experiment == "all":
        for key in sorted(EXPERIMENTS):
            _run_one(key, args.seed, None)
            print()
        return 0
    if args.experiment not in EXPERIMENTS:
        print(
            f"unknown experiment {args.experiment!r}; "
            f"available: {', '.join(sorted(EXPERIMENTS))}",
            file=sys.stderr,
        )
        return 2
    _run_one(args.experiment, args.seed, args.csv)
    return 0


if __name__ == "__main__":
    sys.exit(main())
