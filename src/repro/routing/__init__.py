"""Operator routing: TSP tours over charging demand sites."""

from .tsp import Tour, held_karp, nearest_neighbor_tour, solve_tsp, two_opt
from .scheduling import MultiOperatorPlan, OperatorSchedule, plan_multi_operator

__all__ = [
    "Tour",
    "held_karp",
    "nearest_neighbor_tour",
    "solve_tsp",
    "two_opt",
    "MultiOperatorPlan",
    "OperatorSchedule",
    "plan_multi_operator",
]
