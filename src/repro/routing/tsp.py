"""Travelling-salesman tours for the charging operator.

Section V-E: "The operator traverses through all the demand sites with the
shortest route by solving the Traveling Salesman Problem".  Exact TSP is
infeasible beyond a handful of sites, so we use the standard
nearest-neighbour construction improved by 2-opt — the same practical
recipe used for mobile-charger routing in WRSNs [34].  An exact
Held–Karp solver is included for small instances and for testing the
heuristics' quality.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import List, Optional, Sequence

import numpy as np

from ..geo.distance import pairwise_distances
from ..geo.points import Point

__all__ = ["Tour", "nearest_neighbor_tour", "two_opt", "solve_tsp", "held_karp"]


@dataclass(frozen=True)
class Tour:
    """A visiting order over a set of sites.

    Attributes:
        order: site indices in visiting sequence (no repeats); the tour is
            *open* (the operator does not return to the depot) matching the
            per-position delay model ``t·d`` of Eq. 10.
        length: total travel distance along ``order``.
    """

    order: tuple
    length: float

    @property
    def n_sites(self) -> int:
        return len(self.order)

    def position_of(self, site: int) -> int:
        """1-based service position ``t`` of ``site`` in the sequence.

        Raises:
            ValueError: if the site is not on the tour.
        """
        try:
            return self.order.index(site) + 1
        except ValueError:
            raise ValueError(f"site {site} not on tour") from None


def _tour_length(dist: np.ndarray, order: Sequence[int]) -> float:
    return float(sum(dist[order[i], order[i + 1]] for i in range(len(order) - 1)))


def nearest_neighbor_tour(
    points: Sequence[Point], start: int = 0, dist: Optional[np.ndarray] = None
) -> Tour:
    """Greedy nearest-neighbour open tour from ``points[start]``.

    Raises:
        ValueError: if there are no points or ``start`` is out of range.
    """
    n = len(points)
    if n == 0:
        raise ValueError("no sites to tour")
    if not 0 <= start < n:
        raise ValueError(f"start index {start} out of range")
    d = dist if dist is not None else pairwise_distances(points)
    unvisited = set(range(n))
    unvisited.remove(start)
    order = [start]
    while unvisited:
        here = order[-1]
        nxt = min(unvisited, key=lambda j: (d[here, j], j))
        unvisited.remove(nxt)
        order.append(nxt)
    return Tour(tuple(order), _tour_length(d, order))


def two_opt(tour: Tour, points: Sequence[Point], max_passes: int = 20,
            dist: Optional[np.ndarray] = None) -> Tour:
    """Improve an open tour with 2-opt segment reversals until no gain.

    Args:
        tour: the starting tour.
        points: site coordinates (index-aligned with the tour).
        max_passes: safety cap on full improvement sweeps.
        dist: optional precomputed distance matrix.
    """
    d = dist if dist is not None else pairwise_distances(points)
    order = list(tour.order)
    n = len(order)
    if n < 4:
        return tour
    for _ in range(max_passes):
        improved = False
        for i in range(n - 2):
            for j in range(i + 2, n - 1):
                a, b = order[i], order[i + 1]
                c, e = order[j], order[j + 1]
                delta = (d[a, c] + d[b, e]) - (d[a, b] + d[c, e])
                if delta < -1e-9:
                    order[i + 1 : j + 1] = reversed(order[i + 1 : j + 1])
                    improved = True
        if not improved:
            break
    return Tour(tuple(order), _tour_length(d, order))


def solve_tsp(points: Sequence[Point], start: Optional[int] = None) -> Tour:
    """Nearest-neighbour + 2-opt open tour — the operator's route planner.

    Open tours are sensitive to where they start (2-opt cannot move the
    endpoints), so unless ``start`` is pinned we restart the construction
    from every site on small instances and from a spread of sites on
    large ones, keeping the shortest result.
    """
    n = len(points)
    if n == 0:
        raise ValueError("no sites to tour")
    d = pairwise_distances(points)
    if start is not None:
        starts = [start]
    elif n <= 12:
        starts = list(range(n))
    else:
        starts = sorted({0, n // 4, n // 2, 3 * n // 4, n - 1})
    best: Optional[Tour] = None
    for s in starts:
        cand = two_opt(nearest_neighbor_tour(points, start=s, dist=d), points, dist=d)
        if best is None or cand.length < best.length:
            best = cand
    assert best is not None
    return best


def held_karp(points: Sequence[Point], start: int = 0) -> Tour:
    """Exact open-TSP via Held–Karp dynamic programming.

    Exponential in the number of sites; refuse anything beyond 15 sites.

    Raises:
        ValueError: on empty input or more than 15 sites.
    """
    n = len(points)
    if n == 0:
        raise ValueError("no sites to tour")
    if n > 15:
        raise ValueError(f"held_karp limited to 15 sites, got {n}")
    if n == 1:
        return Tour((start,), 0.0)
    d = pairwise_distances(points)
    others = [i for i in range(n) if i != start]
    index = {site: k for k, site in enumerate(others)}
    m = len(others)
    FULL = 1 << m
    INF = float("inf")
    # cost[mask][k] = shortest path from start visiting exactly `mask`,
    # ending at others[k].
    cost = np.full((FULL, m), INF)
    parent = np.full((FULL, m), -1, dtype=int)
    for k, site in enumerate(others):
        cost[1 << k, k] = d[start, site]
    for mask in range(FULL):
        for k in range(m):
            if cost[mask, k] == INF or not (mask >> k) & 1:
                continue
            for k2 in range(m):
                if (mask >> k2) & 1:
                    continue
                nmask = mask | (1 << k2)
                cand = cost[mask, k] + d[others[k], others[k2]]
                if cand < cost[nmask, k2]:
                    cost[nmask, k2] = cand
                    parent[nmask, k2] = k
    last = int(np.argmin(cost[FULL - 1]))
    length = float(cost[FULL - 1, last])
    order = [others[last]]
    mask = FULL - 1
    k = last
    while parent[mask, k] != -1:
        prev = parent[mask, k]
        mask ^= 1 << k
        k = prev
        order.append(others[k])
    order.append(start)
    order.reverse()
    return Tour(tuple(order), length)
