"""Multi-operator charging schedules.

Section V-E closes with: "A solution is to schedule the operators more
frequently during rush hours to the low-energy demand sites."  With the
Eq. 10 delay term growing quadratically in the tour length, splitting the
demand sites among ``k`` operators cuts the delay cost by roughly ``k``
(each sequence is ``n/k`` long).  This module plans such schedules with
the classic cluster-first / route-second heuristic: balanced k-means-style
clustering of the sites, then a TSP tour per operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..geo.points import Point
from ..incentives.charging_cost import ChargingCostParams
from .tsp import Tour, solve_tsp

__all__ = ["OperatorSchedule", "MultiOperatorPlan", "plan_multi_operator"]


@dataclass(frozen=True)
class OperatorSchedule:
    """One operator's assignment.

    Attributes:
        operator: operator index.
        sites: global site indices in visiting order.
        tour_length_m: travel distance of the route.
    """

    operator: int
    sites: tuple
    tour_length_m: float

    @property
    def n_sites(self) -> int:
        return len(self.sites)


@dataclass(frozen=True)
class MultiOperatorPlan:
    """A full multi-operator charging plan.

    Attributes:
        schedules: one per operator (possibly empty tours omitted).
        service_cost: ``q`` per visited site, summed over operators.
        delay_cost: Eq. 10's positional delay, *per operator sequence*.
        total_travel_m: summed tour lengths.
    """

    schedules: List[OperatorSchedule]
    service_cost: float
    delay_cost: float
    total_travel_m: float

    @property
    def n_operators(self) -> int:
        return len(self.schedules)

    @property
    def infrastructure_cost(self) -> float:
        """Service + delay cost (the terms aggregation/scheduling affect)."""
        return self.service_cost + self.delay_cost

    @property
    def makespan_sites(self) -> int:
        """Longest per-operator sequence — the bound on service latency."""
        if not self.schedules:
            return 0
        return max(s.n_sites for s in self.schedules)


def _balanced_clusters(
    points: np.ndarray, k: int, rng: np.random.Generator, iterations: int = 20
) -> List[List[int]]:
    """K-means-style clustering with balanced sizes (greedy assignment)."""
    n = points.shape[0]
    k = min(k, n)
    centers = points[rng.choice(n, size=k, replace=False)]
    cap = int(np.ceil(n / k))
    assignment = np.zeros(n, dtype=int)
    for _ in range(iterations):
        # Greedy balanced assignment: farthest-from-everything first.
        dists = np.linalg.norm(points[:, None, :] - centers[None, :, :], axis=-1)
        order = np.argsort(dists.min(axis=1))[::-1]
        loads = np.zeros(k, dtype=int)
        new_assignment = np.zeros(n, dtype=int)
        for idx in order:
            choices = np.argsort(dists[idx])
            for c in choices:
                if loads[c] < cap:
                    new_assignment[idx] = c
                    loads[c] += 1
                    break
        if np.array_equal(new_assignment, assignment):
            break
        assignment = new_assignment
        for c in range(k):
            members = points[assignment == c]
            if members.size:
                centers[c] = members.mean(axis=0)
    return [list(np.flatnonzero(assignment == c)) for c in range(k)]


def plan_multi_operator(
    sites: Sequence[Point],
    n_operators: int,
    params: ChargingCostParams,
    rng: Optional[np.random.Generator] = None,
) -> MultiOperatorPlan:
    """Plan charging tours for a fleet of operators.

    Args:
        sites: the demand sites needing service.
        n_operators: operators available (``k``).
        params: unit costs (``q``, ``d``).
        rng: randomness for the clustering initialisation.

    Returns:
        A :class:`MultiOperatorPlan`; with ``k = 1`` this degenerates to
        the single-operator Eq. 10 plan.

    Raises:
        ValueError: if ``n_operators`` is not positive.
    """
    if n_operators <= 0:
        raise ValueError(f"n_operators must be positive, got {n_operators}")
    sites = list(sites)
    if not sites:
        return MultiOperatorPlan([], 0.0, 0.0, 0.0)
    rng = rng or np.random.default_rng(0)
    pts = np.asarray([(p.x, p.y) for p in sites])
    clusters = _balanced_clusters(pts, n_operators, rng)

    schedules: List[OperatorSchedule] = []
    service = delay = travel = 0.0
    for op, members in enumerate(clusters):
        if not members:
            continue
        tour = solve_tsp([sites[i] for i in members])
        ordered = tuple(members[i] for i in tour.order)
        schedules.append(
            OperatorSchedule(operator=op, sites=ordered, tour_length_m=tour.length)
        )
        n = len(ordered)
        service += n * params.service_cost
        delay += (n * n - n) / 2.0 * params.delay_cost
        travel += tour.length
    return MultiOperatorPlan(
        schedules=schedules,
        service_cost=service,
        delay_cost=delay,
        total_travel_m=travel,
    )
