"""Operator site-selection policies.

Section II-B: "the operators follow a policy to refill those E-bikes with
energy less than a threshold at each location."  Which *sites* a shift
should take on is itself a policy decision once the shift is shorter than
the demand list.  Three policies are provided:

* :class:`ThresholdPolicy` — every site holding at least ``min_bikes``
  low bikes (the paper's default; the operator owns the whole list).
* :class:`TopDensityPolicy` — only the ``max_sites`` densest sites: the
  rush-hour triage the paper's Remarks suggest.
* :class:`BudgetCoveragePolicy` — greedy maximum coverage: pick sites in
  descending bike count until an estimated time budget is spent, ordering
  marginal travel into the estimate.

Pass a policy to :class:`~repro.sim.operator.ChargingOperator` via
``OperatorConfig`` composition — the operator asks the policy which sites
qualify, then tours them.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, List, Sequence

from ..geo.points import Point

__all__ = [
    "SiteSelectionPolicy",
    "ThresholdPolicy",
    "TopDensityPolicy",
    "BudgetCoveragePolicy",
]


class SiteSelectionPolicy(ABC):
    """Decides which stations a charging shift takes responsibility for."""

    @abstractmethod
    def select(
        self, low_map: Dict[int, List[int]], locations: Sequence[Point]
    ) -> List[int]:
        """Pick the stations to serve.

        Args:
            low_map: station -> low-energy bike ids.
            locations: station coordinates (indexable by station id).

        Returns:
            Station ids in no particular order (the operator routes them).
        """


@dataclass(frozen=True)
class ThresholdPolicy(SiteSelectionPolicy):
    """Serve every site with at least ``min_bikes`` low-energy bikes.

    Raises:
        ValueError: if ``min_bikes`` is not positive.
    """

    min_bikes: int = 1

    def __post_init__(self) -> None:
        if self.min_bikes < 1:
            raise ValueError(f"min_bikes must be >= 1, got {self.min_bikes}")

    def select(self, low_map, locations) -> List[int]:
        """All stations meeting the bike-count threshold."""
        return sorted(s for s, bikes in low_map.items() if len(bikes) >= self.min_bikes)


@dataclass(frozen=True)
class TopDensityPolicy(SiteSelectionPolicy):
    """Serve only the ``max_sites`` sites holding the most low bikes.

    Raises:
        ValueError: if ``max_sites`` is not positive.
    """

    max_sites: int = 10

    def __post_init__(self) -> None:
        if self.max_sites < 1:
            raise ValueError(f"max_sites must be >= 1, got {self.max_sites}")

    def select(self, low_map, locations) -> List[int]:
        """The densest sites, ties broken by station id."""
        ranked = sorted(low_map.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        return sorted(s for s, _ in ranked[: self.max_sites])


@dataclass(frozen=True)
class BudgetCoveragePolicy(SiteSelectionPolicy):
    """Greedy max-coverage under an estimated time budget.

    Sites are added in descending bike count; each addition is charged
    its service time plus the travel from the nearest already-selected
    site (a cheap tour-length proxy).  Selection stops when the budget
    would be exceeded.

    Raises:
        ValueError: on non-positive budget, speed or service time.
    """

    budget_hours: float = 4.0
    travel_speed_kmh: float = 12.0
    service_time_h: float = 0.25

    def __post_init__(self) -> None:
        if self.budget_hours <= 0:
            raise ValueError(f"budget_hours must be positive, got {self.budget_hours}")
        if self.travel_speed_kmh <= 0:
            raise ValueError(
                f"travel_speed_kmh must be positive, got {self.travel_speed_kmh}"
            )
        if self.service_time_h < 0:
            raise ValueError(
                f"service_time_h cannot be negative, got {self.service_time_h}"
            )

    def select(self, low_map, locations) -> List[int]:
        """Greedy densest-first selection under the time budget."""
        ranked = sorted(low_map.items(), key=lambda kv: (-len(kv[1]), kv[0]))
        speed_m_h = self.travel_speed_kmh * 1000.0
        selected: List[int] = []
        time_used = 0.0
        for station, _ in ranked:
            travel_h = 0.0
            if selected:
                nearest = min(
                    locations[s].distance_to(locations[station]) for s in selected
                )
                travel_h = nearest / speed_m_h
            needed = travel_h + self.service_time_h
            if time_used + needed > self.budget_hours:
                continue
            time_used += needed
            selected.append(station)
        return sorted(selected)
