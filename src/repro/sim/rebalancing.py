"""Static bike rebalancing between service periods.

Section II-B assumes "the reserves of E-bikes are balanced, which satisfy
the demand and do not overwhelm the capacity by executing the procedures
in [9]-[11]".  This module implements the simplest such procedure: a
truck moves bikes from surplus stations to deficit stations overnight.
Surplus/deficit is measured against a target distribution (uniform or
demand-proportional); the moves are planned with a greedy
nearest-pair transportation heuristic and the truck's route length is
estimated with a TSP tour over the stations it touches.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..energy.fleet import Fleet
from ..geo.points import Point
from ..routing.tsp import solve_tsp

__all__ = ["RebalanceMove", "RebalanceReport", "target_distribution", "rebalance_fleet"]


@dataclass(frozen=True)
class RebalanceMove:
    """One truck transfer: ``count`` bikes from ``source`` to ``sink``."""

    source: int
    sink: int
    count: int


@dataclass(frozen=True)
class RebalanceReport:
    """Outcome of one rebalancing pass.

    Attributes:
        moves: transfers executed, in planning order.
        bikes_moved: total bikes relocated.
        truck_distance_km: TSP-tour estimate over the touched stations.
        imbalance_before: sum of absolute deviations from the target.
        imbalance_after: the same measure after the pass.
    """

    moves: List[RebalanceMove]
    bikes_moved: int
    truck_distance_km: float
    imbalance_before: float
    imbalance_after: float

    @property
    def imbalance_reduction(self) -> float:
        """Fraction of the initial imbalance removed."""
        if self.imbalance_before == 0:
            return 0.0
        return 1.0 - self.imbalance_after / self.imbalance_before


def target_distribution(
    n_stations: int,
    n_bikes: int,
    demand_weights: Optional[Sequence[float]] = None,
) -> np.ndarray:
    """Integer per-station bike targets summing to the fleet size.

    Uniform by default; with ``demand_weights`` (e.g. expected pickups
    per station) the targets are proportional, rounded by largest
    remainder so the total is exact.

    Raises:
        ValueError: on non-positive sizes or mismatched weights.
    """
    if n_stations <= 0:
        raise ValueError(f"n_stations must be positive, got {n_stations}")
    if n_bikes < 0:
        raise ValueError(f"n_bikes cannot be negative, got {n_bikes}")
    if demand_weights is None:
        weights = np.ones(n_stations)
    else:
        weights = np.asarray(demand_weights, dtype=float)
        if weights.size != n_stations:
            raise ValueError(
                f"{weights.size} weights for {n_stations} stations"
            )
        if np.any(weights < 0) or weights.sum() <= 0:
            raise ValueError("weights must be non-negative with positive sum")
    shares = weights / weights.sum() * n_bikes
    base = np.floor(shares).astype(int)
    remainder = n_bikes - int(base.sum())
    order = np.argsort(-(shares - base))
    base[order[:remainder]] += 1
    return base


def rebalance_fleet(
    fleet: Fleet,
    targets: Optional[Sequence[int]] = None,
    max_moves: Optional[int] = None,
) -> RebalanceReport:
    """Move bikes toward the target distribution (mutates the fleet).

    Greedy nearest-pair matching: repeatedly ship bikes from the surplus
    station to its nearest deficit station until every station meets its
    target (or the move budget runs out).  Bikes with the highest charge
    move first — the truck should not strand low-energy bikes at fresh
    stations where riders expect working inventory.

    Args:
        fleet: the fleet to rebalance.
        targets: per-station bike targets (default: uniform).
        max_moves: optional cap on individual transfers.

    Raises:
        ValueError: on mismatched targets or targets not summing to the
            fleet size.
    """
    n_stations = len(fleet.stations)
    if targets is None:
        tgt = target_distribution(n_stations, len(fleet))
    else:
        tgt = np.asarray(targets, dtype=int)
        if tgt.size != n_stations:
            raise ValueError(f"{tgt.size} targets for {n_stations} stations")
        if int(tgt.sum()) != len(fleet):
            raise ValueError(
                f"targets sum to {int(tgt.sum())} but the fleet has {len(fleet)} bikes"
            )

    counts = np.zeros(n_stations, dtype=int)
    for b in fleet.bikes:
        counts[b.station] += 1
    imbalance_before = float(np.abs(counts - tgt).sum())

    moves: List[RebalanceMove] = []
    touched = set()
    bikes_moved = 0
    budget = max_moves if max_moves is not None else 10**9
    while bikes_moved < budget:
        surplus = np.flatnonzero(counts > tgt)
        deficit = np.flatnonzero(counts < tgt)
        if surplus.size == 0 or deficit.size == 0:
            break
        # Nearest surplus/deficit pair.
        best = None
        for s in surplus:
            for d in deficit:
                dist = fleet.stations[s].distance_to(fleet.stations[d])
                if best is None or dist < best[0]:
                    best = (dist, int(s), int(d))
        _, s, d = best
        count = int(min(counts[s] - tgt[s], tgt[d] - counts[d], budget - bikes_moved))
        # Ship the highest-charge bikes.
        movers = sorted(
            (b for b in fleet.bikes if b.station == s),
            key=lambda b: -b.battery.level,
        )[:count]
        for b in movers:
            b.station = d
        counts[s] -= count
        counts[d] += count
        bikes_moved += count
        touched.update((s, d))
        moves.append(RebalanceMove(source=s, sink=d, count=count))

    imbalance_after = float(np.abs(counts - tgt).sum())
    truck_km = 0.0
    if len(touched) >= 2:
        tour = solve_tsp([fleet.stations[i] for i in sorted(touched)])
        truck_km = tour.length / 1000.0
    return RebalanceReport(
        moves=moves,
        bikes_moved=bikes_moved,
        truck_distance_km=truck_km,
        imbalance_before=imbalance_before,
        imbalance_after=imbalance_after,
    )
