"""The charging operator (Section IV / V-E).

At the end of each service period the operator forms a TSP route through
the stations that need charging and services them in sequence within a
fixed amount of working hours.  Stations left unreached (or skipped under
the best-effort policy because only a few low bikes remain) stay uncharged
until the next period — which is why the percentage of charged E-bikes in
Table VI rises so sharply once incentives concentrate the low-energy tail
onto fewer sites.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..energy.fleet import Fleet
from ..incentives.charging_cost import ChargingCostParams
from ..routing.tsp import Tour, solve_tsp

__all__ = ["OperatorConfig", "ServiceReport", "ChargingOperator"]


@dataclass(frozen=True)
class OperatorConfig:
    """The operator's physical constraints.

    Attributes:
        working_hours: length of one service shift.
        travel_speed_kmh: speed of the service trike/van.
        service_time_h: time spent charging at one station (charging is
            "conducted in a paralleled manner at each location", so this
            is per-station, not per-bike).
        min_bikes_to_visit: best-effort skip threshold — stations with
            fewer low bikes are deferred to the next period (Remarks,
            Section IV-C).
    """

    working_hours: float = 8.0
    travel_speed_kmh: float = 10.0
    service_time_h: float = 0.75
    min_bikes_to_visit: int = 1

    def __post_init__(self) -> None:
        if self.working_hours <= 0:
            raise ValueError(f"working_hours must be positive, got {self.working_hours}")
        if self.travel_speed_kmh <= 0:
            raise ValueError(f"travel_speed_kmh must be positive, got {self.travel_speed_kmh}")
        if self.service_time_h < 0:
            raise ValueError(f"service_time_h cannot be negative, got {self.service_time_h}")
        if self.min_bikes_to_visit < 1:
            raise ValueError(f"min_bikes_to_visit must be >= 1, got {self.min_bikes_to_visit}")


@dataclass
class ServiceReport:
    """Cost breakdown of one service period — the rows of Table VI.

    The *cost* side follows Eq. 10 over the full tour of qualifying
    demand sites (the operator is responsible for all of them); the
    *utility* side — ``percent_charged`` — counts only the bikes reached
    within the fixed working hours (Section V-E: "in a fixed amount of
    working hours, the operator forms a TSP route through all the demand
    sites").  All monetary figures in $; distances in km.
    """

    stations_needing_service: int
    stations_served: int
    bikes_low_before: int
    bikes_charged: int
    bikes_charged_in_shift: int
    service_cost: float
    delay_cost: float
    energy_cost: float
    incentives_paid: float
    moving_distance_km: float
    tour: Optional[Tour] = None
    served_stations: List[int] = field(default_factory=list)
    charged_per_station: List[int] = field(default_factory=list)
    served_within_shift: List[bool] = field(default_factory=list)

    @property
    def total_cost(self) -> float:
        """Service + delay + energy + incentives (Table VI's sum)."""
        return self.service_cost + self.delay_cost + self.energy_cost + self.incentives_paid

    @property
    def percent_charged(self) -> float:
        """Percentage of low-energy bikes charged within the shift."""
        if self.bikes_low_before == 0:
            return 100.0
        return 100.0 * self.bikes_charged_in_shift / self.bikes_low_before

    def summary(self) -> str:
        """One-line report in Table VI's row order."""
        return (
            f"service={self.service_cost:.0f} delay={self.delay_cost:.0f} "
            f"energy={self.energy_cost:.0f} incentives={self.incentives_paid:.0f} "
            f"total={self.total_cost:.0f} charged={self.percent_charged:.1f}% "
            f"distance={self.moving_distance_km:.1f}km"
        )


class ChargingOperator:
    """Plans and executes one charging tour over a fleet.

    Args:
        params: unit costs (``q``, ``d``, ``b``).
        config: shift constraints.
        policy: optional site-selection policy
            (:mod:`repro.sim.policies`); when absent, the config's
            ``min_bikes_to_visit`` threshold applies.
    """

    def __init__(
        self,
        params: ChargingCostParams,
        config: Optional[OperatorConfig] = None,
        policy=None,
    ) -> None:
        self.params = params
        self.config = config or OperatorConfig()
        self.policy = policy

    def service_period(self, fleet: Fleet, incentives_paid: float = 0.0) -> ServiceReport:
        """Run one shift: tour the demand sites, charge what time allows.

        Args:
            fleet: mutated in place — served stations get their low
                bikes recharged.
            incentives_paid: Tier-2 incentive spend to fold into the
                period's total cost.

        Returns:
            A :class:`ServiceReport` with the Table VI breakdown.
        """
        low_map = fleet.low_energy_map()
        bikes_low_before = sum(len(v) for v in low_map.values())
        if self.policy is not None:
            demand_sites = list(self.policy.select(low_map, fleet.stations))
        else:
            demand_sites = [
                s for s, bikes in low_map.items()
                if len(bikes) >= self.config.min_bikes_to_visit
            ]
        if not demand_sites:
            return ServiceReport(
                stations_needing_service=len(low_map),
                stations_served=0,
                bikes_low_before=bikes_low_before,
                bikes_charged=0,
                bikes_charged_in_shift=0,
                service_cost=0.0,
                delay_cost=0.0,
                energy_cost=0.0,
                incentives_paid=incentives_paid,
                moving_distance_km=0.0,
            )

        site_points = [fleet.stations[s] for s in demand_sites]
        tour = solve_tsp(site_points)
        speed_m_h = self.config.travel_speed_kmh * 1000.0

        # The full tour is the operator's responsibility (Eq. 10 costs);
        # the shift clock decides which bikes count as charged *in time*.
        time_used = 0.0
        moving_m = 0.0
        served: List[int] = []
        charged_per_station: List[int] = []
        served_within_shift: List[bool] = []
        bikes_charged = 0
        bikes_in_shift = 0
        prev_point = None
        for site_idx in tour.order:
            station = demand_sites[site_idx]
            point = site_points[site_idx]
            if prev_point is not None:
                leg = prev_point.distance_to(point)
                moving_m += leg
                time_used += leg / speed_m_h
            time_used += self.config.service_time_h
            prev_point = point
            charged_here = fleet.recharge_station(station)
            bikes_charged += charged_here
            in_shift = time_used <= self.config.working_hours
            if in_shift:
                bikes_in_shift += charged_here
            served.append(station)
            charged_per_station.append(charged_here)
            served_within_shift.append(in_shift)

        n = len(served)
        return ServiceReport(
            stations_needing_service=len(low_map),
            stations_served=n,
            bikes_low_before=bikes_low_before,
            bikes_charged=bikes_charged,
            bikes_charged_in_shift=bikes_in_shift,
            service_cost=n * self.params.service_cost,
            delay_cost=(n * n - n) / 2.0 * self.params.delay_cost,
            energy_cost=bikes_charged * self.params.energy_cost,
            incentives_paid=incentives_paid,
            moving_distance_km=moving_m / 1000.0,
            tour=tour,
            served_stations=served,
            charged_per_station=charged_per_station,
            served_within_shift=served_within_shift,
        )
