"""End-to-end E-Sharing system simulation.

Glues the two tiers together the way Fig. 3 describes: streaming trip
requests flow through the online placement (Tier 1) to get a destination
parking; departing riders receive incentive offers (Tier 2) that relocate
low-energy bikes; the fleet's batteries drain as trips execute; and at the
end of each period the charging operator runs its tour.  The per-period
reports carry every metric the evaluation section tabulates.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

import numpy as np

from ..core.esharing import EsharingPlanner
from ..datasets.trips import TripRecord
from ..energy.fleet import Fleet
from ..errors import StateDriftError
from ..incentives.adaptive import AdaptiveAlphaController
from ..incentives.charging_cost import ChargingCostParams
from ..incentives.mechanism import IncentiveConfig, IncentiveMechanism
from ..incentives.user_model import UserPopulation
from .events import (
    EventLog,
    OfferMade,
    OperatorStop,
    PeriodClosed,
    PlacementDecided,
    StationOpened,
    TripExecuted,
    TripRequested,
    TripSkipped,
)
from .metrics import PhaseTimers
from .operator import ChargingOperator, OperatorConfig, ServiceReport

__all__ = ["PeriodReport", "SimulationSummary", "SystemSimulator"]


@dataclass
class PeriodReport:
    """Everything that happened in one simulated service period."""

    trips_requested: int
    trips_executed: int
    trips_skipped_empty: int
    offers_made: int
    offers_accepted: int
    incentives_paid: float
    relocated_bikes: int
    service: ServiceReport
    low_energy_after: int

    @property
    def acceptance_rate(self) -> float:
        if self.offers_made == 0:
            return 0.0
        return self.offers_accepted / self.offers_made


@dataclass(frozen=True)
class SimulationSummary:
    """Aggregate metrics over a multi-period simulation."""

    periods: int
    trips_requested: int
    trips_executed: int
    total_cost: float
    total_incentives: float
    total_bikes_charged: int
    mean_percent_charged: float
    final_station_count: int
    phase_seconds: Dict[str, float] = field(default_factory=dict)

    @property
    def service_rate(self) -> float:
        """Fraction of requested trips actually executed."""
        if self.trips_requested == 0:
            return 1.0
        return self.trips_executed / self.trips_requested


class SystemSimulator:
    """Full-system simulation over a fixed station layout.

    Args:
        planner: Tier-1 online placement (already anchored offline).  The
            fleet's station list tracks the planner's: stations opened
            online during the run join the fleet with no bikes.
        fleet: the E-bike fleet.
        charging_params: unit costs for Tier 2.
        incentive_config: Algorithm 3 parameters (``alpha`` etc.).
        population: rider-preference distribution.
        operator_config: service-shift constraints.
        rng: randomness for rider choices.
        alpha_controller: optional adaptive incentive-level controller.
        event_log: optional typed event log receiving every action.
        pickup_radius_m: how far a rider will walk to the nearest station
            that actually holds a bike before giving up (trips beyond it
            count as skipped).
    """

    def __init__(
        self,
        planner: EsharingPlanner,
        fleet: Fleet,
        charging_params: Optional[ChargingCostParams] = None,
        incentive_config: Optional[IncentiveConfig] = None,
        population: Optional[UserPopulation] = None,
        operator_config: Optional[OperatorConfig] = None,
        rng: Optional[np.random.Generator] = None,
        alpha_controller: Optional[AdaptiveAlphaController] = None,
        event_log: Optional[EventLog] = None,
        pickup_radius_m: float = 800.0,
    ) -> None:
        if pickup_radius_m <= 0:
            raise ValueError(f"pickup_radius_m must be positive, got {pickup_radius_m}")
        if planner.station_set.total_assigned != len(fleet.stations):
            raise ValueError(
                f"fleet has {len(fleet.stations)} stations but planner has "
                f"{planner.station_set.total_assigned}; build the fleet on the "
                "planner's anchors"
            )
        self.planner = planner
        self.fleet = fleet
        self.params = charging_params or ChargingCostParams()
        # Inventory hook: stations the planner opens online join the
        # fleet (with no bikes) under the same stable id.
        planner.station_set.subscribe(
            on_add=lambda sid, point: self.fleet.add_station(point)
        )
        self.mechanism = IncentiveMechanism(
            fleet,
            self.params,
            config=incentive_config,
            population=population,
            rng=rng or np.random.default_rng(0),
            alpha_controller=alpha_controller,
            stations=planner.station_set,
        )
        self.operator = ChargingOperator(self.params, operator_config)
        self._rng = rng or np.random.default_rng(0)
        self.reports: List[PeriodReport] = []
        self.event_log = event_log
        self.pickup_radius_m = pickup_radius_m
        self.timers = PhaseTimers()

    def _emit(self, event) -> None:
        if self.event_log is not None:
            self.event_log.emit(event)

    # ------------------------------------------------------------------
    def _station_of(self, point) -> int:
        idx, _ = self.planner.station_set.nearest(point)
        return idx

    def _pickup_station_of(self, point) -> Optional[int]:
        """Nearest station holding a bike, within the pickup radius.

        Riders walk past an empty rack to the next stocked one; beyond
        ``pickup_radius_m`` they give up (the trip is lost).  Candidates
        come pre-sorted by (distance, id) from the station store, so the
        first stocked hit is the answer.
        """
        for sid, _dist in self.planner.station_set.within(point, self.pickup_radius_m):
            if self.fleet.pick_bike(sid) is not None:
                return sid
        return None

    # ------------------------------------------------------------------
    def run_period(self, trips: Iterable[TripRecord]) -> PeriodReport:
        """Simulate one service period of streaming trips plus the tour.

        For each trip: Tier 1 assigns the destination parking; Tier 2 may
        convert the ride into a low-energy-bike relocation; otherwise the
        rider takes the healthiest bike to the assigned parking.  After
        the stream, the operator services the fleet.
        """
        requested = executed = skipped = 0
        incentives_before = self.mechanism.total_incentives_paid
        accepted_before = self.mechanism.offers_accepted
        made_before = self.mechanism.offers_made

        for trip in trips:
            requested += 1
            self._emit(TripRequested(
                order_id=trip.order_id,
                origin_x=trip.start.x, origin_y=trip.start.y,
                dest_x=trip.end.x, dest_y=trip.end.y,
            ))
            pickup = self._pickup_station_of(trip.start)
            if pickup is None:
                skipped += 1
                self._emit(TripSkipped(
                    order_id=trip.order_id,
                    origin_station=self._station_of(trip.start),
                    reason="no bike within pickup radius",
                ))
                continue
            origin = pickup
            phase_start = time.perf_counter()
            decision = self.planner.offer(trip.end)
            self.timers.placement += time.perf_counter() - phase_start
            destination = decision.station_index
            self._emit(PlacementDecided(
                order_id=trip.order_id,
                station_index=destination,
                opened_new=decision.opened,
                walking_cost=decision.walking_cost,
                penalty=decision.penalty_name,
            ))
            if decision.opened:
                opened = self.fleet.stations[destination]
                self._emit(StationOpened(
                    station_index=destination, x=opened.x, y=opened.y,
                ))
            phase_start = time.perf_counter()
            outcome = self.mechanism.offer_ride(origin, destination, trip.end)
            self.timers.incentives += time.perf_counter() - phase_start
            if outcome.offered:
                self._emit(OfferMade(
                    order_id=trip.order_id,
                    origin_station=origin,
                    accepted=outcome.accepted,
                    incentive=outcome.incentive_paid,
                    reason=outcome.reason,
                ))
            if outcome.accepted:
                executed += 1
                self._emit(TripExecuted(
                    order_id=trip.order_id,
                    bike_id=outcome.bike_id if outcome.bike_id is not None else -1,
                    from_station=origin,
                    to_station=outcome.aggregation_station
                    if outcome.aggregation_station is not None else -1,
                ))
                continue  # the rider relocated a low bike instead
            bike = self.fleet.pick_bike(origin)
            if bike is None:
                # The incentive mechanism may have ridden the last bike
                # away between selection and pickup.
                skipped += 1
                self._emit(TripSkipped(order_id=trip.order_id, origin_station=origin))
                continue
            self.fleet.ride(bike.bike_id, destination, trip.distance)
            executed += 1
            self._emit(TripExecuted(
                order_id=trip.order_id,
                bike_id=bike.bike_id,
                from_station=origin,
                to_station=destination,
            ))

        # The KS share of placement time comes straight off the planner's
        # lifetime counter (checkpoints fire inside offer()).
        self.timers.ks = self.planner.ks_seconds
        period_incentives = self.mechanism.total_incentives_paid - incentives_before
        service = self.operator.service_period(self.fleet, incentives_paid=period_incentives)
        for pos, (station, charged, in_shift) in enumerate(
            zip(service.served_stations, service.charged_per_station,
                service.served_within_shift),
            start=1,
        ):
            self._emit(OperatorStop(
                station=station, position=pos,
                bikes_charged=charged, within_shift=in_shift,
            ))
        report = PeriodReport(
            trips_requested=requested,
            trips_executed=executed,
            trips_skipped_empty=skipped,
            offers_made=self.mechanism.offers_made - made_before,
            offers_accepted=self.mechanism.offers_accepted - accepted_before,
            incentives_paid=period_incentives,
            relocated_bikes=self.mechanism.offers_accepted - accepted_before,
            service=service,
            low_energy_after=self.fleet.low_energy_count(),
        )
        self.reports.append(report)
        self._emit(PeriodClosed(
            period=len(self.reports) - 1,
            total_cost=service.total_cost,
            percent_charged=service.percent_charged,
        ))
        return report

    def rebalance(self, demand_weights=None, max_moves=None):
        """Run a static rebalancing pass over the fleet (Section II-B).

        The paper assumes reserves stay balanced by the procedures of
        [9]-[11]; this executes the simplest such procedure so multi-day
        simulations do not starve hot stations.  See
        :func:`repro.sim.rebalancing.rebalance_fleet`.

        Returns:
            The :class:`~repro.sim.rebalancing.RebalanceReport`.
        """
        from .rebalancing import rebalance_fleet, target_distribution

        targets = target_distribution(
            len(self.fleet.stations), len(self.fleet), demand_weights
        )
        return rebalance_fleet(self.fleet, targets, max_moves=max_moves)

    def run_days(
        self,
        trips_by_day: Iterable[Iterable[TripRecord]],
        rebalance_between_days: bool = False,
    ) -> List[PeriodReport]:
        """Simulate consecutive days, one service period per day.

        Fleet energy state, incentive statistics (and the adaptive alpha,
        when a controller is attached) carry over between days — the
        multi-period regime of the Section IV-C Remarks, where bikes the
        operator skipped "have higher chance to be charged during the
        next service period".  With ``rebalance_between_days`` the
        overnight truck restores the uniform bike distribution before
        each new day (the paper's balanced-reserves assumption).

        Returns:
            One :class:`PeriodReport` per day, in order.
        """
        reports = []
        for i, day in enumerate(trips_by_day):
            if rebalance_between_days and i > 0:
                self.rebalance()
            reports.append(self.run_period(day))
        return reports

    # ------------------------------------------------------------------
    def consistency_check(self) -> None:
        """Verify cross-component invariants after a period (or recovery).

        Checks that the planner and fleet agree on the station layout,
        that every period's trip accounting adds up, and that the
        incentive counters are coherent — the invariants the chaos
        harness asserts after every crash/recovery cycle.

        Raises:
            StateDriftError: on any violated invariant (a real exception,
                so the guard also holds under ``python -O``).
        """
        store = self.planner.station_set
        if store.total_assigned != len(self.fleet.stations):
            raise StateDriftError(
                f"planner knows {store.total_assigned} station ids but the "
                f"fleet has {len(self.fleet.stations)} racks"
            )
        for sid in store.ids():
            if store.location(sid) != self.fleet.stations[sid]:
                raise StateDriftError(
                    f"station id {sid} diverged between planner and fleet"
                )
        for i, report in enumerate(self.reports):
            if report.trips_executed + report.trips_skipped_empty != report.trips_requested:
                raise StateDriftError(
                    f"period {i}: executed {report.trips_executed} + skipped "
                    f"{report.trips_skipped_empty} != requested "
                    f"{report.trips_requested}"
                )
            if report.offers_accepted > report.offers_made:
                raise StateDriftError(
                    f"period {i}: {report.offers_accepted} offers accepted "
                    f"exceeds {report.offers_made} made"
                )
            if report.incentives_paid < 0:
                raise StateDriftError(
                    f"period {i}: negative incentives paid "
                    f"({report.incentives_paid})"
                )
        for bike in self.fleet.bikes:
            if not 0 <= bike.station < len(self.fleet.stations):
                raise StateDriftError(
                    f"bike {bike.bike_id} parked at unknown station "
                    f"{bike.station}"
                )

    # ------------------------------------------------------------------
    def merge_worker_timers(self, *snapshots) -> None:
        """Fold phase timers measured in worker processes into this run.

        A sweep that fans ``run_period`` cells through
        :class:`repro.parallel.ParallelRunner` accumulates phase time in
        each worker's own :class:`~repro.sim.metrics.PhaseTimers`; the
        parent's :meth:`summary` would otherwise report only its local
        (near-zero) share.  Pass each worker's
        ``PhaseTimers.snapshot()`` dict here before reading the summary.
        """
        for snap in snapshots:
            self.timers.merge(snap)

    # ------------------------------------------------------------------
    def total_cost(self) -> float:
        """Accumulated Tier-2 cost over all simulated periods."""
        return sum(r.service.total_cost for r in self.reports)

    def summary(self) -> SimulationSummary:
        """Aggregate metrics over every period simulated so far.

        Raises:
            ValueError: if no period has been run yet.
        """
        if not self.reports:
            raise ValueError("no periods simulated yet")
        pct = [r.service.percent_charged for r in self.reports]
        return SimulationSummary(
            periods=len(self.reports),
            trips_requested=sum(r.trips_requested for r in self.reports),
            trips_executed=sum(r.trips_executed for r in self.reports),
            total_cost=self.total_cost(),
            total_incentives=sum(r.incentives_paid for r in self.reports),
            total_bikes_charged=sum(r.service.bikes_charged for r in self.reports),
            mean_percent_charged=float(np.mean(pct)),
            final_station_count=len(self.fleet.stations),
            phase_seconds=self.timers.snapshot(),
        )
