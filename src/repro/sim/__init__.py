"""End-to-end system simulation: trips, incentives and the charging tour."""

from .events import (
    BikeRelocated,
    Event,
    EventLog,
    OfferMade,
    OperatorStop,
    PeriodClosed,
    PlacementDecided,
    StationOpened,
    TripExecuted,
    TripRequested,
    TripSkipped,
    load_jsonl,
)
from .operator import ChargingOperator, OperatorConfig, ServiceReport
from .policies import (
    BudgetCoveragePolicy,
    SiteSelectionPolicy,
    ThresholdPolicy,
    TopDensityPolicy,
)
from .metrics import PhaseTimers, ServiceMetrics, analyze_log
from .rebalancing import (
    RebalanceMove,
    RebalanceReport,
    rebalance_fleet,
    target_distribution,
)
from .simulator import PeriodReport, SimulationSummary, SystemSimulator

__all__ = [
    "BikeRelocated",
    "Event",
    "EventLog",
    "OfferMade",
    "OperatorStop",
    "PeriodClosed",
    "PlacementDecided",
    "StationOpened",
    "TripExecuted",
    "TripRequested",
    "TripSkipped",
    "load_jsonl",
    "ChargingOperator",
    "OperatorConfig",
    "ServiceReport",
    "BudgetCoveragePolicy",
    "SiteSelectionPolicy",
    "ThresholdPolicy",
    "TopDensityPolicy",
    "PhaseTimers",
    "ServiceMetrics",
    "analyze_log",
    "RebalanceMove",
    "RebalanceReport",
    "rebalance_fleet",
    "target_distribution",
    "PeriodReport",
    "SimulationSummary",
    "SystemSimulator",
]
