"""Typed event log for the system simulation.

Every consequential action in a simulated period — a trip request, a
Tier-1 placement decision, an incentive offer, a ride, an operator stop —
can be recorded as a typed event.  The log makes simulation runs
auditable (tests assert on event sequences rather than only aggregate
counters) and exportable (JSON-lines) for external analysis.

The log is deliberately passive: producers call :meth:`EventLog.emit`,
consumers filter/replay.  The simulator attaches one when constructed
with ``event_log=...``.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Type, TypeVar, Union

from ..geo.points import Point
from ..ioutil import atomic_write_text

__all__ = [
    "Event",
    "TripRequested",
    "PlacementDecided",
    "OfferMade",
    "BikeRelocated",
    "TripExecuted",
    "TripSkipped",
    "StationOpened",
    "OperatorStop",
    "PeriodClosed",
    "EventLog",
]


@dataclass(frozen=True)
class Event:
    """Base event: a sequence number is assigned by the log."""

    seq: int = field(default=-1, compare=False)

    @property
    def kind(self) -> str:
        """Event type name (stable identifier for filtering/export)."""
        return type(self).__name__


@dataclass(frozen=True)
class TripRequested(Event):
    order_id: int = -1
    origin_x: float = 0.0
    origin_y: float = 0.0
    dest_x: float = 0.0
    dest_y: float = 0.0


@dataclass(frozen=True)
class PlacementDecided(Event):
    order_id: int = -1
    station_index: int = -1
    opened_new: bool = False
    walking_cost: float = 0.0
    penalty: str = ""


@dataclass(frozen=True)
class OfferMade(Event):
    order_id: int = -1
    origin_station: int = -1
    accepted: bool = False
    incentive: float = 0.0
    reason: str = ""


@dataclass(frozen=True)
class BikeRelocated(Event):
    bike_id: int = -1
    from_station: int = -1
    to_station: int = -1


@dataclass(frozen=True)
class TripExecuted(Event):
    order_id: int = -1
    bike_id: int = -1
    from_station: int = -1
    to_station: int = -1


@dataclass(frozen=True)
class TripSkipped(Event):
    order_id: int = -1
    origin_station: int = -1
    reason: str = "no bike available"


@dataclass(frozen=True)
class StationOpened(Event):
    station_index: int = -1
    x: float = 0.0
    y: float = 0.0


@dataclass(frozen=True)
class OperatorStop(Event):
    station: int = -1
    position: int = -1
    bikes_charged: int = 0
    within_shift: bool = True


@dataclass(frozen=True)
class PeriodClosed(Event):
    period: int = -1
    total_cost: float = 0.0
    percent_charged: float = 0.0


E = TypeVar("E", bound=Event)


class EventLog:
    """An append-only, filterable log of simulation events."""

    def __init__(self) -> None:
        self._events: List[Event] = []

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def emit(self, event: Event) -> Event:
        """Append an event, stamping its sequence number; returns it."""
        stamped = _with_seq(event, len(self._events))
        self._events.append(stamped)
        return stamped

    def of_type(self, event_type: Type[E]) -> List[E]:
        """All events of the exact given type, in order."""
        return [e for e in self._events if type(e) is event_type]

    def where(self, predicate: Callable[[Event], bool]) -> List[Event]:
        """All events matching ``predicate``, in order."""
        return [e for e in self._events if predicate(e)]

    def counts(self) -> Dict[str, int]:
        """Event counts per kind."""
        out: Dict[str, int] = {}
        for e in self._events:
            out[e.kind] = out.get(e.kind, 0) + 1
        return out

    def clear(self) -> None:
        """Drop all events."""
        self._events.clear()

    # ------------------------------------------------------------------
    def to_jsonl(self) -> str:
        """Serialise the log as JSON-lines (one event per line)."""
        lines = []
        for e in self._events:
            payload = asdict(e)
            payload["kind"] = e.kind
            lines.append(json.dumps(payload, sort_keys=True))
        return "\n".join(lines)

    def save(self, path) -> None:
        """Write the JSON-lines serialisation to ``path`` atomically.

        Goes through the tmp+fsync+rename helper so a crash mid-save can
        never leave a truncated log under ``path``.
        """
        text = self.to_jsonl()
        if self._events:
            text += "\n"
        atomic_write_text(path, text)


_EVENT_TYPES: Dict[str, Type[Event]] = {
    cls.__name__: cls
    for cls in (
        TripRequested, PlacementDecided, OfferMade, BikeRelocated,
        TripExecuted, TripSkipped, StationOpened, OperatorStop, PeriodClosed,
    )
}


def _with_seq(event: Event, seq: int) -> Event:
    data = asdict(event)
    data["seq"] = seq
    return type(event)(**data)


def load_jsonl(text: str) -> EventLog:
    """Parse a JSON-lines dump back into an :class:`EventLog`.

    Raises:
        ValueError: on an unknown event kind.
    """
    log = EventLog()
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        payload = json.loads(line)
        kind = payload.pop("kind")
        payload.pop("seq", None)
        if kind not in _EVENT_TYPES:
            raise ValueError(f"unknown event kind {kind!r}")
        log.emit(_EVENT_TYPES[kind](**payload))
    return log
