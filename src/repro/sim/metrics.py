"""Service-quality analytics over the simulation event log.

The paper's evaluation reports system-level aggregates; a deployment
also watches *experience* metrics: how far riders actually walk, how the
incentive funnel converts, which stations carry the load.  This module
derives all of them from the typed event log, so any simulated period
can be audited after the fact without re-running it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Union

import numpy as np

from .events import (
    EventLog,
    OfferMade,
    OperatorStop,
    PlacementDecided,
    StationOpened,
    TripExecuted,
    TripRequested,
    TripSkipped,
)

__all__ = ["PhaseTimers", "ServiceMetrics", "analyze_log"]


@dataclass
class PhaseTimers:
    """Wall-clock accumulators for the simulator's compute phases.

    Future perf work needs in-repo numbers for where simulated time goes;
    the simulator adds ``time.perf_counter()`` deltas here as it runs.

    When phases execute in *worker processes* (a sweep fanned through
    :class:`repro.parallel.ParallelRunner`), each worker accumulates its
    own timers; ship the :meth:`snapshot` back with the task result and
    fold it into the parent's accumulators with :meth:`merge`, so the
    summary reports whole-job phase time instead of silently counting
    only the parent's share.

    Attributes:
        placement: seconds inside Tier-1 ``planner.offer`` calls — the
            nearest-station query, the opening coin flip, and any
            KS checkpoint that fires on that arrival.
        ks: the KS-test share of ``placement`` (mirrors the planner's
            own ``ks_seconds`` counter).
        incentives: seconds inside Tier-2 ``mechanism.offer_ride``.
    """

    placement: float = 0.0
    ks: float = 0.0
    incentives: float = 0.0

    def snapshot(self) -> Dict[str, float]:
        """The counters as a plain dict (for summaries / JSON)."""
        return {
            "placement": self.placement,
            "ks": self.ks,
            "incentives": self.incentives,
        }

    def merge(self, other: Union["PhaseTimers", Dict[str, float]]) -> "PhaseTimers":
        """Add another timer set (or its snapshot dict) into this one.

        Args:
            other: a :class:`PhaseTimers` or a :meth:`snapshot`-shaped
                mapping — the form worker processes return, since the
                dataclass itself never crosses the pool boundary.

        Returns:
            ``self``, so per-worker snapshots chain:
            ``timers.merge(a).merge(b)``.

        Raises:
            ValueError: if a mapping carries an unknown phase name.
        """
        snap = other.snapshot() if isinstance(other, PhaseTimers) else other
        unknown = set(snap) - {"placement", "ks", "incentives"}
        if unknown:
            raise ValueError(f"unknown phase(s) in snapshot: {sorted(unknown)}")
        self.placement += float(snap.get("placement", 0.0))
        self.ks += float(snap.get("ks", 0.0))
        self.incentives += float(snap.get("incentives", 0.0))
        return self

    @classmethod
    def from_snapshot(cls, snap: Dict[str, float]) -> "PhaseTimers":
        """Rebuild timers from a :meth:`snapshot` dict (worker fan-in)."""
        return cls().merge(snap)


@dataclass(frozen=True)
class ServiceMetrics:
    """Experience metrics of one (or more) simulated periods.

    Attributes:
        trips_requested: total requests seen.
        service_rate: executed / requested.
        walk_percentiles: decision-time walking distance (m) at the
            25/50/75/95th percentiles, over assigned (non-opening) trips.
        offer_funnel: ``(offers made, offers accepted)``.
        stations_opened_online: count of online openings.
        station_load: destination share per station id (top stations
            first), as a fraction of executed trips.
        load_concentration: share of drop-offs at the busiest 10% of
            destination stations.
        operator_stops: stops the charging tour made.
        bikes_charged: bikes recharged across those stops.
    """

    trips_requested: int
    service_rate: float
    walk_percentiles: Dict[int, float]
    offer_funnel: Tuple[int, int]
    stations_opened_online: int
    station_load: Dict[int, float]
    load_concentration: float
    operator_stops: int
    bikes_charged: int

    def to_text(self) -> str:
        """Human-readable report."""
        p = self.walk_percentiles
        made, accepted = self.offer_funnel
        rate = 0.0 if made == 0 else 100.0 * accepted / made
        lines = [
            f"requests: {self.trips_requested}, served "
            f"{100 * self.service_rate:.0f}%",
            f"walk to assigned parking (m): p25={p.get(25, 0):.0f} "
            f"p50={p.get(50, 0):.0f} p75={p.get(75, 0):.0f} p95={p.get(95, 0):.0f}",
            f"incentive funnel: {made} offers -> {accepted} accepted ({rate:.0f}%)",
            f"stations opened online: {self.stations_opened_online}; "
            f"busiest 10% of destinations take "
            f"{100 * self.load_concentration:.0f}% of drop-offs",
            f"operator: {self.operator_stops} stops, "
            f"{self.bikes_charged} bikes charged",
        ]
        return "\n".join(lines)


def analyze_log(log: EventLog) -> ServiceMetrics:
    """Derive :class:`ServiceMetrics` from an event log.

    Raises:
        ValueError: if the log holds no trip requests.
    """
    requested = log.of_type(TripRequested)
    if not requested:
        raise ValueError("log holds no TripRequested events")
    executed = log.of_type(TripExecuted)
    skipped = log.of_type(TripSkipped)
    decided = log.of_type(PlacementDecided)
    offers = log.of_type(OfferMade)
    opened = log.of_type(StationOpened)
    stops = log.of_type(OperatorStop)

    walks = np.asarray(
        [d.walking_cost for d in decided if not d.opened_new], dtype=float
    )
    walk_percentiles = (
        {q: float(np.percentile(walks, q)) for q in (25, 50, 75, 95)}
        if walks.size
        else {q: 0.0 for q in (25, 50, 75, 95)}
    )

    load: Dict[int, int] = {}
    for e in executed:
        load[e.to_station] = load.get(e.to_station, 0) + 1
    total_exec = max(len(executed), 1)
    station_load = {
        s: c / total_exec
        for s, c in sorted(load.items(), key=lambda kv: (-kv[1], kv[0]))
    }
    counts = sorted(load.values(), reverse=True)
    if counts:
        top_n = max(1, len(counts) // 10)
        concentration = sum(counts[:top_n]) / sum(counts)
    else:
        concentration = 0.0

    return ServiceMetrics(
        trips_requested=len(requested),
        service_rate=len(executed) / len(requested),
        walk_percentiles=walk_percentiles,
        offer_funnel=(len(offers), sum(1 for o in offers if o.accepted)),
        stations_opened_online=len(opened),
        station_load=station_load,
        load_concentration=float(concentration),
        operator_stops=len(stops),
        bikes_charged=sum(s.bikes_charged for s in stops),
    )
