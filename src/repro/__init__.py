"""E-Sharing: data-driven online optimization of parking location placement
for dockless electric bike sharing (ICDCS 2020 reproduction).

The public API re-exports the main entry points of each subsystem; see
DESIGN.md for the module map and EXPERIMENTS.md for the paper-vs-measured
record.
"""

__version__ = "1.0.0"
