"""The interior-trip bit-identity contract, pinned at 2/4/8 shards.

Serving a territory as one shard of an N-shard fleet must be
bit-identical — same outcome stream, same journal bytes, same
checkpoint state — to serving that territory alone as a standalone
single-shard deployment built from the same :class:`ShardSpec`.
Referrals are advisory annotations on *boundary* trips only; interior
trips never carry one.
"""

import numpy as np
import pytest

from repro.core.streaming import ServiceResponse
from repro.shard import ShardRouter, ShardedRuntime, build_shard_runtime

from .conftest import make_city, make_plan, make_trips


def _zeroed_state(service) -> dict:
    state = service.state_dict()
    state["planner"]["ks_seconds"] = 0.0
    return state


@pytest.mark.parametrize("n_shards", [2, 4, 8])
def test_fleet_matches_standalone_oracles(tmp_path, n_shards):
    plan = make_plan(n_shards)
    city = make_city(plan, tmp_path / "city")
    trips = make_trips(700, seed=11)
    outcome = city.serve(trips)

    router = ShardRouter(plan)
    buckets = router.split_trips(trips)
    by_id = {r.shard_id: r for r in outcome.reports}
    for sid in range(n_shards):
        if not buckets[sid]:
            assert sid not in by_id
            continue
        oracle = build_shard_runtime(city.spec(sid), tmp_path / f"oracle-{sid}")
        oracle_outcomes = oracle.serve(buckets[sid])
        report = by_id[sid]
        assert report.outcomes == tuple(oracle_outcomes)
        fleet_journal = (
            tmp_path / "city" / f"shard-{sid:03d}" / "journal.jsonl"
        ).read_bytes()
        oracle_journal = (tmp_path / f"oracle-{sid}" / "journal.jsonl").read_bytes()
        assert fleet_journal == oracle_journal
        recovered = city.open_shard(sid)
        assert _zeroed_state(recovered.inner.service) == _zeroed_state(
            oracle.inner.service
        )
        recovered.close()
        oracle.close()


@pytest.mark.parametrize("n_shards", [2, 4])
def test_referrals_touch_only_boundary_trips(tmp_path, n_shards):
    plan = make_plan(n_shards)
    city = make_city(plan, tmp_path / "city")
    trips = make_trips(600, seed=12)
    outcome = city.serve(trips)
    ends = {t.order_id: t.end for t in trips}
    referred = set()
    for ref in outcome.referrals:
        referred.add(ref.order_id)
        end = ends[ref.order_id]
        assert bool(plan.boundary_of_many([end.x], [end.y])[0])
        assert ref.station_shard != ref.home_shard
        assert ref.saved_m > 0.0
        assert ref.walking_m >= 0.0
    # Interior trips never carry a referral.
    interior = {
        t.order_id
        for t in trips
        if not bool(plan.boundary_of_many([t.end.x], [t.end.y])[0])
    }
    assert not (referred & interior)


def test_single_shard_fleet_equals_plain_runtime(tmp_path):
    # n_shards=1: the fleet wrapper must add nothing to the decisions.
    plan = make_plan(1)
    city = make_city(plan, tmp_path / "city")
    trips = make_trips(300, seed=13)
    outcome = city.serve(trips)
    oracle = build_shard_runtime(city.spec(0), tmp_path / "oracle")
    oracle_outcomes = oracle.serve(trips)
    assert outcome.reports[0].outcomes == tuple(oracle_outcomes)
    assert outcome.referrals == ()
    oracle.close()


def test_multi_epoch_parity(tmp_path):
    plan = make_plan(3)
    city = make_city(plan, tmp_path / "city")
    epoch1 = make_trips(300, seed=14)
    epoch2 = make_trips(300, seed=15)
    # Second epoch continues the clock and uses fresh order ids.
    epoch2 = [
        t.__class__(
            order_id=1000 + t.order_id, user_id=t.user_id, bike_id=t.bike_id,
            bike_type=t.bike_type,
            start_time=epoch1[-1].start_time + (t.start_time - epoch2[0].start_time),
            start=t.start, end=t.end, battery=t.battery,
        )
        for t in epoch2
    ]
    city.serve(epoch1)
    out2 = city.serve(epoch2)

    router = ShardRouter(plan)
    b1 = router.split_trips(epoch1)
    b2 = router.split_trips(epoch2)
    by_id = {r.shard_id: r for r in out2.reports}
    for sid in range(plan.n_shards):
        oracle = build_shard_runtime(city.spec(sid), tmp_path / f"oracle-{sid}")
        oracle.serve(b1[sid])
        second = oracle.serve(b2[sid])
        if b2[sid]:
            assert by_id[sid].outcomes == tuple(second)
        fleet_journal = (
            tmp_path / "city" / f"shard-{sid:03d}" / "journal.jsonl"
        ).read_bytes()
        oracle_journal = (tmp_path / f"oracle-{sid}" / "journal.jsonl").read_bytes()
        assert fleet_journal == oracle_journal
        oracle.close()


def test_parallel_epoch_matches_serial(tmp_path):
    plan = make_plan(4)
    trips = make_trips(400, seed=16)
    serial = make_city(plan, tmp_path / "serial")
    parallel = make_city(plan, tmp_path / "par")
    out_serial = serial.serve(trips, workers=1)
    out_parallel = parallel.serve(trips, workers=2)
    assert out_serial == out_parallel
    for sid in range(plan.n_shards):
        a = tmp_path / "serial" / f"shard-{sid:03d}" / "journal.jsonl"
        b = tmp_path / "par" / f"shard-{sid:03d}" / "journal.jsonl"
        assert a.exists() == b.exists()
        if a.exists():
            assert a.read_bytes() == b.read_bytes()


def test_every_admitted_trip_served_exactly_once(tmp_path):
    plan = make_plan(3)
    city = make_city(plan, tmp_path / "city")
    trips = make_trips(500, seed=17)
    outcome = city.serve(trips)
    served_ids = [
        o.order_id
        for r in outcome.reports
        for o in r.outcomes
        if isinstance(o, ServiceResponse)
    ]
    assert sorted(served_ids) == [t.order_id for t in trips]
    assert len(set(served_ids)) == len(served_ids)
