"""ShardPlan: partition invariants, routing kernels, persistence."""

import numpy as np
import pytest

from repro.geo import geohash
from repro.geo.distance import LocalProjection
from repro.geo.points import BoundingBox, Point
from repro.shard import ShardPlan

from .conftest import PLANE, city_bounds, city_historical, make_plan


class TestConstruction:
    @pytest.mark.parametrize("n_shards", [1, 2, 3, 4, 8])
    def test_every_shard_gets_cells(self, n_shards):
        plan = make_plan(n_shards)
        counts = plan.counts()
        assert len(counts) == n_shards
        assert all(c >= 1 for c in counts)
        assert sum(counts) == plan.shape[0] * plan.shape[1]

    def test_uniform_split_is_balanced(self):
        plan = make_plan(4)
        counts = plan.counts()
        assert max(counts) - min(counts) <= max(2, sum(counts) // 10)

    def test_shards_are_contiguous_morton_runs(self):
        # Walking the rectangle's cells in Morton (geohash) order must
        # visit each shard exactly once — contiguous territories.
        plan = make_plan(5)
        rows, cols = np.divmod(
            np.arange(plan.shape[0] * plan.shape[1]), plan.shape[1]
        )
        codes = [
            geohash.cell_code(int(r) + plan.origin[0], int(c) + plan.origin[1], plan.precision)
            for r, c in zip(rows, cols)
        ]
        order = np.argsort(np.array(codes))
        walked = plan.cell_shards.ravel()[order]
        changes = int((np.diff(walked) != 0).sum())
        assert changes == plan.n_shards - 1

    def test_demand_weighting_shifts_boundaries(self):
        rng = np.random.default_rng(0)
        hot = rng.normal([300.0, 300.0], 80.0, size=(2000, 2))
        plan_flat = make_plan(2)
        plan_hot = ShardPlan.from_bounds(city_bounds(), 2, demand=hot)
        # The hot corner's shard should own fewer cells when weighted.
        hot_shard = plan_hot.shard_of(Point(300.0, 300.0))
        flat_shard = plan_flat.shard_of(Point(300.0, 300.0))
        assert plan_hot.counts()[hot_shard] < plan_flat.counts()[flat_shard]

    def test_too_many_shards_rejected(self):
        with pytest.raises(ValueError):
            ShardPlan.from_bounds(city_bounds(), 10_000, precision=1)

    def test_nonpositive_shards_rejected(self):
        with pytest.raises(ValueError):
            make_plan(0)


class TestRouting:
    def test_scalar_matches_vectorized(self):
        plan = make_plan(4)
        rng = np.random.default_rng(1)
        xs = rng.uniform(-200.0, PLANE + 200.0, 500)
        ys = rng.uniform(-200.0, PLANE + 200.0, 500)
        vec = plan.shard_of_many(xs, ys)
        for i in range(500):
            assert plan.shard_of(Point(float(xs[i]), float(ys[i]))) == int(vec[i])

    def test_garbage_routes_deterministically(self):
        plan = make_plan(3)
        sids = plan.shard_of_many(
            np.array([np.nan, np.inf, -np.inf, 1e12]),
            np.array([np.nan, np.inf, -np.inf, -1e12]),
        )
        assert (0 <= sids).all() and (sids < 3).all()
        again = plan.shard_of_many(
            np.array([np.nan, np.inf, -np.inf, 1e12]),
            np.array([np.nan, np.inf, -np.inf, -1e12]),
        )
        assert sids.tolist() == again.tolist()

    def test_matches_geohash_prefix_assignment(self):
        # The routing table must agree with encoding the point and
        # looking up its cell: shard(point) == shard(cell(geohash(point))).
        plan = make_plan(3)
        proj = LocalProjection(plan.ref_lat, plan.ref_lon)
        rng = np.random.default_rng(2)
        for _ in range(200):
            x, y = rng.uniform(0.0, PLANE, 2)
            lat, lon = proj.to_geo(Point(float(x), float(y)))
            code = geohash.encode(lat, lon, plan.precision)
            r, c = geohash.cell_of(code)
            sid = plan.cell_shards[r - plan.origin[0], c - plan.origin[1]]
            assert plan.shard_of(Point(float(x), float(y))) == int(sid)

    def test_boundary_mask_matches_neighbour_scan(self):
        plan = make_plan(4)
        table = plan.cell_shards
        n_lat, n_lon = plan.shape
        rng = np.random.default_rng(3)
        xs = rng.uniform(0.0, PLANE, 300)
        ys = rng.uniform(0.0, PLANE, 300)
        rows, cols = plan.cell_index_of_many(xs, ys)
        flags = plan.boundary_of_many(xs, ys)
        for r, c, flag in zip(rows.tolist(), cols.tolist(), flags.tolist()):
            expect = False
            for dr in (-1, 0, 1):
                for dc in (-1, 0, 1):
                    rr = min(max(r + dr, 0), n_lat - 1)
                    cc = min(max(c + dc, 0), n_lon - 1)
                    if table[rr, cc] != table[r, c]:
                        expect = True
            assert flag == expect

    def test_touches_shard_excludes_own_cells(self):
        plan = make_plan(3)
        rng = np.random.default_rng(4)
        xs = rng.uniform(0.0, PLANE, 300)
        ys = rng.uniform(0.0, PLANE, 300)
        own = plan.shard_of_many(xs, ys)
        for sid in range(plan.n_shards):
            near = plan.touches_shard(xs, ys, sid)
            assert not bool((near & (own == sid)).any())


class TestPersistence:
    def test_state_roundtrip(self):
        plan = make_plan(4)
        clone = ShardPlan.from_state(plan.state_dict())
        assert clone.precision == plan.precision
        assert clone.origin == plan.origin
        assert clone.shape == plan.shape
        assert (clone.cell_shards == plan.cell_shards).all()
        rng = np.random.default_rng(5)
        xs = rng.uniform(0.0, PLANE, 100)
        ys = rng.uniform(0.0, PLANE, 100)
        assert clone.shard_of_many(xs, ys).tolist() == plan.shard_of_many(xs, ys).tolist()

    def test_state_is_json_serialisable(self):
        import json

        plan = make_plan(2)
        assert ShardPlan.from_state(
            json.loads(json.dumps(plan.state_dict()))
        ).counts() == plan.counts()

    def test_cells_of_shard_cover_rectangle(self):
        plan = make_plan(3)
        seen = set()
        for sid in range(plan.n_shards):
            cells = plan.cells_of_shard(sid)
            assert cells == sorted(cells)  # Morton == lexicographic order
            seen.update(cells)
        assert len(seen) == plan.shape[0] * plan.shape[1]

    def test_invalid_table_rejected(self):
        plan = make_plan(2)
        state = plan.state_dict()
        state["n_shards"] = 3  # shard 2 owns nothing
        with pytest.raises(ValueError):
            ShardPlan.from_state(state)
