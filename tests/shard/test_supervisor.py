"""Tests for repro.shard.supervisor (the self-healing fleet layer)."""

import json

import pytest

from repro.errors import WorkerCrashError
from repro.guard.runtime import DEGRADED, HALTED, HEALTHY
from repro.shard import (
    QUARANTINED,
    FleetSupervisor,
    QuarantinedBlock,
    ShardRouter,
    SupervisorConfig,
)
from repro.resilience import TripJournal

from .conftest import make_city, make_plan, make_trips

BLOCK = 8


def _no_sleep(_s):
    pass


def _supervised(city, hook=None, **overrides):
    config = SupervisorConfig(backoff_base_s=0.0, **overrides)
    return FleetSupervisor(
        city, config=config, sleep=_no_sleep, pre_block_hook=hook
    )


def _journal_ids(path):
    return {e.trip.order_id for e in TripJournal(path, durable=False).scan()}


class TestConfig:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_restarts": 0},
            {"poison_retries": 0},
            {"backoff_base_s": -1.0},
            {"backoff_cap_s": -0.5},
            {"quarantine_keep": 0},
            {"incident_keep": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            SupervisorConfig(**kwargs)


class TestFaultFreeParity:
    def test_bit_identical_to_plain_fleet(self, tmp_path):
        trips = make_trips(60, seed=3)
        plan = make_plan(3)
        plain = make_city(plan, tmp_path / "plain", seed=3)
        expected = plain.serve(trips, block_size=BLOCK)
        city = make_city(make_plan(3), tmp_path / "sup", seed=3)
        supervisor = _supervised(city)
        outcome = supervisor.serve(trips, block_size=BLOCK)

        assert outcome.health == HEALTHY
        assert outcome.restarts == 0 and not outcome.quarantined
        assert supervisor.incidents.total == 0
        by_id = {r.shard_id: r for r in outcome.reports}
        for report in expected.reports:
            supervised = by_id[report.shard_id]
            assert supervised.state == HEALTHY and supervised.restarts == 0
            assert supervised.report.outcomes == report.outcomes
            assert supervised.report.applied_seq == report.applied_seq
            plain_journal = (
                tmp_path / "plain" / f"shard-{report.shard_id:03d}" / "journal.jsonl"
            )
            sup_journal = (
                tmp_path / "sup" / f"shard-{report.shard_id:03d}" / "journal.jsonl"
            )
            assert sup_journal.read_bytes() == plain_journal.read_bytes()

    def test_post_epoch_scrub_runs_clean(self, tmp_path):
        city = make_city(make_plan(2), tmp_path / "c", seed=1)
        outcome = _supervised(city).serve(make_trips(30, seed=1), block_size=BLOCK)
        assert outcome.scrub is not None and outcome.scrub.clean

    def test_scrub_can_be_disabled(self, tmp_path):
        city = make_city(make_plan(2), tmp_path / "c", seed=1)
        supervisor = _supervised(city, scrub_after_epoch=False)
        outcome = supervisor.serve(make_trips(30, seed=1), block_size=BLOCK)
        assert outcome.scrub is None


class TestTransientFault:
    def test_restart_heals_and_degrades(self, tmp_path):
        trips = make_trips(60, seed=3)
        plain = make_city(make_plan(3), tmp_path / "plain", seed=3)
        plain.serve(trips, block_size=BLOCK)

        def hook(sid, epoch, generation, block):
            if sid == 1 and generation == 0:
                raise RuntimeError("injected first-attempt crash")

        city = make_city(make_plan(3), tmp_path / "sup", seed=3)
        supervisor = _supervised(city, hook=hook)
        outcome = supervisor.serve(trips, block_size=BLOCK)

        by_id = {r.shard_id: r for r in outcome.reports}
        assert by_id[1].state == DEGRADED and by_id[1].restarts == 1
        assert outcome.health == DEGRADED
        assert all(r.restarts == 0 for r in outcome.reports if r.shard_id != 1)
        assert supervisor.incidents.total > 0
        # The healed shard's journal is byte-identical to the plain run:
        # restart-from-start re-served the whole bucket through the
        # duplicate screen.
        assert (
            (tmp_path / "sup" / "shard-001" / "journal.jsonl").read_bytes()
            == (tmp_path / "plain" / "shard-001" / "journal.jsonl").read_bytes()
        )
        assert (tmp_path / "sup" / "logs" / "incidents.jsonl").exists()

    def test_mid_generation_fault_resumes_with_dedup(self, tmp_path):
        trips = make_trips(60, seed=3)
        fired = []

        def hook(sid, epoch, generation, block):
            if sid == 1 and generation <= 1 and block in (-1, 1) and len(fired) < 2:
                fired.append((generation, block))
                raise RuntimeError("injected")

        city = make_city(make_plan(3), tmp_path / "c", seed=3)
        supervisor = _supervised(city, hook=hook)
        outcome = supervisor.serve(trips, block_size=BLOCK)
        by_id = {r.shard_id: r for r in outcome.reports}
        assert by_id[1].restarts == 2 and by_id[1].state == DEGRADED
        bucket = ShardRouter(city.plan).split_trips(trips)[1]
        journal = tmp_path / "c" / "shard-001" / "journal.jsonl"
        assert _journal_ids(journal) == {t.order_id for t in bucket}


class TestPoisonQuarantine:
    def _run(self, tmp_path, trips_n=60, poison_block=1, **overrides):
        trips = make_trips(trips_n, seed=3)

        def hook(sid, epoch, generation, block):
            if sid == 1 and (generation == 0 or block == poison_block):
                raise RuntimeError("poisoned planner input")

        city = make_city(make_plan(3), tmp_path / "c", seed=3)
        supervisor = _supervised(city, hook=hook, **overrides)
        outcome = supervisor.serve(trips, block_size=BLOCK)
        return trips, city, supervisor, outcome

    def test_block_quarantined_with_provenance(self, tmp_path):
        trips, city, supervisor, outcome = self._run(tmp_path, poison_retries=2)
        by_id = {r.shard_id: r for r in outcome.reports}
        report = by_id[1]
        assert report.state == QUARANTINED
        assert outcome.health == QUARANTINED
        assert len(report.quarantined) == 1
        row = report.quarantined[0]
        bucket = ShardRouter(city.plan).split_trips(trips)[1]
        expected_ids = tuple(
            t.order_id for t in bucket[1 * BLOCK : 2 * BLOCK]
        )
        assert row.order_ids == expected_ids
        assert row.shard_id == 1 and row.epoch == 1 and row.block_index == 1
        assert row.attempts == 2
        assert "poisoned" in row.error
        # Everything else in the bucket is journaled; the poison block is
        # exactly absent (it never reached the WAL in any generation).
        journal = tmp_path / "c" / "shard-001" / "journal.jsonl"
        assert _journal_ids(journal) == (
            {t.order_id for t in bucket} - set(expected_ids)
        )
        assert row.journaled == 0

    def test_ledger_persisted_and_reloaded(self, tmp_path):
        _, city, supervisor, outcome = self._run(tmp_path, poison_retries=2)
        ledger = tmp_path / "c" / "quarantine.jsonl"
        rows = [
            QuarantinedBlock.from_json(json.loads(l))
            for l in ledger.read_text().splitlines()
        ]
        assert rows == list(supervisor.quarantine)

        recovered = FleetSupervisor.recover(
            tmp_path / "c", config=SupervisorConfig(backoff_base_s=0.0),
            sleep=_no_sleep,
        )
        assert recovered.quarantine == rows
        assert recovered.epoch == 1  # epoch counter resumes past the ledger
        assert "quarantined block" in recovered.health_summary()

    def test_unaffected_shards_keep_serving(self, tmp_path):
        trips, city, _, outcome = self._run(tmp_path, poison_retries=2)
        buckets = ShardRouter(city.plan).split_trips(trips)
        for report in outcome.reports:
            if report.shard_id == 1:
                continue
            assert report.state == HEALTHY and report.restarts == 0
            assert report.report.served + report.report.duplicates == len(
                buckets[report.shard_id]
            )


class TestHaltPath:
    def test_budget_exhaustion_halts_only_that_shard(self, tmp_path):
        trips = make_trips(60, seed=3)

        def hook(sid, epoch, generation, block):
            if sid == 1 and generation == 0:
                raise RuntimeError("first attempt down")

        def broken_factory(spec, directory):
            raise RuntimeError("recovery permanently broken")

        city = make_city(make_plan(3), tmp_path / "c", seed=3)
        supervisor = FleetSupervisor(
            city,
            config=SupervisorConfig(backoff_base_s=0.0, max_restarts=2),
            sleep=_no_sleep,
            runtime_factory=broken_factory,
            pre_block_hook=hook,
        )
        outcome = supervisor.serve(trips, block_size=BLOCK)
        by_id = {r.shard_id: r for r in outcome.reports}
        assert by_id[1].state == HALTED and by_id[1].report is None
        assert by_id[1].restarts == 2
        assert "permanently broken" in by_id[1].error
        assert outcome.health == HALTED
        for sid, report in by_id.items():
            if sid != 1:
                assert report.state == HEALTHY
        assert supervisor.health[1] == HALTED
        assert "shard 001: halted" in supervisor.health_summary()

    def test_backoff_sleeps_only_on_failures(self, tmp_path):
        sleeps = []

        def hook(sid, epoch, generation, block):
            if sid == 1 and generation == 0:
                raise RuntimeError("one crash")

        city = make_city(make_plan(3), tmp_path / "c", seed=3)
        supervisor = FleetSupervisor(
            city,
            config=SupervisorConfig(backoff_base_s=0.5, seed=9),
            sleep=sleeps.append,
            pre_block_hook=hook,
        )
        supervisor.serve(make_trips(60, seed=3), block_size=BLOCK)
        assert len(sleeps) == 1
        assert 0.5 <= sleeps[0] < 1.0  # base * jitter in [1, 2)


class TestWorkerCrashIsolation:
    def test_dead_pool_falls_back_in_process(self, tmp_path):
        trips = make_trips(60, seed=3)
        plain = make_city(make_plan(3), tmp_path / "plain", seed=3)
        plain.serve(trips, block_size=BLOCK)

        class _DeadPool:
            def run(self, tasks):
                raise WorkerCrashError("pool lost its workers")

        city = make_city(make_plan(3), tmp_path / "c", seed=3)
        supervisor = FleetSupervisor(
            city,
            config=SupervisorConfig(backoff_base_s=0.0),
            sleep=_no_sleep,
            runner_factory=lambda workers, timeout: _DeadPool(),
        )
        outcome = supervisor.serve(trips, workers=2, block_size=BLOCK)
        assert outcome.health == DEGRADED  # every shard restarted once
        assert outcome.restarts == len(outcome.reports)
        for report in outcome.reports:
            sid = report.shard_id
            assert (
                (tmp_path / "c" / f"shard-{sid:03d}" / "journal.jsonl").read_bytes()
                == (
                    tmp_path / "plain" / f"shard-{sid:03d}" / "journal.jsonl"
                ).read_bytes()
            )
