"""Shared builders for the shard suite: one city, many territories."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.datasets.trips import TripRecord
from repro.geo.points import BoundingBox, Point
from repro.guard.runtime import GuardConfig
from repro.guard.validation import ValidationConfig
from repro.shard import ShardPlan, ShardedRuntime

PLANE = 2000.0
T0 = datetime(2017, 5, 10)


def make_trips(n, seed=0, spacing_s=30):
    rng = np.random.default_rng(seed)
    return [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=T0 + timedelta(seconds=spacing_s * i),
            start=Point(*rng.uniform(0.0, PLANE, 2)),
            end=Point(*rng.uniform(0.0, PLANE, 2)),
            battery=float(rng.uniform(0.1, 1.0)),
        )
        for i in range(n)
    ]


def city_bounds():
    return BoundingBox(0.0, 0.0, PLANE, PLANE)


def city_anchors():
    return [
        Point(float(x), float(y))
        for x in (0, 667, 1333, 2000)
        for y in (0, 667, 1333, 2000)
    ]


def city_historical(seed=0, n=300):
    return np.random.default_rng(seed).uniform(0.0, PLANE, size=(n, 2))


def guard_config():
    margin = 100.0
    return GuardConfig(
        validation=ValidationConfig(
            bounds=BoundingBox(-margin, -margin, PLANE + margin, PLANE + margin),
            max_backwards_s=3600.0,
        ),
        lateness_s=600.0,
    )


def make_plan(n_shards, precision=None):
    return ShardPlan.from_bounds(city_bounds(), n_shards, precision=precision)


def make_city(plan, directory, seed=0, checkpoint_every=500):
    return ShardedRuntime(
        plan,
        directory,
        city_anchors(),
        city_historical(seed),
        seed=seed,
        guard=guard_config(),
        checkpoint_every=checkpoint_every,
        durable=False,
    )


@pytest.fixture
def plan3():
    return make_plan(3)
