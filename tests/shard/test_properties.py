"""Hypothesis sweep: shard counts × hostile streams, parity must hold.

Whatever an unreliable upstream emits — duplicates, garbage fields,
clock skew, late deliveries — routing it through an N-shard fleet must
produce, per shard, exactly the outcomes and journal bytes of a
standalone runtime fed that shard's sub-stream.
"""

import tempfile
from pathlib import Path

import pytest

pytest.importorskip("hypothesis")
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.streaming import ServiceResponse
from repro.resilience.chaos import ChaosConfig, FaultInjector
from repro.shard import ShardRouter, build_shard_runtime

from .conftest import make_city, make_plan, make_trips

_PLANS = {n: make_plan(n) for n in (1, 2, 3, 4)}


@given(
    n_shards=st.sampled_from([1, 2, 3, 4]),
    stream_seed=st.integers(0, 2**16),
    chaos_seed=st.integers(0, 2**16),
)
@settings(max_examples=25, deadline=None)
def test_hostile_stream_parity(n_shards, stream_seed, chaos_seed):
    plan = _PLANS[n_shards]
    injector = FaultInjector(
        ChaosConfig(
            seed=chaos_seed,
            p_duplicate=0.05,
            p_garbage=0.05,
            p_clock_skew=0.05,
            skew_max_s=900.0,
            p_late=0.05,
        )
    )
    hostile = injector.mutate_trips(make_trips(80, seed=stream_seed))
    with tempfile.TemporaryDirectory() as tmp:
        tmp = Path(tmp)
        city = make_city(plan, tmp / "city")
        outcome = city.serve(hostile)

        # Every hostile record lands on exactly one shard.
        assert sum(r.offered for r in outcome.reports) == len(hostile)

        buckets = ShardRouter(plan).split_trips(hostile)
        by_id = {r.shard_id: r for r in outcome.reports}
        for sid in range(n_shards):
            if not buckets[sid]:
                assert sid not in by_id
                continue
            oracle = build_shard_runtime(city.spec(sid), tmp / f"oracle-{sid}")
            expected = oracle.serve(buckets[sid])
            report = by_id[sid]
            assert report.outcomes == tuple(expected)
            fleet = (tmp / "city" / f"shard-{sid:03d}" / "journal.jsonl").read_bytes()
            want = (tmp / f"oracle-{sid}" / "journal.jsonl").read_bytes()
            assert fleet == want
            # Dedup holds per shard even under duplicate redelivery.
            served = [
                o.order_id for o in report.outcomes if isinstance(o, ServiceResponse)
            ]
            assert len(served) == len(set(served))
            oracle.close()
