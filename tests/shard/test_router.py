"""ShardRouter: exact partition, stable order, columnar == scalar."""

import numpy as np

from repro.core.tripblock import TripBlock
from repro.shard import ShardRouter

from .conftest import make_plan, make_trips


class TestSplitTrips:
    def test_partition_is_exact(self):
        router = ShardRouter(make_plan(4))
        trips = make_trips(500, seed=1)
        buckets = router.split_trips(trips)
        assert len(buckets) == 4
        assert sum(len(b) for b in buckets) == len(trips)
        seen = {t.order_id for b in buckets for t in b}
        assert seen == {t.order_id for t in trips}

    def test_within_shard_order_preserved(self):
        router = ShardRouter(make_plan(3))
        trips = make_trips(400, seed=2)
        positions = {t.order_id: i for i, t in enumerate(trips)}
        for bucket in router.split_trips(trips):
            idx = [positions[t.order_id] for t in bucket]
            assert idx == sorted(idx)

    def test_matches_scalar_route(self):
        router = ShardRouter(make_plan(5))
        trips = make_trips(300, seed=3)
        buckets = router.split_trips(trips)
        for sid, bucket in enumerate(buckets):
            for t in bucket:
                assert router.route(t) == sid

    def test_chunking_does_not_change_routing(self):
        import repro.shard.router as router_mod

        router = ShardRouter(make_plan(3))
        trips = make_trips(300, seed=4)
        whole = router.split_trips(trips)
        original = router_mod._CHUNK
        try:
            router_mod._CHUNK = 7
            chunked = router.split_trips(trips)
        finally:
            router_mod._CHUNK = original
        assert [[t.order_id for t in b] for b in whole] == [
            [t.order_id for t in b] for b in chunked
        ]


class TestSplitBlock:
    def test_block_and_list_paths_agree(self):
        router = ShardRouter(make_plan(4))
        trips = make_trips(600, seed=5)
        block = TripBlock.from_trips(trips)
        by_block = {sid: sub.order_id.tolist() for sid, sub in router.split_block(block)}
        by_list = {
            sid: [t.order_id for t in bucket]
            for sid, bucket in enumerate(router.split_trips(trips))
            if bucket
        }
        assert by_block == by_list

    def test_subblocks_reassemble_bit_identically(self):
        router = ShardRouter(make_plan(3))
        trips = make_trips(400, seed=6)
        block = TripBlock.from_trips(trips)
        pieces = router.split_block(block)
        sids = router.plan.shard_of_many(block.end_x, block.end_y)
        for sid, sub in pieces:
            rows = np.flatnonzero(sids == sid)
            for col in (
                "order_id", "user_id", "bike_id", "bike_type", "start_us",
                "start_x", "start_y", "end_x", "end_y",
                "geodesic_m", "has_geodesic", "battery", "has_battery",
            ):
                got = getattr(sub, col)
                want = getattr(block, col)[rows]
                if got.dtype.kind == "f":
                    assert np.array_equal(got, want, equal_nan=True)
                else:
                    assert np.array_equal(got, want)

    def test_shard_ids_ascending_and_nonempty(self):
        router = ShardRouter(make_plan(6))
        block = TripBlock.from_trips(make_trips(300, seed=7))
        pieces = router.split_block(block)
        sids = [sid for sid, _ in pieces]
        assert sids == sorted(sids)
        assert all(len(sub) > 0 for _, sub in pieces)

    def test_nan_destination_routes_like_list_path(self):
        router = ShardRouter(make_plan(3))
        trips = make_trips(50, seed=8)
        from dataclasses import replace
        from repro.geo.points import Point

        trips[10] = replace(trips[10], end=Point(float("nan"), trips[10].end.y))
        block = TripBlock.from_trips(trips)
        by_block = {sid: sub.order_id.tolist() for sid, sub in router.split_block(block)}
        by_list = {
            sid: [t.order_id for t in bucket]
            for sid, bucket in enumerate(router.split_trips(trips))
            if bucket
        }
        assert by_block == by_list
