"""Kill-at-every-block crash recovery on a 3-shard fleet.

The fleet is killed after every block boundary of the input stream —
before any end-of-epoch checkpoint runs, so recovery must rebuild each
shard purely from its genesis snapshot plus journal replay.  After
recovering and serving the remainder, every shard's journal bytes and
service state must match the run that never crashed.
"""

import pytest

from repro.shard import ShardedRuntime

from .conftest import make_city, make_plan, make_trips

BLOCK = 32
N_TRIPS = 160


def _shard_journals(directory, n_shards):
    out = {}
    for sid in range(n_shards):
        path = directory / f"shard-{sid:03d}" / "journal.jsonl"
        out[sid] = path.read_bytes() if path.exists() else b""
    return out


def _shard_states(city, n_shards):
    out = {}
    for sid in range(n_shards):
        runtime = city.open_shard(sid)
        state = runtime.inner.service.state_dict()
        state["planner"]["ks_seconds"] = 0.0
        out[sid] = state
        runtime.close()
    return out


@pytest.fixture(scope="module")
def no_fault(tmp_path_factory):
    root = tmp_path_factory.mktemp("no-fault")
    plan = make_plan(3)
    city = make_city(plan, root)
    city.serve(make_trips(N_TRIPS, seed=42))
    return {
        "journals": _shard_journals(root, 3),
        "states": _shard_states(city, 3),
    }


@pytest.mark.parametrize("kill_after", range(1, N_TRIPS // BLOCK))
def test_kill_at_block_boundary_recovers_bit_identically(
    tmp_path, no_fault, kill_after
):
    trips = make_trips(N_TRIPS, seed=42)
    cut = kill_after * BLOCK
    plan = make_plan(3)
    city = make_city(plan, tmp_path)
    # Serve the prefix with checkpointing suppressed, then drop the
    # object on the floor: the journal tail is the only durable record.
    city.serve(trips[:cut], checkpoint=False)
    del city

    recovered = ShardedRuntime.recover(tmp_path)
    recovered.serve(trips[cut:])

    assert _shard_journals(tmp_path, 3) == no_fault["journals"]
    assert _shard_states(recovered, 3) == no_fault["states"]


def test_double_crash_still_recovers(tmp_path):
    # Crash twice at different depths; the final state must still match
    # a straight-through run.
    trips = make_trips(N_TRIPS, seed=43)
    plan = make_plan(3)

    straight_dir = tmp_path / "straight"
    straight = make_city(plan, straight_dir)
    straight.serve(trips)

    crashed_dir = tmp_path / "crashed"
    city = make_city(plan, crashed_dir)
    city.serve(trips[:48], checkpoint=False)
    del city
    city = ShardedRuntime.recover(crashed_dir)
    city.serve(trips[48:112], checkpoint=False)
    del city
    city = ShardedRuntime.recover(crashed_dir)
    city.serve(trips[112:])

    assert _shard_journals(crashed_dir, 3) == _shard_journals(straight_dir, 3)
    assert _shard_states(city, 3) == _shard_states(straight, 3)


def test_recover_refuses_missing_manifest(tmp_path):
    with pytest.raises(FileNotFoundError):
        ShardedRuntime.recover(tmp_path / "nowhere")
