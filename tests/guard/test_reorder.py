"""WatermarkBuffer: ordered release, bounded lateness, load shedding."""

import numpy as np
import pytest

from repro.guard import DeadLetterSink, WatermarkBuffer

from .conftest import make_trip, make_trips


def drain(buffer, stream):
    """Push a whole stream then flush; returns the emitted sequence."""
    out = []
    for trip in stream:
        out.extend(buffer.push(trip))
    out.extend(buffer.flush())
    return out


class TestOrderedRelease:
    def test_sorted_stream_is_identity(self):
        stream = make_trips(50, seed=3)
        assert drain(WatermarkBuffer(lateness_s=120.0), stream) == stream

    def test_bounded_disorder_is_restored(self):
        stream = make_trips(40, seed=3, spacing_s=30.0)
        shuffled = list(stream)
        # adjacent swaps: 60 s of disorder, well inside the bound
        for i in range(0, len(shuffled) - 1, 2):
            shuffled[i], shuffled[i + 1] = shuffled[i + 1], shuffled[i]
        buffer = WatermarkBuffer(lateness_s=120.0)
        assert drain(buffer, shuffled) == stream
        assert buffer.too_late == 0 and buffer.shed == 0

    def test_output_timestamps_never_decrease(self):
        rng = np.random.default_rng(11)
        stream = make_trips(80, seed=5, spacing_s=20.0)
        perm = list(stream)
        # random bounded displacement
        for i in range(len(perm)):
            j = min(len(perm) - 1, i + int(rng.integers(0, 4)))
            perm.insert(j, perm.pop(i))
        out = drain(WatermarkBuffer(lateness_s=300.0), perm)
        times = [t.start_time for t in out]
        assert times == sorted(times)

    def test_timestamp_ties_break_by_arrival(self):
        a = make_trip(0, at_s=100.0)
        b = make_trip(1, at_s=100.0)
        out = drain(WatermarkBuffer(lateness_s=10.0), [a, b])
        assert out == [a, b]


class TestLateAndShed:
    def test_too_late_event_is_dead_lettered(self):
        sink = DeadLetterSink()
        buffer = WatermarkBuffer(lateness_s=60.0, sink=sink)
        buffer.push(make_trip(0, at_s=1000.0))
        released = buffer.push(make_trip(1, at_s=100.0))  # 840 s late
        assert released == []
        assert buffer.too_late == 1 and sink.by_rule["too_late"] == 1

    def test_late_but_within_bound_is_reordered(self):
        buffer = WatermarkBuffer(lateness_s=60.0)
        buffer.push(make_trip(0, at_s=1000.0))
        assert buffer.push(make_trip(1, at_s=950.0)) == []
        out = buffer.flush()
        assert [t.order_id for t in out] == [1, 0]
        assert buffer.too_late == 0

    def test_overflow_sheds_to_sink(self):
        sink = DeadLetterSink()
        buffer = WatermarkBuffer(lateness_s=1e6, sink=sink, max_pending=3)
        for i in range(5):
            buffer.push(make_trip(i, at_s=float(i)))
        assert len(buffer) == 3
        assert buffer.shed == 2 and sink.by_rule["shed"] == 2

    def test_flush_empties_the_buffer(self):
        buffer = WatermarkBuffer(lateness_s=1e6)
        for i in range(4):
            buffer.push(make_trip(i, at_s=float(100 - i)))
        out = buffer.flush()
        assert len(out) == 4 and len(buffer) == 0
        assert [t.order_id for t in out] == [3, 2, 1, 0]


class TestAccounting:
    def test_every_event_accounted_once(self):
        sink = DeadLetterSink()
        buffer = WatermarkBuffer(lateness_s=60.0, sink=sink, max_pending=10)
        stream = make_trips(30, seed=9, spacing_s=30.0)
        # sprinkle in hopeless stragglers
        stream[10] = make_trip(100, at_s=-5000.0)
        stream[20] = make_trip(101, at_s=-9000.0)
        emitted = drain(buffer, stream)
        buffer.consistency_check()
        assert len(emitted) + sink.total == len(stream)

    def test_zero_lateness_requires_exact_order(self):
        buffer = WatermarkBuffer(lateness_s=0.0)
        buffer.push(make_trip(0, at_s=100.0))
        assert buffer.push(make_trip(1, at_s=50.0)) == []
        assert buffer.too_late == 1

    @pytest.mark.parametrize("kwargs", [
        {"lateness_s": -1.0},
        {"max_pending": 0},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            WatermarkBuffer(**kwargs)
