"""Property-based invariants of the guard layer (hypothesis).

Two accounting laws must hold for *any* input stream, however hostile:

* validator: ``accepted + dead-lettered == offered`` and the per-rule
  counters sum exactly to the rejections;
* reorder buffer: the emission is timestamp-sorted, and every offered
  event is either emitted once or dead-lettered once — never both,
  never neither.
"""

from datetime import timedelta

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.datasets import TripRecord  # noqa: E402
from repro.geo import BoundingBox, Point  # noqa: E402
from repro.guard import (  # noqa: E402
    DeadLetterSink,
    TripValidator,
    ValidationConfig,
    WatermarkBuffer,
)

from .conftest import T0  # noqa: E402

BOX = BoundingBox(0.0, 0.0, 2000.0, 2000.0)

# Coordinates that wander beyond the plane (and occasionally go NaN),
# timestamps that jump both ways, batteries that lie: the hostile mix.
coord = st.one_of(
    st.floats(min_value=-500.0, max_value=2500.0),
    st.just(float("nan")),
)
battery = st.one_of(
    st.none(),
    st.floats(min_value=-1.0, max_value=5.0, allow_nan=False),
)
offset_s = st.floats(min_value=-7200.0, max_value=7200.0, allow_nan=False)


@st.composite
def trip_records(draw, index=0):
    return TripRecord(
        order_id=draw(st.integers(min_value=0, max_value=50)),
        user_id=0,
        bike_id=draw(st.integers(min_value=0, max_value=5)),
        bike_type=1,
        start_time=T0 + timedelta(seconds=draw(offset_s)),
        start=Point(draw(coord), draw(coord)),
        end=Point(draw(coord), draw(coord)),
        battery=draw(battery),
    )


streams = st.lists(trip_records(), max_size=60)


class TestValidatorProperties:
    @given(stream=streams)
    @settings(max_examples=60, deadline=None)
    def test_accounting_is_exact(self, stream):
        sink = DeadLetterSink()
        validator = TripValidator(
            ValidationConfig(bounds=BOX, max_backwards_s=600.0), sink=sink
        )
        accepted = sum(1 for trip in stream if validator.admit(trip))
        assert accepted + sink.total == len(stream)
        assert sum(validator.counters.values()) == sink.total
        validator.consistency_check()

    @given(stream=streams)
    @settings(max_examples=30, deadline=None)
    def test_decisions_are_replayable(self, stream):
        def run():
            v = TripValidator(ValidationConfig(bounds=BOX))
            return [v.admit(t) for t in stream]

        assert run() == run()


class TestBufferProperties:
    @given(stream=streams, lateness=st.floats(min_value=0.0, max_value=3600.0))
    @settings(max_examples=60, deadline=None)
    def test_emission_is_sorted_and_exactly_once(self, stream, lateness):
        sink = DeadLetterSink()
        buffer = WatermarkBuffer(lateness_s=lateness, sink=sink, max_pending=16)
        emitted = []
        for trip in stream:
            emitted.extend(buffer.push(trip))
        times = [t.start_time for t in emitted]
        assert times == sorted(times)  # sorted even before the flush
        emitted.extend(buffer.flush())
        buffer.consistency_check()
        # exactly-once: emitted + dead-lettered partitions the stream
        assert len(emitted) + sink.total == len(stream)
        assert buffer.emitted == len(emitted)
        assert sink.total == buffer.too_late + buffer.shed

    @given(stream=streams)
    @settings(max_examples=30, deadline=None)
    def test_unbounded_lateness_emits_everything(self, stream):
        buffer = WatermarkBuffer(
            lateness_s=10**7, max_pending=len(stream) + 1
        )
        emitted = []
        for trip in stream:
            emitted.extend(buffer.push(trip))
        emitted.extend(buffer.flush())
        assert sorted(emitted, key=lambda t: (t.start_time, t.order_id)) == sorted(
            stream, key=lambda t: (t.start_time, t.order_id)
        )
