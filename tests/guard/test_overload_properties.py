"""Property-based invariants of the overload controller (hypothesis).

Two conservation laws must hold for *any* arrival pattern and any
shedder/ladder configuration:

* controller: ``offered == admitted + shed + deferred + depth`` at all
  times, and after a drain every offered row is accounted to exactly
  one of the three terminal outcomes;
* runtime: ``offered == journaled + dead-lettered + deferred``
  (journaled = served + duplicates), and a controller that never has
  to act leaves the runtime bit-identical to an uncontrolled one.
"""

import tempfile
from pathlib import Path

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.core.tripblock import TripBlock, datetime_to_us  # noqa: E402
from repro.guard import (  # noqa: E402
    GuardedRuntime,
    OverloadConfig,
    OverloadController,
)
from repro.guard.validation import DeadLetterSink  # noqa: E402
from repro.resilience import CheckpointingService, constant_cost_spec  # noqa: E402

from .conftest import (  # noqa: E402
    COST_VALUE,
    T0,
    build_service,
    guard_config,
    make_trips,
    scrub,
)

T0_US = datetime_to_us(T0)

# Arrival bursts of wildly varying size and pacing: quiet trickles,
# dead-band idling, and spikes far beyond any plausible queue limit.
offer_shapes = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=40),  # rows in the burst
        st.floats(min_value=0.0, max_value=300.0, allow_nan=False),  # gap (s)
        st.integers(min_value=0, max_value=40),  # synthetic rows (capped at n)
    ),
    min_size=1,
    max_size=12,
)

overload_configs = st.builds(
    OverloadConfig,
    rate_per_s=st.floats(min_value=0.05, max_value=50.0, allow_nan=False),
    burst=st.integers(min_value=1, max_value=64),
    queue_limit=st.integers(min_value=1, max_value=64),
    shed_policy=st.sampled_from(["synthetic_first", "uniform"]),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)


def _burst(n, at_s, synthetic, order_base):
    idx = np.arange(n, dtype=np.int64)
    user = np.where(idx < synthetic, -1 - idx, idx % 40)
    return TripBlock(
        order_id=order_base + idx,
        user_id=user,
        bike_id=idx % 60,
        bike_type=np.ones(n, dtype=np.int64),
        start_us=T0_US + int(at_s * 1e6) + idx * 1000,
        start_x=np.full(n, 100.0),
        start_y=np.full(n, 100.0),
        end_x=np.full(n, 900.0),
        end_y=np.full(n, 900.0),
    )


def _run_offers(config, shapes):
    """Drive a fresh controller through ``shapes``; return it + outcomes."""
    sink = DeadLetterSink()
    ctrl = OverloadController(config, sink)
    granted_ids, deferred_ids = [], []
    offered = 0
    at_s = 0.0
    for n, gap_s, synthetic in shapes:
        at_s += gap_s
        block = _burst(n, at_s, min(synthetic, n), order_base=offered)
        seqs = np.arange(offered, offered + n, dtype=np.int64)
        offered += n
        granted, deferred = ctrl.offer(block, seqs)
        granted_ids.extend(granted.order_id.tolist())
        deferred_ids.extend(deferred.order_id.tolist())
        ctrl.consistency_check()
        assert ctrl.offered == ctrl.admitted + ctrl.shed + ctrl.deferred + ctrl.depth
    tail_granted, tail_deferred = ctrl.drain()
    granted_ids.extend(tail_granted.order_id.tolist())
    deferred_ids.extend(tail_deferred.order_id.tolist())
    return ctrl, sink, offered, granted_ids, deferred_ids


class TestControllerProperties:
    @given(config=overload_configs, shapes=offer_shapes)
    @settings(max_examples=60, deadline=None)
    def test_every_row_reaches_exactly_one_outcome(self, config, shapes):
        ctrl, sink, offered, granted_ids, deferred_ids = _run_offers(
            config, shapes
        )
        ctrl.consistency_check()
        assert ctrl.depth == 0  # drain always empties the queue
        assert ctrl.offered == offered
        assert ctrl.admitted == len(granted_ids)
        assert ctrl.deferred == len(deferred_ids)
        assert ctrl.shed == sink.total
        # conservation: admitted + shed + deferred partitions the stream
        assert len(granted_ids) + sink.total + len(deferred_ids) == offered
        shed_ids = {row.order_id for row in sink.rows}
        outcomes = set(granted_ids) | set(deferred_ids) | shed_ids
        assert len(granted_ids) + len(deferred_ids) + len(shed_ids) == offered
        assert outcomes == set(range(offered))  # no row lost, none duplicated

    @given(config=overload_configs, shapes=offer_shapes)
    @settings(max_examples=30, deadline=None)
    def test_decisions_are_replayable(self, config, shapes):
        first = _run_offers(config, shapes)
        second = _run_offers(config, shapes)
        assert first[3] == second[3]  # granted ids, in order
        assert first[4] == second[4]  # deferred ids, in order
        assert [r.order_id for r in first[1].rows] == [
            r.order_id for r in second[1].rows
        ]

    @given(config=overload_configs, shapes=offer_shapes)
    @settings(max_examples=30, deadline=None)
    def test_granted_rows_keep_arrival_order(self, config, shapes):
        _, _, _, granted_ids, _ = _run_offers(config, shapes)
        assert granted_ids == sorted(granted_ids)  # FIFO queue, in-order ids


def _serve(tmp, name, trips, overload, block_size):
    runtime = GuardedRuntime(
        CheckpointingService(
            build_service(seed=11),
            Path(tmp) / name,
            checkpoint_every=25,
            durable=False,
            facility_cost_spec=constant_cost_spec(COST_VALUE),
        ),
        guard_config(overload=overload),
    )
    responses = runtime.serve(trips, block_size=block_size)
    runtime.consistency_check()
    return runtime, responses


class TestRuntimeProperties:
    @given(
        n=st.integers(min_value=10, max_value=90),
        stream_seed=st.integers(min_value=0, max_value=50),
        spacing_s=st.floats(min_value=0.5, max_value=30.0, allow_nan=False),
        config=overload_configs,
        block_size=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=15, deadline=None)
    def test_offered_rows_are_conserved(
        self, n, stream_seed, spacing_s, config, block_size
    ):
        trips = make_trips(n, seed=stream_seed, spacing_s=spacing_s)
        with tempfile.TemporaryDirectory() as tmp:
            runtime, _ = _serve(tmp, "prop", trips, config, block_size)
            accounted = (
                runtime.served
                + runtime.duplicates
                + runtime.sink.total
                + len(runtime.deferred_decisions)
                + len(runtime.degraded_decisions)
            )
            assert runtime.validator.offered == len(trips) == accounted
            runtime.close()

    @given(
        n=st.integers(min_value=10, max_value=60),
        stream_seed=st.integers(min_value=0, max_value=50),
        block_size=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=8, deadline=None)
    def test_zero_overload_is_bit_identical_to_the_oracle(
        self, n, stream_seed, block_size
    ):
        trips = make_trips(n, seed=stream_seed, spacing_s=10.0)
        generous = OverloadConfig(
            rate_per_s=1000.0, burst=100_000, queue_limit=100_000
        )
        with tempfile.TemporaryDirectory() as tmp:
            controlled, got = _serve(tmp, "on", trips, generous, block_size)
            oracle, want = _serve(tmp, "off", trips, None, block_size)
            assert controlled.overload.shed == 0
            assert controlled.overload.deferred == 0
            assert controlled.overload.transitions == []
            assert got == want
            assert scrub(controlled.inner.service.state_dict()) == scrub(
                oracle.inner.service.state_dict()
            )
            controlled.close()
            oracle.close()
            on = (Path(tmp) / "on" / "journal.jsonl").read_bytes()
            off = (Path(tmp) / "off" / "journal.jsonl").read_bytes()
            assert on == off
