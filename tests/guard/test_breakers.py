"""Circuit breakers: state machine, deterministic backoff, degradations."""

import numpy as np
import pytest

from repro.errors import BreakerOpenError
from repro.forecast import Forecaster
from repro.guard import (
    BreakerConfig,
    CircuitBreaker,
    GuardedForecaster,
    GuardedKS2D,
)
from repro.stats.ks2d import CachedKS2D


def boom():
    raise RuntimeError("boom")


def make_breaker(**overrides):
    defaults = dict(
        failure_threshold=2, cooldown_events=3, max_cooldown_events=12,
        jitter_events=0, seed=0,
    )
    defaults.update(overrides)
    return CircuitBreaker("test", BreakerConfig(**defaults))


class TestStateMachine:
    def test_starts_closed_and_passes_calls(self):
        b = make_breaker()
        assert b.state == "closed"
        assert b.call(lambda: 42) == 42
        assert b.calls == 1 and b.failures == 0

    def test_consecutive_failures_trip_open(self):
        b = make_breaker()
        b.call(boom, fallback=None)
        assert b.state == "closed"
        b.call(boom, fallback=None)
        assert b.state == "open"
        assert b.transitions == [("closed", "open", 2)]

    def test_success_resets_the_consecutive_count(self):
        b = make_breaker()
        b.call(boom, fallback=None)
        b.call(lambda: 1)
        b.call(boom, fallback=None)
        assert b.state == "closed"  # never two in a row

    def test_open_refuses_without_calling(self):
        b = make_breaker()
        b.call(boom, fallback=None)
        b.call(boom, fallback=None)
        hits = []
        assert b.call(lambda: hits.append(1), fallback="skipped") == "skipped"
        assert hits == [] and b.refused == 1

    def test_half_open_probe_success_closes(self):
        b = make_breaker()  # cooldown 3
        b.call(boom, fallback=None)
        b.call(boom, fallback=None)  # open at call 2, probe due at call 5
        for _ in range(2):
            b.call(lambda: 1, fallback=None)  # refused: cooldown
        assert b.state == "open" and b.refused == 2
        assert b.call(lambda: 99, fallback=None) == 99  # the probe
        assert b.state == "closed"

    def test_half_open_probe_failure_reopens_with_doubled_cooldown(self):
        b = make_breaker()
        b.call(boom, fallback=None)
        b.call(boom, fallback=None)
        for _ in range(2):
            b.call(lambda: 1, fallback=None)
        b.call(boom, fallback=None)  # the probe at call 5 fails
        assert b.state == "open"
        # doubled cooldown: 5 refusals (calls 6-10) before the next probe
        refused_before = b.refused
        for _ in range(5):
            b.call(lambda: 1, fallback=None)
        assert b.refused == refused_before + 5
        assert b.call(lambda: 7, fallback=None) == 7
        assert b.state == "closed"

    def test_cooldown_is_capped(self):
        b = make_breaker(failure_threshold=1, cooldown_events=3,
                         max_cooldown_events=4)
        for _ in range(6):  # repeated probe failures keep doubling
            b.call(boom, fallback=None)
        assert b._cooldown <= 4

    def test_no_fallback_raises_breaker_open(self):
        b = make_breaker(failure_threshold=1)
        with pytest.raises(BreakerOpenError):
            b.call(boom)
        with pytest.raises(BreakerOpenError):
            b.call(lambda: 1)  # refused while open

    def test_callable_fallback_is_lazy(self):
        b = make_breaker(failure_threshold=1)
        b.call(boom, fallback=lambda: "degraded")
        assert b.call(lambda: 1, fallback=lambda: "degraded") == "degraded"

    def test_transition_observer_fires(self):
        seen = []
        b = CircuitBreaker(
            "obs", BreakerConfig(failure_threshold=1, jitter_events=0),
            on_transition=lambda *a: seen.append(a),
        )
        b.call(boom, fallback=None)
        assert seen == [("obs", "closed", "open", 1)]


class TestDeterminism:
    def test_identical_streams_take_identical_transitions(self):
        rng = np.random.default_rng(5)
        outcomes = rng.uniform(size=200) < 0.3  # True = fail

        def run():
            b = make_breaker(jitter_events=2, seed=9)
            for fail in outcomes:
                b.call(boom if fail else (lambda: 1), fallback=None)
            return b.transitions, b.refused, b.fallbacks

        assert run() == run()

    def test_jitter_rng_untouched_on_fault_free_stream(self):
        b = make_breaker(jitter_events=2, seed=9)
        before = b._rng.bit_generator.state
        for _ in range(50):
            b.call(lambda: 1)
        assert b._rng.bit_generator.state == before


class TestGuardedKS2D:
    def setup_method(self):
        rng = np.random.default_rng(0)
        self.hist = rng.uniform(0.0, 100.0, size=(50, 2))
        self.live = rng.uniform(0.0, 100.0, size=(40, 2))

    def test_transparent_while_healthy(self):
        inner = CachedKS2D(self.hist)
        guard = GuardedKS2D(CachedKS2D(self.hist),
                            make_breaker(failure_threshold=1))
        assert guard.test(self.live) == inner.test(self.live)

    def test_falls_back_to_last_good_result(self):
        guard = GuardedKS2D(CachedKS2D(self.hist),
                            make_breaker(failure_threshold=1))
        good = guard.test(self.live)
        guard.inner.test = lambda live: boom()
        assert guard.test(self.live) == good  # repeated, not recomputed
        assert guard.breaker.state == "open"

    def test_optimistic_fallback_before_first_success(self):
        guard = GuardedKS2D(CachedKS2D(self.hist),
                            make_breaker(failure_threshold=1))
        guard.inner.test = lambda live: boom()
        result = guard.test(self.live)
        assert result.statistic == 0.0 and result.p_value == 1.0


class TestGuardedForecaster:
    class Flaky(Forecaster):
        def __init__(self, fail=False):
            self.fail = fail

        def fit(self, series):
            if self.fail:
                boom()
            return self

        def forecast(self, history, horizon):
            self._check_horizon(horizon)
            if self.fail:
                boom()
            return np.arange(horizon, dtype=float)

    def test_transparent_while_healthy(self):
        guard = GuardedForecaster(self.Flaky(), make_breaker())
        guard.fit(np.arange(5.0))
        np.testing.assert_array_equal(guard.forecast(np.arange(5.0), 3),
                                      np.arange(3.0))

    def test_persistence_fallback_on_failure(self):
        guard = GuardedForecaster(self.Flaky(fail=True),
                                  make_breaker(failure_threshold=1))
        guard.fit(np.arange(5.0))
        assert not guard.fit_ok
        np.testing.assert_array_equal(
            guard.forecast(np.asarray([1.0, 2.0, 7.0]), 4), np.full(4, 7.0)
        )

    def test_empty_history_forecasts_zero(self):
        guard = GuardedForecaster(self.Flaky(fail=True),
                                  make_breaker(failure_threshold=1))
        guard.fit(np.arange(3.0))
        np.testing.assert_array_equal(
            guard.forecast(np.asarray([]), 2), np.zeros(2)
        )


class TestConfigValidation:
    @pytest.mark.parametrize("kwargs", [
        {"failure_threshold": 0},
        {"cooldown_events": 0},
        {"cooldown_events": 8, "max_cooldown_events": 4},
        {"jitter_events": -1},
    ])
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BreakerConfig(**kwargs)
