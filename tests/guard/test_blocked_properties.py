"""Property test (hypothesis): blocked accounting == scalar oracle.

The columnar-stream satellite contract: for *every* random block size
and chaos-grade stream — NaN coordinates, out-of-bounds points, lying
batteries, timestamps jumping both ways — the blocked validator+buffer
pipeline produces exactly the accounting the scalar ``block_size=1``
oracle does: same accept/reject decisions, same per-rule counters,
same dead-letter rows, same release order.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from .test_blocked_stream import assert_oracle_parity  # noqa: E402
from .test_properties import streams  # noqa: E402  (the hostile trip mix)


class TestBlockedOracleProperty:
    @given(
        stream=streams,
        block_size=st.integers(min_value=1, max_value=64),
        lateness=st.floats(min_value=0.0, max_value=3600.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_blocked_equals_scalar_oracle(self, stream, block_size, lateness):
        assert_oracle_parity(
            stream, block_size, lateness_s=lateness, max_pending=16
        )
