"""Crash recovery *through the guard layer*, on a chaos-mutated stream.

Two guarantees beyond ``tests/resilience/test_recovery.py``:

* kill-at-every-trip parity holds when the stream itself is hostile
  (duplicates, drops, bounded reorder, clock skew) and every event rides
  through the validator → watermark buffer → planner pipeline — because
  the guard layer's state is rebuilt by re-feeding the stream, not
  checkpointed, a recovered runtime must converge on the exact run an
  uninterrupted twin produced;
* a full fault scenario — stream chaos plus injected KS and incentive
  exceptions plus a forced planner outage — is bit-identical across
  reruns: responses, incidents, breaker transitions, and the degraded
  ledger all replay exactly.
"""

from repro.guard import BreakerConfig, GuardedRuntime
from repro.incentives.charging_cost import ChargingCostParams
from repro.incentives.mechanism import IncentiveMechanism
from repro.resilience import CheckpointingService, constant_cost_spec
from repro.resilience.chaos import ChaosConfig, FaultInjector

import numpy as np

from .conftest import COST_VALUE, build_service, guard_config, make_trips, scrub

CHECKPOINT_EVERY = 15


def wrap(directory, seed=21, config=None, **kwargs):
    inner = CheckpointingService(
        build_service(seed=seed),
        directory,
        checkpoint_every=CHECKPOINT_EVERY,
        durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    return GuardedRuntime(inner, config or guard_config(), **kwargs)


def hostile_stream(n=45, seed=21, **rates):
    """Chaos-mutated arrivals: stream faults only, baked into the list
    so every run (and every recovery) sees the identical sequence."""
    config = ChaosConfig(
        seed=seed,
        p_duplicate=0.06, p_drop=0.05, p_swap=0.08,
        p_clock_skew=0.04, skew_max_s=300.0,
        **rates,
    )
    return FaultInjector(config).mutate_trips(make_trips(n, seed=seed))


class TestKillAtEveryTrip:
    def test_bit_identical_recovery_from_every_kill_point(self, tmp_path):
        hostile = hostile_stream()
        reference = wrap(tmp_path / "ref")
        reference.serve(hostile)
        reference.consistency_check()
        assert reference.duplicates > 0, "chaos produced no duplicates"

        for k in range(1, len(hostile) + 1):
            victim = wrap(tmp_path / f"kill-{k}")
            for trip in hostile[:k]:
                victim.ingest(trip)
            victim.close()  # the crash: buffered arrivals are lost

            resumed = GuardedRuntime.recover(
                tmp_path / f"kill-{k}", config=guard_config(),
                checkpoint_every=CHECKPOINT_EVERY, durable=False,
            )
            # At-least-once upstream: the whole stream is redelivered.
            # The guard layer re-derives its state from the sequence and
            # the journal-backed duplicate screen drops what the dead
            # run already served.
            resumed.serve(hostile)
            resumed.consistency_check()
            assert (
                resumed.inner.service.responses
                == reference.inner.service.responses
            ), f"responses diverged after crash at arrival {k}"
            assert scrub(resumed.inner.service.state_dict()) == scrub(
                reference.inner.service.state_dict()
            ), f"state diverged after crash at arrival {k}"
            resumed.close()
        reference.close()


class TestScenarioDeterminism:
    def run_scenario(self, directory, seed=31):
        """One full hostile run: stream chaos, injected KS and incentive
        faults, and a forced planner outage mid-stream."""
        injector = FaultInjector(ChaosConfig(
            seed=seed,
            p_duplicate=0.05, p_drop=0.04, p_swap=0.06,
            p_clock_skew=0.03, skew_max_s=600.0,
            p_garbage=0.04,
            p_late=0.03, late_max_positions=6,
            p_subsystem_error=0.15,
        ))
        hostile = injector.mutate_trips(make_trips(60, seed=seed))

        inner = CheckpointingService(
            build_service(seed=seed), directory,
            checkpoint_every=CHECKPOINT_EVERY, durable=False,
            facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        mechanism = IncentiveMechanism(
            inner.service.fleet, ChargingCostParams(),
            rng=np.random.default_rng(seed + 3),
            stations=inner.service.planner.station_set,
        )
        mechanism.offer_ride = injector.failing(
            mechanism.offer_ride, "incentive"
        )
        config = guard_config(
            breaker=BreakerConfig(failure_threshold=2, jitter_events=2)
        )
        runtime = GuardedRuntime(inner, config, incentives=mechanism)
        # the KS check only fires every beta*k arrivals (~5 times in this
        # stream), so its fault rate needs a heavier thumb on the scale
        runtime.guarded_ks.inner.test = injector.failing(
            runtime.guarded_ks.inner.test, "ks", rate=0.6
        )

        for trip in hostile[:35]:
            runtime.ingest(trip)
        # a deterministic planner outage: two forced failures trip the
        # breaker open, so the next emissions serve degraded
        runtime.breakers["planner"].failure()
        runtime.breakers["planner"].failure()
        for trip in hostile[35:]:
            runtime.ingest(trip)
        runtime.finish()
        runtime.consistency_check()

        fingerprint = (
            runtime.inner.service.responses,
            scrub(runtime.inner.service.state_dict()),
            list(runtime.incidents.rows),
            {name: b.transitions for name, b in runtime.breakers.items()},
            list(runtime.degraded_decisions),
            dict(runtime.sink.by_rule),
            dict(runtime.validator.counters),
            injector.summary(),
        )
        runtime.close()
        return fingerprint

    def test_full_fault_scenario_replays_bit_identically(self, tmp_path):
        first = self.run_scenario(tmp_path / "a")
        second = self.run_scenario(tmp_path / "b")
        assert first == second
        # the scenario must actually have exercised the interesting paths
        responses, _, incidents, transitions, degraded, by_rule, _, summary = first
        assert responses, "nothing was served"
        assert degraded, "the forced outage produced no degraded decisions"
        assert transitions["planner"], "the planner breaker never moved"
        assert summary.subsystem_errors["ks"] > 0
        assert summary.subsystem_errors["incentive"] > 0
        assert by_rule, "stream chaos never dead-lettered anything"
