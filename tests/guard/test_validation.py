"""TripValidator: per-rule rejection, counters, and the dead-letter sink."""

import math

import pytest

from repro.geo import BoundingBox
from repro.guard import DeadLetterSink, TripValidator, ValidationConfig

from .conftest import make_trip

BOX = BoundingBox(0.0, 0.0, 2000.0, 2000.0)


def make_validator(**overrides):
    defaults = dict(bounds=BOX, max_backwards_s=300.0)
    defaults.update(overrides)
    return TripValidator(ValidationConfig(**defaults))


class TestRules:
    def test_clean_trip_is_admitted(self):
        v = make_validator()
        assert v.admit(make_trip(0))
        assert v.accepted == 1 and v.rejected == 0

    @pytest.mark.parametrize("coord", [float("nan"), float("inf"), -float("inf")])
    def test_non_finite_coordinate_rejected(self, coord):
        v = make_validator()
        assert not v.admit(make_trip(0, end=(coord, 500.0)))
        assert v.counters["finite"] == 1

    def test_out_of_bounds_endpoint_rejected(self):
        v = make_validator()
        assert not v.admit(make_trip(0, start=(-50.0, 100.0)))
        assert not v.admit(make_trip(1, end=(100.0, 99999.0)))
        assert v.counters["bounds"] == 2

    def test_no_bounds_config_skips_the_rule(self):
        v = make_validator(bounds=None)
        assert v.admit(make_trip(0, start=(-1e7, 0.0), end=(-1e7 + 500.0, 0.0)))

    def test_backwards_clock_beyond_limit_rejected(self):
        v = make_validator()
        assert v.admit(make_trip(0, at_s=1000.0))
        # within the tolerance: benign jitter, admitted
        assert v.admit(make_trip(1, at_s=800.0))
        # a device clock reset: far behind the stream
        assert not v.admit(make_trip(2, at_s=100.0))
        assert v.counters["clock"] == 1

    def test_monotonic_clock_only_advances(self):
        v = make_validator()
        assert v.admit(make_trip(0, at_s=1000.0))
        assert v.admit(make_trip(1, at_s=900.0))  # jitter does not move the clock
        # still judged against t=1000, not t=900
        assert not v.admit(make_trip(2, at_s=650.0))

    def test_excessive_distance_rejected(self):
        v = make_validator(bounds=None, max_trip_m=1000.0)
        assert not v.admit(make_trip(0, start=(0.0, 0.0), end=(0.0, 5000.0)))
        assert v.counters["distance"] == 1

    @pytest.mark.parametrize("battery", [-0.1, 4.7, float("nan")])
    def test_battery_out_of_range_rejected(self, battery):
        v = make_validator()
        assert not v.admit(make_trip(0, battery=battery))
        assert v.counters["battery"] == 1

    def test_absent_battery_passes(self):
        v = make_validator()
        assert v.admit(make_trip(0, battery=None))

    def test_teleport_rule_is_opt_in(self):
        v = make_validator()  # default: disabled
        assert v.admit(make_trip(0, bike_id=3, end=(0.0, 0.0)))
        assert v.admit(make_trip(1, bike_id=3, start=(2000.0, 2000.0), at_s=1.0))

    def test_teleporting_bike_rejected_when_enabled(self):
        v = make_validator(max_bike_speed_mps=10.0)
        assert v.admit(make_trip(0, bike_id=3, end=(0.0, 0.0), at_s=0.0))
        # 2.8 km in 10 s is not a bicycle
        assert not v.admit(
            make_trip(1, bike_id=3, start=(2000.0, 2000.0), at_s=10.0)
        )
        assert v.counters["teleport"] == 1

    def test_exact_redelivery_exempt_from_teleport(self):
        v = make_validator(max_bike_speed_mps=10.0)
        trip = make_trip(0, bike_id=3, start=(1500.0, 1500.0), end=(0.0, 0.0))
        assert v.admit(trip)
        # the same order redelivered: the duplicate screen's job, not a fault
        assert v.admit(trip)

    def test_first_violation_names_the_rejection(self):
        # NaN coordinate AND bad battery: the first rule in order wins.
        v = make_validator()
        assert not v.admit(make_trip(0, end=(float("nan"), 0.0), battery=4.7))
        assert v.counters["finite"] == 1
        assert v.counters["battery"] == 0


class TestStateAndAccounting:
    def test_rejected_trip_leaves_state_untouched(self):
        v = make_validator()
        assert v.admit(make_trip(0, at_s=100.0))
        # garbage far in the future must not advance the stream clock
        assert not v.admit(make_trip(1, at_s=1e9, battery=4.7))
        assert v.admit(make_trip(2, at_s=200.0))

    def test_counters_sum_to_rejected(self):
        v = make_validator()
        v.admit(make_trip(0))
        v.admit(make_trip(1, end=(float("nan"), 0.0)))
        v.admit(make_trip(2, start=(-999.0, 0.0)))
        v.admit(make_trip(3, battery=2.0))
        assert v.offered == 4 and v.accepted == 1 and v.rejected == 3
        assert sum(v.counters.values()) == 3
        v.consistency_check()

    def test_sink_records_rule_and_order(self):
        sink = DeadLetterSink()
        v = TripValidator(ValidationConfig(bounds=BOX), sink=sink)
        v.admit(make_trip(0, order_id=77, end=(float("nan"), 0.0)))
        assert sink.total == 1
        (row,) = list(sink)
        assert row.rule == "finite" and row.order_id == 77 and row.seq == 0

    def test_sink_rotation_keeps_counters_exact(self):
        sink = DeadLetterSink(keep=5)
        v = TripValidator(ValidationConfig(bounds=BOX), sink=sink)
        for i in range(12):
            v.admit(make_trip(i, battery=4.7))
        assert sink.total == 12
        assert len(sink.rows) == 5
        assert sink.by_rule["battery"] == 12

    def test_sink_jsonl_roundtrip(self, tmp_path):
        import json

        sink = DeadLetterSink()
        v = TripValidator(ValidationConfig(bounds=BOX), sink=sink)
        v.admit(make_trip(0, battery=-1.0))
        path = sink.write_jsonl(tmp_path / "dead.jsonl", durable=False)
        rows = [json.loads(l) for l in path.read_text().splitlines()]
        assert rows[0]["rule"] == "battery" and rows[0]["order_id"] == 0

    def test_deterministic_across_replays(self):
        stream = [
            make_trip(0),
            make_trip(1, end=(float("nan"), 0.0)),
            make_trip(2, at_s=60.0),
            make_trip(3, battery=9.0),
        ]
        a, b = make_validator(), make_validator()
        assert [a.admit(t) for t in stream] == [b.admit(t) for t in stream]
        assert a.counters == b.counters


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_backwards_s": -1.0},
            {"max_trip_m": 0.0},
            {"max_bike_speed_mps": -5.0},
            {"battery_range": (1.0, 0.0)},
        ],
    )
    def test_bad_config_rejected(self, kwargs):
        with pytest.raises(ValueError):
            ValidationConfig(**kwargs)

    def test_bad_sink_keep_rejected(self):
        with pytest.raises(ValueError):
            DeadLetterSink(keep=0)
