"""Shared builders for the guarded-runtime suite.

Deterministic by construction — the same (seed, n) always yields the
same stream and service — so the parity tests can demand bit-identical
outcomes, not approximate agreement.
"""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    PlacementService,
    constant_facility_cost,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import BoundingBox, Point
from repro.guard import GuardConfig, ValidationConfig

COST_VALUE = 8000.0
PLANE = 2000.0
T0 = datetime(2017, 5, 10)


def make_trip(
    i,
    start=(100.0, 100.0),
    end=(900.0, 900.0),
    at_s=0.0,
    battery=None,
    bike_id=None,
    order_id=None,
):
    """One hand-positioned trip (validator/buffer unit tests)."""
    return TripRecord(
        order_id=i if order_id is None else order_id,
        user_id=i % 7,
        bike_id=i % 5 if bike_id is None else bike_id,
        bike_type=1,
        start_time=T0 + timedelta(seconds=at_s),
        start=Point(*start),
        end=Point(*end),
        battery=battery,
    )


def make_trips(n, seed=0, spacing_s=30.0):
    """A deterministic in-order stream on the 2 km demo plane."""
    rng = np.random.default_rng(seed)
    return [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=T0 + timedelta(seconds=spacing_s * i),
            start=Point(*rng.uniform(0.0, PLANE, 2)),
            end=Point(*rng.uniform(0.0, PLANE, 2)),
            battery=float(rng.uniform(0.1, 1.0)),
        )
        for i in range(n)
    ]


def build_service(seed=0, n_bikes=60, beta=1.0):
    """A fresh PlacementService over a 3x3 anchor grid (9 stations)."""
    rng = np.random.default_rng(seed + 100)
    anchors = [
        Point(float(x), float(y)) for x in (0, 1000, 2000) for y in (0, 1000, 2000)
    ]
    historical = rng.uniform(0.0, PLANE, size=(200, 2))
    planner = EsharingPlanner(
        anchors,
        constant_facility_cost(COST_VALUE),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(beta=beta, history_window=200),
    )
    fleet = Fleet(
        planner.stations, n_bikes=n_bikes, rng=np.random.default_rng(seed + 2)
    )
    return PlacementService(planner, fleet)


def guard_config(**overrides):
    """A GuardConfig whose bounds cover the demo plane (with margin)."""
    defaults = dict(
        validation=ValidationConfig(
            bounds=BoundingBox(-100.0, -100.0, PLANE + 100.0, PLANE + 100.0),
            max_backwards_s=3600.0,
        ),
        lateness_s=600.0,
    )
    defaults.update(overrides)
    return GuardConfig(**defaults)


def scrub(state):
    """Zero the one wall-clock field excluded from parity comparisons."""
    state["planner"]["ks_seconds"] = 0.0
    return state


@pytest.fixture
def trips():
    return make_trips(60, seed=7)


@pytest.fixture
def service():
    return build_service(seed=7)
