"""GuardedRuntime: parity, self-healing, degradation, halting."""

import numpy as np
import pytest

from repro.errors import RuntimeHaltedError
from repro.guard import (
    DEGRADED,
    HALTED,
    HEALTHY,
    BreakerConfig,
    DegradedDecision,
    GuardConfig,
    GuardedRuntime,
)
from repro.incentives.charging_cost import ChargingCostParams
from repro.incentives.mechanism import IncentiveMechanism
from repro.resilience import CheckpointingService, constant_cost_spec

from .conftest import COST_VALUE, build_service, guard_config, make_trips, scrub


def wrap(tmp_path, name="run", config=None, seed=7, **kwargs):
    inner = CheckpointingService(
        build_service(seed=seed),
        tmp_path / name,
        checkpoint_every=25,
        durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    return GuardedRuntime(inner, config or guard_config(), **kwargs)


class TestZeroFaultParity:
    def test_guarded_equals_unguarded_bit_for_bit(self, tmp_path, trips):
        plain = CheckpointingService(
            build_service(seed=7), tmp_path / "plain", checkpoint_every=25,
            durable=False, facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        plain.serve(trips)
        runtime = wrap(tmp_path)
        runtime.serve(trips)
        runtime.consistency_check()
        assert runtime.health == HEALTHY
        assert runtime.sink.total == 0 and runtime.incidents.total == 0
        assert runtime.inner.service.responses == plain.service.responses
        assert scrub(runtime.inner.service.state_dict()) == scrub(
            plain.service.state_dict()
        )

    def test_duplicates_screened_through_the_guarded_path(self, tmp_path, trips):
        doubled = [t for trip in trips for t in (trip, trip)]
        runtime = wrap(tmp_path)
        runtime.serve(doubled)
        runtime.consistency_check()
        assert runtime.duplicates == len(trips)
        assert runtime.served == len(trips)
        assert len(runtime.inner.service.responses) == len(trips)


class TestSelfHeal:
    def test_planner_fault_heals_to_the_unfaulted_state(self, tmp_path, trips):
        reference = wrap(tmp_path, "ref")
        reference.serve(trips)

        runtime = wrap(tmp_path, "faulty")
        for trip in trips[:30]:
            runtime.ingest(trip)
        planner = runtime.inner.service.planner

        def poisoned_offer(point):
            raise RuntimeError("injected planner corruption")

        planner.offer = poisoned_offer
        for trip in trips[30:]:
            runtime.ingest(trip)
        runtime.finish()
        runtime.consistency_check()
        assert runtime.healed >= 1
        assert runtime.incidents.by_kind["planner_error"] >= 1
        assert runtime.incidents.by_kind["self_heal"] == runtime.healed
        assert not runtime.degraded_decisions
        # the failed trip was journaled, so the heal replays it through a
        # healthy planner: the outcome is bit-identical to a clean run
        assert (
            runtime.inner.service.responses
            == reference.inner.service.responses
        )
        assert scrub(runtime.inner.service.state_dict()) == scrub(
            reference.inner.service.state_dict()
        )

    def test_heal_reinstalls_the_ks_guard(self, tmp_path, trips):
        runtime = wrap(tmp_path)
        guard_before = runtime.guarded_ks
        for trip in trips[:20]:
            runtime.ingest(trip)
        runtime.inner.service.planner.offer = lambda p: (_ for _ in ()).throw(
            RuntimeError("boom")
        )
        for trip in trips[20:]:
            runtime.ingest(trip)
        runtime.finish()
        planner = runtime.inner.service.planner
        assert planner._ks_cache is guard_before  # same wrapper object
        assert guard_before.inner is not None
        assert not isinstance(guard_before.inner, type(guard_before))


class TestDegradedServing:
    def test_open_planner_breaker_serves_degraded(self, tmp_path, trips):
        config = guard_config(
            lateness_s=0.0,  # sorted stream: ingest == apply, immediately
            breaker=BreakerConfig(
                failure_threshold=1, cooldown_events=5,
                max_cooldown_events=5, jitter_events=0,
            ),
        )
        runtime = wrap(tmp_path, config=config)
        for trip in trips[:10]:
            runtime.ingest(trip)
        applied_before = runtime.inner.applied_seq
        runtime.breakers["planner"].failure()  # force the breaker open
        assert runtime.health == DEGRADED
        outcomes = []
        for trip in trips[10:14]:
            outcomes.extend(runtime.ingest(trip))
        degraded = [o for o in outcomes if isinstance(o, DegradedDecision)]
        assert degraded and degraded == runtime.degraded_decisions[: len(degraded)]
        # degraded answers are not journaled and mutate nothing
        assert runtime.inner.applied_seq == applied_before + (
            len(outcomes) - len(degraded)
        )
        for decision in degraded:
            assert decision.destination_station in (
                runtime.inner.service.planner.station_set.ids()
            )
        assert runtime.incidents.by_kind["degraded_decision"] == len(
            runtime.degraded_decisions
        )

    def test_breaker_recovery_returns_to_healthy(self, tmp_path, trips):
        config = guard_config(
            lateness_s=0.0,
            breaker=BreakerConfig(
                failure_threshold=1, cooldown_events=3,
                max_cooldown_events=3, jitter_events=0,
            ),
        )
        runtime = wrap(tmp_path, config=config)
        for trip in trips[:5]:
            runtime.ingest(trip)
        runtime.breakers["planner"].failure()
        runtime.serve(trips[5:])
        assert runtime.health == HEALTHY  # probe succeeded, breaker closed
        assert runtime.degraded_decisions  # but the outage was recorded
        runtime.consistency_check()


class TestCheckpointRetry:
    def test_transient_snapshot_failures_are_retried(self, tmp_path, trips):
        sleeps = []
        config = guard_config(checkpoint_attempts=4, checkpoint_backoff_s=0.01)
        runtime = wrap(tmp_path, config=config, sleep=sleeps.append)
        real_save = runtime.inner.store.save
        fails = {"left": 2}

        def flaky_save(payload, seq):
            if fails["left"] > 0:
                fails["left"] -= 1
                raise OSError("disk hiccup")
            return real_save(payload, seq)

        runtime.inner.store.save = flaky_save
        runtime.serve(trips)  # crosses several checkpoint boundaries
        runtime.consistency_check()
        assert runtime.health == HEALTHY
        assert runtime.incidents.by_kind["checkpoint_retry"] == 2
        assert sleeps == [0.01, 0.02]  # exponential backoff, injected sleeper

    def test_exhausted_retries_halt_the_runtime(self, tmp_path, trips):
        config = guard_config(checkpoint_attempts=2, checkpoint_backoff_s=0.0)
        runtime = wrap(tmp_path, config=config, sleep=lambda s: None)
        runtime.inner.store.save = lambda payload, seq: (_ for _ in ()).throw(
            OSError("disk gone")
        )
        with pytest.raises(RuntimeHaltedError):
            runtime.serve(trips)
        assert runtime.health == HALTED
        assert "checkpoint I/O failed" in runtime.halt_reason
        with pytest.raises(RuntimeHaltedError):
            runtime.ingest(trips[0])  # fail-stopped: no serving after halt
        assert runtime.incidents.by_kind["halt"] == 1


class TestRecover:
    def test_recover_resumes_bit_identically(self, tmp_path, trips):
        reference = wrap(tmp_path, "ref")
        reference.serve(trips)

        runtime = wrap(tmp_path, "killed")
        for trip in trips[:33]:
            runtime.ingest(trip)
        runtime.close()  # the crash: buffer contents and breakers are lost

        resumed = GuardedRuntime.recover(
            tmp_path / "killed", config=guard_config(), durable=False,
            checkpoint_every=25,
        )
        # at-least-once upstream: re-feed the whole stream; the duplicate
        # screen drops what the dead run already served
        resumed.serve(trips)
        resumed.consistency_check()
        assert (
            resumed.inner.service.responses
            == reference.inner.service.responses
        )
        assert scrub(resumed.inner.service.state_dict()) == scrub(
            reference.inner.service.state_dict()
        )
        assert resumed.guarded_ks is resumed.inner.service.planner._ks_cache

    def test_recover_requires_a_checkpoint_directory(self, tmp_path):
        from repro.errors import SnapshotError

        with pytest.raises(SnapshotError):
            GuardedRuntime.recover(tmp_path / "nowhere", durable=False)


class TestIncentiveIntegration:
    def test_incentive_faults_degrade_to_no_offer(self, tmp_path, trips):
        inner = CheckpointingService(
            build_service(seed=7), tmp_path / "inc", checkpoint_every=25,
            durable=False, facility_cost_spec=constant_cost_spec(COST_VALUE),
        )
        mechanism = IncentiveMechanism(
            inner.service.fleet, ChargingCostParams(),
            rng=np.random.default_rng(3),
            stations=inner.service.planner.station_set,
        )
        mechanism.offer_ride = lambda *a: (_ for _ in ()).throw(
            RuntimeError("incentive backend down")
        )
        config = guard_config(
            breaker=BreakerConfig(failure_threshold=2, jitter_events=0)
        )
        runtime = GuardedRuntime(inner, config, incentives=mechanism)
        runtime.serve(trips)  # must not raise
        runtime.consistency_check()
        assert runtime.breakers["incentive"].total_failures >= 2
        assert runtime.incentives.breaker.fallbacks >= 1
        assert runtime.served == len(trips)


class TestLogs:
    def test_flush_logs_writes_both_files(self, tmp_path, trips):
        runtime = wrap(tmp_path)
        bad = trips[10].with_end(type(trips[10].end)(float("nan"), 0.0))
        runtime.serve(trips[:10] + [bad])
        runtime.flush_logs(tmp_path / "logs", durable=False)
        assert (tmp_path / "logs" / "deadletter.jsonl").exists()
        assert (tmp_path / "logs" / "incidents.jsonl").exists()
        assert runtime.sink.total == 1
