"""Tests for IncidentLog.append_jsonl (append-only flush + rotation)."""

import json

from repro.guard.runtime import IncidentLog


def _rows(path):
    return [json.loads(l) for l in path.read_text().splitlines() if l.strip()]


class TestAppendJsonl:
    def test_appends_only_fresh_rows_across_flushes(self, tmp_path):
        log = IncidentLog()
        path = tmp_path / "incidents.jsonl"
        log.add(1, "a", "first")
        log.append_jsonl(path, durable=False)
        log.add(2, "b", "second")
        log.append_jsonl(path, durable=False)
        rows = _rows(path)
        assert [r["detail"] for r in rows] == ["first", "second"]

    def test_empty_flush_creates_file(self, tmp_path):
        path = tmp_path / "incidents.jsonl"
        IncidentLog().append_jsonl(path, durable=False)
        assert path.exists() and path.read_text() == ""

    def test_empty_reflush_does_not_duplicate(self, tmp_path):
        log = IncidentLog()
        path = tmp_path / "incidents.jsonl"
        log.add(1, "a", "only")
        log.append_jsonl(path, durable=False)
        log.append_jsonl(path, durable=False)  # nothing new
        assert [r["detail"] for r in _rows(path)] == ["only"]

    def test_rotation_at_size_cap(self, tmp_path):
        log = IncidentLog()
        path = tmp_path / "incidents.jsonl"
        detail = "x" * 100
        for seq in range(20):
            log.add(seq, "bulk", detail)
            log.append_jsonl(path, durable=False, max_bytes=500)
        rotated = tmp_path / "incidents.1.jsonl"
        assert rotated.exists()
        # One previous generation is kept: the retained rows form a
        # contiguous trailing window ending at the newest incident, each
        # appearing in exactly one generation.
        seqs = [r["seq"] for r in _rows(rotated)] + [r["seq"] for r in _rows(path)]
        assert seqs == list(range(seqs[0], 20))
        assert path.stat().st_size <= 500

    def test_rotation_preserves_whole_lines(self, tmp_path):
        log = IncidentLog()
        path = tmp_path / "incidents.jsonl"
        for seq in range(50):
            log.add(seq, "k", f"detail-{seq}")
        log.append_jsonl(path, durable=False, max_bytes=50)
        for p in (path, tmp_path / "incidents.1.jsonl"):
            if p.exists():
                _rows(p)  # every line parses — no torn boundaries

    def test_rows_beyond_keep_still_flush_once(self, tmp_path):
        log = IncidentLog(keep=5)
        path = tmp_path / "incidents.jsonl"
        for seq in range(8):
            log.add(seq, "k", f"d{seq}")
        log.append_jsonl(path, durable=False)
        # Only the retained window could be flushed; the overflow is
        # counted but its detail rows are gone.
        assert [r["seq"] for r in _rows(path)] == [3, 4, 5, 6, 7]
        log.add(8, "k", "d8")
        log.append_jsonl(path, durable=False)
        assert [r["seq"] for r in _rows(path)] == [3, 4, 5, 6, 7, 8]
