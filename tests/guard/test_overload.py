"""Overload control: token bucket, shedder, ladder, runtime glue."""

import numpy as np
import pytest

from repro.core.tripblock import TripBlock, datetime_to_us
from repro.errors import StateDriftError
from repro.guard import (
    RUNGS,
    SHED_RULE,
    BreakerConfig,
    CircuitBreaker,
    GuardedRuntime,
    LadderConfig,
    OverloadConfig,
    OverloadController,
    TokenBucket,
)
from repro.guard.validation import DeadLetterSink
from repro.resilience import CheckpointingService, constant_cost_spec
from repro.shard.runtime import _guard_from_state, _guard_to_state

from .conftest import COST_VALUE, T0, build_service, guard_config, make_trips, scrub

T0_US = datetime_to_us(T0)


def make_block(n, at_s=0.0, spacing_s=1.0, synthetic=0, order_base=0):
    """``n`` in-order rows; the first ``synthetic`` are low-value."""
    idx = np.arange(n, dtype=np.int64)
    user = np.where(idx < synthetic, -1 - idx, idx % 40)
    return TripBlock(
        order_id=order_base + idx,
        user_id=user,
        bike_id=idx % 60,
        bike_type=np.ones(n, dtype=np.int64),
        start_us=T0_US + ((at_s + spacing_s * np.arange(n)) * 1e6).astype(np.int64),
        start_x=np.full(n, 100.0),
        start_y=np.full(n, 100.0),
        end_x=np.full(n, 900.0),
        end_y=np.full(n, 900.0),
    )


def controller(incidents=None, breakers=None, **overrides):
    defaults = dict(rate_per_s=1.0, burst=4, queue_limit=10, seed=0)
    defaults.update(overrides)
    sink = DeadLetterSink()
    record = None
    if incidents is not None:
        record = lambda kind, detail: incidents.append((kind, detail))  # noqa: E731
    ctrl = OverloadController(
        OverloadConfig(**defaults), sink, incident=record, breakers=breakers
    )
    return ctrl, sink


def offer(ctrl, block):
    return ctrl.offer(block, np.arange(len(block), dtype=np.int64))


class TestTokenBucket:
    def test_starts_full_and_all_or_nothing(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=10)
        assert bucket.try_consume(10)
        assert not bucket.try_consume(1)

    def test_refill_follows_event_time_and_caps_at_burst(self):
        bucket = TokenBucket(rate_per_s=2.0, burst=10)
        bucket.advance(0)
        assert bucket.try_consume(10)
        bucket.advance(3_000_000)  # +3s -> 6 tokens
        assert not bucket.try_consume(7)
        assert bucket.try_consume(6)
        bucket.advance(3_600_000_000)  # an hour refills to burst, not beyond
        assert bucket.tokens == pytest.approx(10.0)

    def test_advance_is_monotone(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=10)
        bucket.advance(5_000_000)
        assert bucket.try_consume(10)
        bucket.advance(1_000_000)  # stale timestamp refills nothing
        assert bucket.tokens == pytest.approx(0.0)

    def test_consume_up_to_grants_whole_tokens(self):
        bucket = TokenBucket(rate_per_s=1.0, burst=5)
        bucket.tokens = 3.7
        assert bucket.consume_up_to(10) == 3
        assert bucket.tokens == pytest.approx(0.7)
        assert bucket.consume_up_to(10) == 0


class TestConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(rate_per_s=0.0),
            dict(rate_per_s=-1.0),
            dict(burst=0),
            dict(queue_limit=0),
            dict(low_water=0.8, high_water=0.2),
            dict(shed_policy="bogus"),
        ],
    )
    def test_overload_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            OverloadConfig(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(low_queue=0.8, high_queue=0.2),
            dict(high_queue=1.5),
            dict(escalate_after=0),
            dict(deescalate_after=0),
            dict(high_latency_s=-1.0),
            dict(high_latency_s=1.0, low_latency_s=2.0),
        ],
    )
    def test_ladder_config_rejects(self, kwargs):
        with pytest.raises(ValueError):
            LadderConfig(**kwargs)


class TestFastPath:
    def test_returns_the_same_object_and_draws_no_rng(self):
        ctrl, sink = controller(rate_per_s=100.0, burst=1000)
        block = make_block(8)
        granted, deferred = offer(ctrl, block)
        assert granted is block
        assert len(deferred) == 0
        assert ctrl.depth == 0 and ctrl.shed == 0 and sink.total == 0
        # The shed tie-break is the controller's only RNG; untouched runs
        # must leave the bit stream at genesis.
        assert (
            ctrl._rng.bit_generator.state
            == np.random.default_rng(0).bit_generator.state
        )
        ctrl.consistency_check()

    def test_queue_breaks_the_fast_path_until_drained(self):
        ctrl, _ = controller(rate_per_s=1.0, burst=2, queue_limit=10)
        offer(ctrl, make_block(5))  # 2 granted, 3 queued
        assert ctrl.depth == 3
        granted, _ = offer(ctrl, make_block(1, at_s=100.0, order_base=5))
        # FIFO, token-limited: the refill (capped at burst 2) grants the
        # two oldest queued rows first; the new arrival waits behind.
        assert granted.order_id.tolist() == [2, 3]
        assert ctrl.depth == 2


class TestShedder:
    def test_synthetic_rows_shed_first_with_reasoned_deadletters(self):
        ctrl, sink = controller(rate_per_s=0.001, burst=1, queue_limit=4)
        block = make_block(8, synthetic=3)
        granted, deferred = offer(ctrl, block)
        assert ctrl.shed == 4 and sink.total == 4
        shed_ids = sorted(r.order_id for r in sink.rows)
        # All 3 synthetic rows (ids 0-2) go before any real one.
        assert shed_ids[:3] == [0, 1, 2]
        assert all(r.rule == SHED_RULE for r in sink.rows)
        assert all("queue full" in r.reason for r in sink.rows)
        ctrl.consistency_check()

    def test_queued_rows_are_never_shed(self):
        ctrl, sink = controller(rate_per_s=0.001, burst=1, queue_limit=4)
        offer(ctrl, make_block(4))  # 1 granted, 3 real rows queued
        incoming = make_block(4, at_s=100.0, synthetic=4, order_base=4)
        offer(ctrl, incoming)
        # Overflow is resolved entirely against the incoming block.
        assert all(r.order_id >= 4 for r in sink.rows)
        ctrl.consistency_check()

    def test_uniform_policy_ignores_priority_classes(self):
        ctrl, sink = controller(
            rate_per_s=0.001, burst=1, queue_limit=4, shed_policy="uniform"
        )
        offer(ctrl, make_block(12, synthetic=6))
        shed_users = [r.order_id < 6 for r in sink.rows]
        assert any(shed_users) and not all(shed_users)

    def test_shedding_is_seed_deterministic(self):
        rows = []
        for _ in range(2):
            ctrl, sink = controller(rate_per_s=0.001, burst=1, queue_limit=4, seed=9)
            offer(ctrl, make_block(12, synthetic=2))
            rows.append([r.order_id for r in sink.rows])
        assert rows[0] == rows[1]


class TestLadder:
    def test_escalates_after_streak_and_suspends_aux_breakers(self):
        breakers = {
            name: CircuitBreaker(name, BreakerConfig())
            for name in ("ks", "incentive", "forecast")
        }
        incidents = []
        ctrl, _ = controller(
            incidents=incidents,
            breakers=breakers,
            rate_per_s=0.001,
            burst=1,
            queue_limit=10,
        )
        offer(ctrl, make_block(8))  # depth 7 >= 6 -> streak 1
        assert ctrl.rung == 0
        offer(ctrl, make_block(1, at_s=100.0, order_base=8))  # streak 2
        assert ctrl.rung == 1 and ctrl.rung_name == "defer_aux"
        for breaker in breakers.values():
            assert breaker.suspended and not breaker.admit()
        assert any(k == "ladder" and "full -> defer_aux" in d for k, d in incidents)

    def test_dead_band_resets_the_streaks(self):
        ctrl, _ = controller(rate_per_s=0.01, burst=4, queue_limit=10)
        offer(ctrl, make_block(7, spacing_s=0.0))  # observe 7: high streak 1
        assert ctrl.depth == 3  # burst granted 4
        # Depth 4 is inside the dead band (2 < 4 < 6): streaks reset.
        offer(ctrl, make_block(1, at_s=100.0, order_base=7))
        offer(ctrl, make_block(4, at_s=200.0, order_base=8))  # high: streak 1 again
        assert ctrl.rung == 0  # two highs, but not consecutive
        offer(ctrl, make_block(4, at_s=300.0, order_base=12))  # streak 2
        assert ctrl.rung == 1

    def test_rung_two_defers_everything_and_recovers(self):
        breakers = {"ks": CircuitBreaker("ks", BreakerConfig())}
        ctrl, sink = controller(
            breakers=breakers, rate_per_s=0.05, burst=1, queue_limit=10
        )
        offer(ctrl, make_block(8, spacing_s=0.0))  # high streak 1
        offer(ctrl, make_block(1, at_s=10.0, order_base=8))  # streak 2 -> rung 1
        assert ctrl.rung == 1 and breakers["ks"].suspended
        offer(ctrl, make_block(1, at_s=20.0, order_base=9))  # streak 1 again
        _, deferred = offer(ctrl, make_block(1, at_s=30.0, order_base=10))
        assert ctrl.rung == 2
        assert len(deferred) == 9  # the whole backlog plus the arrival
        assert ctrl.depth == 0
        # Consecutive low observations (with event time for the bucket to
        # refill) walk it back down: 3 at rung 2, then 3 at rung 1.
        rungs = []
        for i in range(6):
            offer(
                ctrl, make_block(1, at_s=1000.0 * (i + 1), order_base=11 + i)
            )
            rungs.append(ctrl.rung)
        assert rungs == [2, 2, 1, 1, 1, 0]
        assert not breakers["ks"].suspended
        assert sink.total == 0  # deferral is not shedding
        ctrl.consistency_check()

    def test_transitions_carry_event_timestamps(self):
        ctrl, _ = controller(rate_per_s=0.001, burst=1, queue_limit=10)
        offer(ctrl, make_block(8))
        offer(ctrl, make_block(1, at_s=60.0, order_base=8))
        assert ctrl.transitions == [(T0_US + 60_000_000, 0, 1)]


class TestBackpressure:
    def test_signal_raises_and_clears_on_the_water_marks(self):
        incidents = []
        ctrl, _ = controller(
            incidents=incidents, rate_per_s=1.0, burst=20, queue_limit=10
        )
        offer(ctrl, make_block(20, spacing_s=0.0))  # burn the genesis burst
        offer(ctrl, make_block(9, at_s=1.0, spacing_s=0.0, order_base=20))
        assert ctrl.backpressure and ctrl.backpressure_signals == 1  # depth 9
        # A big event-time gap refills the bucket; the backlog drains and
        # the next observation falls under the low-water mark.
        offer(ctrl, make_block(1, at_s=600.0, order_base=29))
        offer(ctrl, make_block(1, at_s=601.0, order_base=30))
        assert not ctrl.backpressure
        kinds = [k for k, _ in incidents]
        assert kinds.count("backpressure") == 2


class TestDrain:
    def test_drain_grants_the_backlog_below_rung_two(self):
        ctrl, _ = controller(rate_per_s=0.001, burst=1, queue_limit=10)
        offer(ctrl, make_block(5))
        granted, deferred = ctrl.drain()
        assert len(granted) == 4 and len(deferred) == 0
        assert ctrl.depth == 0
        ctrl.consistency_check()

    def test_drain_defers_on_rung_two(self):
        ctrl, _ = controller(rate_per_s=0.001, burst=1, queue_limit=100)
        ctrl._set_rung(2, depth=0)
        offer(ctrl, make_block(5))
        granted, deferred = ctrl.drain()
        # Rung 2 already deferred the queue inside offer();
        # drain finds it empty.
        assert len(granted) == 0 and len(deferred) == 0
        assert ctrl.deferred == 5
        ctrl.consistency_check()

    def test_consistency_check_catches_drift(self):
        ctrl, _ = controller()
        offer(ctrl, make_block(3))
        ctrl.admitted -= 1
        with pytest.raises(StateDriftError):
            ctrl.consistency_check()


def wrap(tmp_path, name, overload, seed=7):
    inner = CheckpointingService(
        build_service(seed=seed),
        tmp_path / name,
        checkpoint_every=25,
        durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    return GuardedRuntime(inner, guard_config(overload=overload))


class TestRuntimeIntegration:
    @pytest.mark.parametrize("block_size", [1, 16, None])
    def test_zero_overload_is_byte_identical(self, tmp_path, trips, block_size):
        generous = OverloadConfig(rate_per_s=1000.0, burst=100_000,
                                  queue_limit=100_000)
        controlled = wrap(tmp_path, "on", generous)
        plain = wrap(tmp_path, "off", None)
        got = controlled.serve(trips, block_size=block_size)
        want = plain.serve(trips, block_size=block_size)
        controlled.consistency_check()
        assert controlled.overload.shed == 0
        assert controlled.overload.deferred == 0
        assert controlled.overload.transitions == []
        assert got == want
        assert scrub(controlled.inner.service.state_dict()) == scrub(
            plain.inner.service.state_dict()
        )
        controlled.close()
        plain.close()
        assert (tmp_path / "on" / "journal.jsonl").read_bytes() == (
            tmp_path / "off" / "journal.jsonl"
        ).read_bytes()

    def test_overloaded_stream_conserves_every_row(self, tmp_path):
        tight = OverloadConfig(
            rate_per_s=0.05, burst=8, queue_limit=16,
            ladder=LadderConfig(escalate_after=2, deescalate_after=3),
        )
        runtime = wrap(tmp_path, "hot", tight)
        trips = make_trips(150, seed=3, spacing_s=1.0)
        runtime.serve(trips, block_size=16)
        runtime.consistency_check()
        ctrl = runtime.overload
        assert ctrl.shed > 0 or ctrl.deferred > 0  # the stream overloads
        offered = runtime.validator.offered
        accounted = (
            runtime.served
            + runtime.duplicates
            + runtime.sink.total
            + len(runtime.deferred_decisions)
            + len(runtime.degraded_decisions)
        )
        assert offered == len(trips) == accounted
        assert all(
            "overload ladder" in d.reason for d in runtime.deferred_decisions
        )
        runtime.close()

    def test_deferred_rows_answer_from_nearest_station(self, tmp_path):
        tight = OverloadConfig(rate_per_s=0.01, burst=2, queue_limit=6)
        runtime = wrap(tmp_path, "defer", tight)
        runtime.serve(make_trips(80, seed=5, spacing_s=1.0), block_size=8)
        runtime.consistency_check()
        assert runtime.deferred_decisions  # rung 2 was reached
        stations = set(runtime.inner.service.planner.station_set.ids())
        for decision in runtime.deferred_decisions:
            assert decision.origin_station in stations
            assert decision.destination_station in stations
            assert decision.walking_m >= 0.0
        runtime.close()

    def test_shed_rows_are_dead_lettered_with_the_shed_rule(self, tmp_path):
        tight = OverloadConfig(rate_per_s=0.01, burst=1, queue_limit=4)
        runtime = wrap(tmp_path, "shed", tight)
        runtime.serve(make_trips(60, seed=4, spacing_s=1.0), block_size=32)
        shed_rows = [r for r in runtime.sink.rows if r.rule == SHED_RULE]
        assert len(shed_rows) == runtime.overload.shed > 0
        runtime.flush_logs(tmp_path / "logs", durable=False)
        text = (tmp_path / "logs" / "deadletter.jsonl").read_text()
        assert SHED_RULE in text
        runtime.close()

    def test_health_degraded_while_ladder_is_raised(self, tmp_path):
        tight = OverloadConfig(rate_per_s=0.01, burst=1, queue_limit=6)
        runtime = wrap(tmp_path, "health", tight)
        runtime.ingest_many(make_trips(40, seed=6, spacing_s=1.0), block_size=8)
        assert runtime.overload.rung > 0
        assert runtime.health == "degraded"
        runtime.close()


class TestGuardStateRoundTrip:
    def test_overload_config_survives_shard_serialization(self):
        config = guard_config(
            overload=OverloadConfig(
                rate_per_s=3.5,
                burst=64,
                queue_limit=256,
                shed_policy="uniform",
                seed=11,
                ladder=LadderConfig(high_queue=0.7, escalate_after=4),
            )
        )
        assert _guard_from_state(_guard_to_state(config)) == config

    def test_missing_overload_key_defaults_to_none(self):
        state = _guard_to_state(guard_config())
        state.pop("overload", None)  # a pre-overload shardplan.json
        assert _guard_from_state(state).overload is None
