"""The columnar stream path is bit-identical to the scalar oracle.

Every test here pits the blocked pipeline (``admit_block`` →
``push_block`` → ``handle_block`` group commits) against the scalar
path (``block_size=1``), which stays in the tree precisely to serve as
this oracle:

* validator + buffer accounting — decisions, per-rule counters,
  dead-letter rows, release order — matches for *any* block size and
  any chaos-mutated stream (hypothesis property, satellite of the
  columnar refactor);
* the full guarded runtime produces identical responses, state, and
  journal bytes at every block size, clean or hostile;
* self-healing after a mid-block planner fault converges on the same
  state the scalar path heals to;
* kill-at-every-block crash recovery is bit-identical to an
  uninterrupted blocked run.
"""

import numpy as np
import pytest

from repro.core.tripblock import TripBlock
from repro.guard import (
    DeadLetterSink,
    GuardedRuntime,
    TripValidator,
    ValidationConfig,
    WatermarkBuffer,
)
from repro.resilience import CheckpointingService, constant_cost_spec
from repro.resilience.chaos import ChaosConfig, FaultInjector

from .conftest import COST_VALUE, build_service, guard_config, make_trips, scrub

CHECKPOINT_EVERY = 25
BLOCK_SIZES = (2, 7, 64, 256)


def wrap(directory, seed=7, config=None, **kwargs):
    inner = CheckpointingService(
        build_service(seed=seed),
        directory,
        checkpoint_every=CHECKPOINT_EVERY,
        durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    return GuardedRuntime(inner, config or guard_config(), **kwargs)


def hostile_stream(n=80, seed=21):
    return FaultInjector(ChaosConfig(
        seed=seed,
        p_duplicate=0.06, p_drop=0.05, p_swap=0.08,
        p_clock_skew=0.04, skew_max_s=300.0,
        p_garbage=0.04,
        p_late=0.03, late_max_positions=6,
    )).mutate_trips(make_trips(n, seed=seed))


def journal_bytes(runtime):
    return (runtime.inner.directory / "journal.jsonl").read_bytes()


# ----------------------------------------------------------------------
# Validator + buffer: the accounting oracle (scalar vs blocked).
# ----------------------------------------------------------------------

def run_scalar(stream, lateness_s, max_pending):
    """The ``block_size=1`` oracle: per-trip admit + push."""
    v_sink, b_sink = DeadLetterSink(), DeadLetterSink()
    validator = TripValidator(
        ValidationConfig(max_backwards_s=600.0), sink=v_sink
    )
    buffer = WatermarkBuffer(
        lateness_s=lateness_s, sink=b_sink, max_pending=max_pending
    )
    decisions, released = [], []
    for trip in stream:
        ok = validator.admit(trip)
        decisions.append(ok)
        if ok:
            released.extend(buffer.push(trip))
    flushed = list(buffer.flush())
    return validator, buffer, decisions, released, flushed


def run_blocked(stream, block_size, lateness_s, max_pending):
    """Same stream through the columnar path, one block at a time."""
    v_sink, b_sink = DeadLetterSink(), DeadLetterSink()
    validator = TripValidator(
        ValidationConfig(max_backwards_s=600.0), sink=v_sink
    )
    buffer = WatermarkBuffer(
        lateness_s=lateness_s, sink=b_sink, max_pending=max_pending
    )
    decisions, released = [], []
    for lo in range(0, len(stream), block_size):
        block = TripBlock.from_trips(stream[lo : lo + block_size])
        mask = validator.admit_block(block)
        decisions.extend(bool(b) for b in mask)
        accepted = block.take(np.flatnonzero(mask))
        released.extend(buffer.push_block(accepted).to_trips())
    flushed = list(buffer.flush())
    return validator, buffer, decisions, released, flushed


def key(trip):
    return (trip.order_id, trip.start_time, trip.bike_id)


def assert_oracle_parity(stream, block_size, lateness_s=120.0, max_pending=16):
    sv, sb, sd, srel, sfl = run_scalar(stream, lateness_s, max_pending)
    bv, bb, bd, brel, bfl = run_blocked(
        stream, block_size, lateness_s, max_pending
    )
    assert bd == sd, "accept/reject decisions diverged"
    assert [key(t) for t in brel] == [key(t) for t in srel], "release order"
    assert [key(t) for t in bfl] == [key(t) for t in sfl], "flush order"
    assert bv.counters == sv.counters
    assert (bv.offered, bv.accepted, bv.rejected) == (
        sv.offered, sv.accepted, sv.rejected
    )
    assert bv.sink.by_rule == sv.sink.by_rule
    assert bv.sink.rows == sv.sink.rows, "validator dead-letter rows"
    assert (bb.admitted, bb.emitted, bb.too_late, bb.shed) == (
        sb.admitted, sb.emitted, sb.too_late, sb.shed
    )
    assert bb.sink.rows == sb.sink.rows, "buffer dead-letter rows"
    bv.consistency_check()
    bb.consistency_check()


class TestAccountingOracle:
    @pytest.mark.parametrize("block_size", BLOCK_SIZES)
    def test_chaos_stream_matches_scalar(self, block_size):
        assert_oracle_parity(hostile_stream(n=120, seed=11), block_size)

    def test_sorted_stream_takes_fast_path_with_same_answer(self):
        stream = make_trips(90, seed=4)
        assert_oracle_parity(stream, block_size=30)
        # and the fast path really is zero-copy: a fully releasable
        # sorted block comes back as a slice of the input block
        buffer = WatermarkBuffer(lateness_s=0.0, max_pending=64)
        block = TripBlock.from_trips(stream[:30])
        out = buffer.push_block(block)
        assert np.shares_memory(out.start_us, block.start_us)

    def test_overflow_shedding_matches_scalar(self):
        # max_pending=4 with generous lateness forces the shed path
        stream = hostile_stream(n=60, seed=5)
        assert_oracle_parity(
            stream, block_size=13, lateness_s=3600.0, max_pending=4
        )


# ----------------------------------------------------------------------
# Full runtime: serve() at any block size == the scalar oracle.
# ----------------------------------------------------------------------

class TestRuntimeBlockParity:
    def test_clean_stream_bit_identical(self, tmp_path):
        trips = make_trips(120, seed=7)
        oracle = wrap(tmp_path / "oracle")
        oracle_out = oracle.serve(trips, block_size=1)
        for size in BLOCK_SIZES:
            runtime = wrap(tmp_path / f"bs{size}")
            out = runtime.serve(trips, block_size=size)
            runtime.consistency_check()
            assert out == oracle_out, f"outcomes diverged at block_size={size}"
            assert (
                runtime.inner.service.responses
                == oracle.inner.service.responses
            )
            assert scrub(runtime.inner.service.state_dict()) == scrub(
                oracle.inner.service.state_dict()
            )
            assert journal_bytes(runtime) == journal_bytes(oracle)
            runtime.close()
        oracle.close()

    def test_hostile_stream_bit_identical(self, tmp_path):
        hostile = hostile_stream(n=100, seed=21)
        oracle = wrap(tmp_path / "oracle", seed=21)
        oracle.serve(hostile, block_size=1)
        oracle.consistency_check()
        assert oracle.sink.total > 0, "chaos produced no rejections"
        for size in BLOCK_SIZES:
            runtime = wrap(tmp_path / f"bs{size}", seed=21)
            runtime.serve(hostile, block_size=size)
            runtime.consistency_check()
            assert (
                runtime.inner.service.responses
                == oracle.inner.service.responses
            )
            assert runtime.validator.counters == oracle.validator.counters
            assert runtime.sink.by_rule == oracle.sink.by_rule
            assert (runtime.served, runtime.duplicates) == (
                oracle.served, oracle.duplicates
            )
            assert (runtime.buffer.too_late, runtime.buffer.shed) == (
                oracle.buffer.too_late, oracle.buffer.shed
            )
            assert scrub(runtime.inner.service.state_dict()) == scrub(
                oracle.inner.service.state_dict()
            )
            assert journal_bytes(runtime) == journal_bytes(oracle)
            runtime.close()
        oracle.close()

    def test_default_config_block_size_used(self, tmp_path):
        trips = make_trips(30, seed=7)
        runtime = wrap(tmp_path / "default")
        runtime.serve(trips)  # config default (256): one block
        runtime.consistency_check()
        assert runtime.served == len(trips)
        runtime.close()

    def test_bad_block_size_rejected(self, tmp_path):
        runtime = wrap(tmp_path / "bad")
        with pytest.raises(ValueError):
            runtime.serve(make_trips(3), block_size=0)
        runtime.close()


class TestBlockedSelfHeal:
    def test_mid_block_planner_fault_heals_to_oracle_state(self, tmp_path):
        trips = make_trips(60, seed=7)
        reference = wrap(tmp_path / "ref")
        reference.serve(trips, block_size=1)

        runtime = wrap(tmp_path / "faulty")
        runtime.ingest_block(TripBlock.from_trips(trips[:30]))
        planner = runtime.inner.service.planner

        def poisoned_offer(point):
            raise RuntimeError("injected planner corruption")

        planner.offer = poisoned_offer
        # The fault fires mid-block; the group commit already journaled
        # the chunk, so recovery replays it with the healed planner.
        runtime.ingest_block(TripBlock.from_trips(trips[30:]))
        runtime.finish()
        runtime.consistency_check()
        assert runtime.healed >= 1
        assert runtime.incidents.by_kind["planner_error"] >= 1
        assert (
            runtime.inner.service.responses
            == reference.inner.service.responses
        )
        assert scrub(runtime.inner.service.state_dict()) == scrub(
            reference.inner.service.state_dict()
        )
        runtime.close()
        reference.close()


class TestKillAtEveryBlock:
    def test_bit_identical_recovery_from_every_block_boundary(self, tmp_path):
        size = 7
        hostile = hostile_stream(n=45, seed=21)
        reference = wrap(tmp_path / "ref", seed=21)
        reference.serve(hostile, block_size=size)
        reference.consistency_check()

        boundaries = list(range(size, len(hostile) + size, size))
        for k in boundaries:
            victim = wrap(tmp_path / f"kill-{k}", seed=21)
            for lo in range(0, min(k, len(hostile)), size):
                victim.ingest_block(
                    TripBlock.from_trips(hostile[lo : lo + size])
                )
            victim.close()  # the crash: buffered arrivals are lost

            resumed = GuardedRuntime.recover(
                tmp_path / f"kill-{k}", config=guard_config(),
                checkpoint_every=CHECKPOINT_EVERY, durable=False,
            )
            resumed.serve(hostile, block_size=size)  # full redelivery
            resumed.consistency_check()
            assert (
                resumed.inner.service.responses
                == reference.inner.service.responses
            ), f"responses diverged after crash at block boundary {k}"
            assert scrub(resumed.inner.service.state_dict()) == scrub(
                reference.inner.service.state_dict()
            ), f"state diverged after crash at block boundary {k}"
            resumed.close()
        reference.close()
