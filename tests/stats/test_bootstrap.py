"""Tests for repro.stats.bootstrap."""

import numpy as np
import pytest

from repro.stats import bootstrap_ci, ks_similarity_ci


class TestBootstrapCI:
    def test_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            bootstrap_ci([], np.mean, rng)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, rng, n_resamples=0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], np.mean, rng, confidence=1.0)

    def test_constant_sample_degenerate_interval(self):
        rng = np.random.default_rng(1)
        point, lo, hi = bootstrap_ci([5.0] * 20, np.mean, rng)
        assert point == lo == hi == 5.0

    def test_interval_contains_point_for_mean(self):
        rng = np.random.default_rng(2)
        sample = rng.normal(10, 2, size=100)
        point, lo, hi = bootstrap_ci(sample, np.mean, rng)
        assert lo <= point <= hi

    def test_interval_covers_true_mean_usually(self):
        """~95% of intervals should cover the true mean."""
        covered = 0
        for seed in range(40):
            rng = np.random.default_rng(seed)
            sample = rng.normal(0, 1, size=80)
            _, lo, hi = bootstrap_ci(sample, np.mean, rng, n_resamples=300)
            if lo <= 0.0 <= hi:
                covered += 1
        assert covered >= 32  # >= 80% in a small trial run

    def test_wider_interval_for_smaller_sample(self):
        rng_small = np.random.default_rng(3)
        rng_big = np.random.default_rng(3)
        base = np.random.default_rng(4).normal(0, 1, size=400)
        _, lo_s, hi_s = bootstrap_ci(base[:20], np.mean, rng_small, n_resamples=400)
        _, lo_b, hi_b = bootstrap_ci(base, np.mean, rng_big, n_resamples=400)
        assert (hi_s - lo_s) > (hi_b - lo_b)

    def test_works_with_other_statistics(self):
        rng = np.random.default_rng(5)
        sample = rng.exponential(2.0, size=60)
        point, lo, hi = bootstrap_ci(sample, np.median, rng)
        assert lo <= point <= hi


class TestKSSimilarityCI:
    def test_validation(self):
        rng = np.random.default_rng(0)
        good = np.zeros((10, 2))
        with pytest.raises(ValueError):
            ks_similarity_ci(np.zeros((0, 2)), good, rng)
        with pytest.raises(ValueError):
            ks_similarity_ci(np.zeros((5, 3)), good, rng)
        with pytest.raises(ValueError):
            ks_similarity_ci(good, good, rng, n_resamples=0)
        with pytest.raises(ValueError):
            ks_similarity_ci(good, good, rng, confidence=0.0)

    def test_same_distribution_high_similarity(self):
        rng = np.random.default_rng(1)
        a = rng.normal(size=(150, 2))
        b = rng.normal(size=(150, 2))
        point, lo, hi = ks_similarity_ci(a, b, rng, n_resamples=50)
        assert lo <= point <= hi + 5.0  # bootstrap bias can nudge the band
        assert point > 80.0

    def test_different_distributions_interval_below_same(self):
        rng = np.random.default_rng(2)
        a = rng.normal(size=(150, 2))
        far = rng.normal(loc=3.0, size=(150, 2))
        p_same, _, _ = ks_similarity_ci(a, rng.normal(size=(150, 2)), rng, n_resamples=40)
        p_far, _, hi_far = ks_similarity_ci(a, far, rng, n_resamples=40)
        assert p_far < p_same
        assert hi_far < p_same

    def test_interval_bounds_within_0_100(self):
        rng = np.random.default_rng(3)
        a = rng.uniform(size=(60, 2))
        b = rng.uniform(size=(60, 2))
        _, lo, hi = ks_similarity_ci(a, b, rng, n_resamples=40)
        assert 0.0 <= lo <= hi <= 100.0
