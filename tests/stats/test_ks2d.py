"""Tests for repro.stats.ks2d (Peacock 2-D KS test)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.stats import (
    CachedKS2D,
    KSResult,
    LiveWindow,
    ks2d_fast,
    ks2d_peacock,
    similarity_percent,
)


def gaussian_sample(rng, n, mean=(0.0, 0.0), sigma=1.0):
    return rng.normal(loc=mean, scale=sigma, size=(n, 2))


class TestKS2DBasics:
    def test_identical_samples_zero_statistic(self):
        rng = np.random.default_rng(0)
        a = gaussian_sample(rng, 100)
        for fn in (ks2d_fast, ks2d_peacock):
            res = fn(a, a)
            assert res.statistic == pytest.approx(0.0, abs=1e-12)
            assert res.similarity == pytest.approx(100.0)

    def test_disjoint_samples_near_one(self):
        rng = np.random.default_rng(1)
        a = gaussian_sample(rng, 200, mean=(0, 0), sigma=0.1)
        b = gaussian_sample(rng, 200, mean=(100, 100), sigma=0.1)
        res = ks2d_fast(a, b)
        assert res.statistic > 0.95

    def test_statistic_in_unit_interval(self):
        rng = np.random.default_rng(2)
        a = gaussian_sample(rng, 50)
        b = gaussian_sample(rng, 60, mean=(0.5, 0.5))
        for fn in (ks2d_fast, ks2d_peacock):
            res = fn(a, b)
            assert 0.0 <= res.statistic <= 1.0

    def test_symmetry(self):
        rng = np.random.default_rng(3)
        a = gaussian_sample(rng, 80)
        b = gaussian_sample(rng, 90, mean=(1, 0))
        assert ks2d_fast(a, b).statistic == pytest.approx(ks2d_fast(b, a).statistic)

    def test_same_distribution_small_statistic(self):
        rng = np.random.default_rng(4)
        a = gaussian_sample(rng, 400)
        b = gaussian_sample(rng, 400)
        assert ks2d_fast(a, b).statistic < 0.15

    def test_shifted_distribution_larger_statistic(self):
        rng = np.random.default_rng(5)
        a = gaussian_sample(rng, 300)
        same = gaussian_sample(rng, 300)
        shifted = gaussian_sample(rng, 300, mean=(2.0, 2.0))
        d_same = ks2d_fast(a, same).statistic
        d_shift = ks2d_fast(a, shifted).statistic
        assert d_shift > d_same

    def test_empty_sample_rejected(self):
        with pytest.raises(ValueError):
            ks2d_fast(np.empty((0, 2)), np.zeros((5, 2)))

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            ks2d_fast(np.zeros((5, 3)), np.zeros((5, 2)))

    def test_result_fields(self):
        rng = np.random.default_rng(6)
        res = ks2d_fast(gaussian_sample(rng, 30), gaussian_sample(rng, 40))
        assert isinstance(res, KSResult)
        assert res.n1 == 30 and res.n2 == 40
        assert 0.0 <= res.p_value <= 1.0


class TestPeacockVsFast:
    def test_peacock_at_least_fast(self):
        # Peacock enumerates a superset of corners, so its sup can only be >=.
        rng = np.random.default_rng(7)
        a = gaussian_sample(rng, 60)
        b = gaussian_sample(rng, 60, mean=(0.5, 0))
        d_fast = ks2d_fast(a, b).statistic
        d_peacock = ks2d_peacock(a, b, max_grid=128).statistic
        assert d_peacock >= d_fast - 1e-12

    def test_peacock_grid_cap_stable(self):
        rng = np.random.default_rng(8)
        a = gaussian_sample(rng, 150)
        b = gaussian_sample(rng, 150, mean=(1, 1))
        d_small = ks2d_peacock(a, b, max_grid=16).statistic
        d_big = ks2d_peacock(a, b, max_grid=64).statistic
        assert abs(d_small - d_big) < 0.1


class TestPValue:
    def test_same_distribution_high_p(self):
        rng = np.random.default_rng(9)
        a = gaussian_sample(rng, 300)
        b = gaussian_sample(rng, 300)
        assert ks2d_fast(a, b).p_value > 0.05

    def test_different_distribution_low_p(self):
        rng = np.random.default_rng(10)
        a = gaussian_sample(rng, 300, sigma=0.2)
        b = gaussian_sample(rng, 300, mean=(3, 3), sigma=0.2)
        assert ks2d_fast(a, b).p_value < 0.01


class TestSimilarityPercent:
    def test_range(self):
        rng = np.random.default_rng(11)
        s = similarity_percent(gaussian_sample(rng, 50), gaussian_sample(rng, 50))
        assert 0.0 <= s <= 100.0

    def test_exact_flag_uses_peacock(self):
        rng = np.random.default_rng(12)
        a = gaussian_sample(rng, 40)
        b = gaussian_sample(rng, 40, mean=(0.3, 0.3))
        s_exact = similarity_percent(a, b, exact=True)
        s_fast = similarity_percent(a, b, exact=False)
        assert s_exact <= s_fast + 1e-9

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    @settings(max_examples=15, deadline=None)
    def test_statistic_bounds_property(self, seed):
        rng = np.random.default_rng(seed)
        a = gaussian_sample(rng, 30)
        b = gaussian_sample(rng, 30, mean=(rng.uniform(-2, 2), rng.uniform(-2, 2)))
        res = ks2d_fast(a, b)
        assert 0.0 <= res.statistic <= 1.0
        assert res.similarity == pytest.approx(100 * (1 - res.statistic))


class TestCachedKS2D:
    """The checkpoint cache must be bit-identical to ks2d_fast."""

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_ks2d_fast_bitwise(self, seed):
        rng = np.random.default_rng(seed)
        na = int(rng.integers(5, 400))
        nb = int(rng.integers(5, 400))
        a = gaussian_sample(rng, na)
        b = gaussian_sample(rng, nb, mean=(rng.uniform(-1, 1), rng.uniform(-1, 1)))
        if seed % 3 == 0:  # inject duplicate coordinates / exact ties
            a[:: 4] = a[0]
            b[:: 5] = a[0]
        cache = CachedKS2D(a)
        got = cache.test(b)
        want = ks2d_fast(a, b)
        assert got.statistic == want.statistic
        assert got.p_value == want.p_value
        assert (got.n1, got.n2) == (want.n1, want.n2)

    def test_reused_across_checkpoints(self):
        rng = np.random.default_rng(99)
        a = gaussian_sample(rng, 200)
        cache = CachedKS2D(a)
        for _ in range(5):
            b = gaussian_sample(rng, 150, mean=(rng.uniform(-1, 1), 0.0))
            assert cache.test(b).statistic == ks2d_fast(a, b).statistic
        assert cache.historical.shape == (200, 2)


class TestLiveWindow:
    def test_rejects_non_positive_cap(self):
        with pytest.raises(ValueError):
            LiveWindow(0)

    def test_matches_sliding_list_semantics(self):
        rng = np.random.default_rng(5)
        cap = 7
        win = LiveWindow(cap)
        reference = []
        for x, y in rng.normal(size=(40, 2)):
            win.push(float(x), float(y))
            reference.append((float(x), float(y)))
            if len(reference) > cap:
                reference.pop(0)
            assert len(win) == len(reference)
            np.testing.assert_array_equal(win.array(), np.asarray(reference))

    def test_extend_equivalent_to_pushes(self):
        rng = np.random.default_rng(6)
        pts = rng.normal(size=(23, 2))
        bulk, serial = LiveWindow(9), LiveWindow(9)
        bulk.extend(pts)
        for x, y in pts:
            serial.push(float(x), float(y))
        np.testing.assert_array_equal(bulk.array(), serial.array())

    def test_extend_longer_than_cap_keeps_tail(self):
        pts = np.arange(30, dtype=float).reshape(15, 2)
        win = LiveWindow(4)
        win.extend(pts)
        np.testing.assert_array_equal(win.array(), pts[-4:])
