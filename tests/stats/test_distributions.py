"""Tests for repro.stats.distributions."""

import numpy as np
import pytest

from repro.geo import Point
from repro.stats import (
    REQUEST_DISTRIBUTIONS,
    empirical_cdf_2d,
    sample_normal,
    sample_poisson_ring,
    sample_uniform,
)


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestSamplers:
    def test_uniform_count_and_extent(self, rng):
        pts = sample_uniform(rng, 500, extent=100.0)
        assert len(pts) == 500
        assert all(-100 <= p.x <= 100 and -100 <= p.y <= 100 for p in pts)

    def test_uniform_zero(self, rng):
        assert sample_uniform(rng, 0) == []

    def test_uniform_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_uniform(rng, -1)

    def test_normal_concentrates_near_origin(self, rng):
        pts = sample_normal(rng, 2000, sigma=10.0)
        radii = np.hypot([p.x for p in pts], [p.y for p in pts])
        # Mean radius of a 2-D Gaussian is sigma * sqrt(pi/2) ~ 12.5.
        assert np.mean(radii) == pytest.approx(12.53, rel=0.1)

    def test_normal_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_normal(rng, -5)

    def test_poisson_ring_mid_range(self, rng):
        pts = sample_poisson_ring(rng, 2000, rate=3.0, scale=100.0)
        radii = np.hypot([p.x for p in pts], [p.y for p in pts])
        # Radii ~ scale * (Poisson(3) + U) => mean ~ 350.
        assert np.mean(radii) == pytest.approx(350.0, rel=0.1)
        # Mid-range concentration: few points very close to the origin.
        assert np.mean(radii < 50.0) < 0.1

    def test_poisson_negative_rejected(self, rng):
        with pytest.raises(ValueError):
            sample_poisson_ring(rng, -2)

    def test_registry_names(self):
        assert set(REQUEST_DISTRIBUTIONS) == {"uniform", "poisson", "normal"}

    def test_registry_callables_produce_points(self, rng):
        for name, fn in REQUEST_DISTRIBUTIONS.items():
            pts = fn(rng, 10)
            assert len(pts) == 10
            assert all(isinstance(p, Point) for p in pts)

    def test_reproducible_with_seed(self):
        a = sample_normal(np.random.default_rng(7), 20)
        b = sample_normal(np.random.default_rng(7), 20)
        assert a == b


class TestEmpiricalCDF:
    def test_corners(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0], [2.0, 2.0]])
        assert empirical_cdf_2d(data, -1, -1) == 0.0
        assert empirical_cdf_2d(data, 10, 10) == 1.0

    def test_half(self):
        data = np.array([[0.0, 0.0], [1.0, 1.0]])
        assert empirical_cdf_2d(data, 0.5, 0.5) == pytest.approx(0.5)

    def test_strict_inequality(self):
        data = np.array([[1.0, 1.0]])
        assert empirical_cdf_2d(data, 1.0, 1.0) == 0.0

    def test_monotone_in_both_axes(self):
        rng = np.random.default_rng(3)
        data = rng.normal(size=(200, 2))
        v1 = empirical_cdf_2d(data, 0.0, 0.0)
        v2 = empirical_cdf_2d(data, 1.0, 0.0)
        v3 = empirical_cdf_2d(data, 1.0, 1.0)
        assert v1 <= v2 <= v3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf_2d(np.empty((0, 2)), 0, 0)

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf_2d(np.zeros((5,)), 0, 0)
