"""Regenerate the committed ``scrub-fleet`` fixture.

Builds a small two-shard fleet layout out of real checkpoint
directories, then plants one instance of each damage class the scrubber
repairs:

* ``shard-000``: the newest snapshot gets a single flipped bit
  (``snapshot_corrupt`` -> demoted; recovery falls back to the previous
  good snapshot plus the journal tail),
* ``shard-001``: a torn trailing journal line
  (``journal_torn_tail`` -> repaired),
* ``shard-001``: an orphan tmp file from an interrupted atomic write
  (``orphan_tmp`` -> removed).

Run from the repo root::

    PYTHONPATH=src python tests/fixtures/make_scrub_fixture.py

Everything is seeded, so the regenerated tree is bit-identical except
for the one wall-clock field inside the snapshots; CI never compares
fixture bytes, only scrub behaviour (``--check`` exits 4, repair then
``--check`` exits 0).
"""

import shutil
import sys
from datetime import datetime, timedelta
from pathlib import Path

import numpy as np

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    PlacementService,
    constant_facility_cost,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import Point
from repro.resilience import CheckpointingService, FaultFS, constant_cost_spec

COST_VALUE = 8000.0
ROOT = Path(__file__).parent / "scrub-fleet"


def _make_trips(n, seed):
    rng = np.random.default_rng(seed)
    t0 = datetime(2017, 5, 10)
    return [
        TripRecord(
            order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
            start_time=t0 + timedelta(seconds=30 * i),
            start=Point(*rng.uniform(0.0, 2000.0, 2)),
            end=Point(*rng.uniform(0.0, 2000.0, 2)),
        )
        for i in range(n)
    ]


def _build_service(seed):
    rng = np.random.default_rng(seed + 100)
    anchors = [
        Point(float(x), float(y)) for x in (0, 1000, 2000) for y in (0, 1000, 2000)
    ]
    historical = rng.uniform(0.0, 2000.0, size=(300, 2))
    planner = EsharingPlanner(
        anchors,
        constant_facility_cost(COST_VALUE),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(),
    )
    fleet = Fleet(planner.stations, n_bikes=80, rng=np.random.default_rng(seed + 2))
    return PlacementService(planner, fleet)


def _checkpoint_shard(directory, seed):
    service = CheckpointingService(
        _build_service(seed), directory,
        checkpoint_every=15, durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    for trip in _make_trips(40, seed=seed):
        service.handle_trip(trip)
    service.checkpoint()
    service.close()


def main() -> int:
    if ROOT.exists():
        shutil.rmtree(ROOT)
    ROOT.mkdir(parents=True)
    (ROOT / "shardplan.json").write_text(
        '{"fixture": "scrub-fleet", "shards": 2}\n'
    )
    for sid in range(2):
        _checkpoint_shard(ROOT / f"shard-{sid:03d}", seed=sid)

    # Damage 1: bit-rot the newest shard-000 snapshot.
    snapshots = sorted((ROOT / "shard-000").glob("snapshot-*.json"))
    assert len(snapshots) >= 2, "need an older snapshot to fall back to"
    FaultFS.bitrot(snapshots[-1], seed=3)

    # Damage 2: torn trailing journal line on shard-001.
    with open(ROOT / "shard-001" / "journal.jsonl", "ab") as f:
        f.write(b"deadbeefdeadbeef {torn mid-append")

    # Damage 3: orphan tmp file from an interrupted atomic write.
    (ROOT / "shard-001" / "snapshot-0000000099.json.tmp-orphan").write_text(
        "half written"
    )

    print(f"wrote {ROOT}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
