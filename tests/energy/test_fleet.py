"""Tests for repro.energy.fleet."""

from datetime import datetime

import numpy as np
import pytest

from repro.datasets import TripRecord
from repro.energy import Battery, BatteryConfig, Fleet, replay_trips_onto_fleet
from repro.geo import Point


def stations(n=4, spacing=1000.0):
    return [Point(i * spacing, 0.0) for i in range(n)]


@pytest.fixture
def fleet():
    return Fleet(stations(), n_bikes=40, rng=np.random.default_rng(0))


class TestFleetConstruction:
    def test_needs_stations(self):
        with pytest.raises(ValueError):
            Fleet([], n_bikes=10)

    def test_needs_bikes(self):
        with pytest.raises(ValueError):
            Fleet(stations(), n_bikes=0)

    def test_threshold_validated(self):
        with pytest.raises(ValueError):
            Fleet(stations(), n_bikes=5, threshold=0.0)

    def test_bikes_distributed_round_robin(self, fleet):
        per_station = [len(fleet.bikes_at(s)) for s in range(4)]
        assert per_station == [10, 10, 10, 10]

    def test_initial_levels_mostly_high_with_tail(self):
        # The Fig. 2(d) shape: majority high charge, non-empty low tail.
        f = Fleet(stations(), n_bikes=2000, rng=np.random.default_rng(1))
        levels = f.charge_levels()
        assert np.mean(levels > 0.5) > 0.7
        assert 0 < np.mean(levels < 0.2) < 0.2


class TestFleetOperations:
    def test_ride_moves_and_drains(self, fleet):
        bike = fleet.bikes_at(0)[0]
        before = bike.battery.level
        fleet.ride(bike.bike_id, to_station=2, distance_m=3000.0)
        assert bike.station == 2
        assert bike.battery.level < before

    def test_ride_unknown_bike_raises(self, fleet):
        with pytest.raises(KeyError):
            fleet.ride(999, to_station=0, distance_m=100.0)

    def test_ride_invalid_station_raises(self, fleet):
        with pytest.raises(ValueError):
            fleet.ride(0, to_station=9, distance_m=100.0)

    def test_low_energy_map_matches_threshold(self, fleet):
        mapping = fleet.low_energy_map()
        for station, ids in mapping.items():
            for bike_id in ids:
                assert fleet.bikes[bike_id].battery.level < fleet.threshold
                assert fleet.bikes[bike_id].station == station

    def test_low_energy_count_consistent(self, fleet):
        mapping = fleet.low_energy_map()
        assert fleet.low_energy_count() == sum(len(v) for v in mapping.values())

    def test_stations_needing_service(self, fleet):
        needing = fleet.stations_needing_service()
        assert needing == sorted(fleet.low_energy_map())

    def test_snapshot_consistency(self, fleet):
        snap = fleet.snapshot(1)
        assert snap.station == 1
        assert snap.total_bikes == len(fleet.bikes_at(1))
        assert len(snap.levels) == snap.total_bikes
        assert all(fleet.bikes[b].station == 1 for b in snap.low_bikes)

    def test_snapshots_cover_all_stations(self, fleet):
        snaps = fleet.snapshots()
        assert [s.station for s in snaps] == [0, 1, 2, 3]
        assert sum(s.total_bikes for s in snaps) == len(fleet)

    def test_pick_bike_prefers_high_charge(self, fleet):
        bike = fleet.pick_bike(0)
        assert bike is not None
        best = max(b.battery.level for b in fleet.bikes_at(0))
        assert bike.battery.level == best

    def test_pick_bike_prefer_low(self):
        f = Fleet(stations(1), n_bikes=3, rng=np.random.default_rng(2))
        f.bikes[0].battery.level = 0.9
        f.bikes[1].battery.level = 0.10
        f.bikes[2].battery.level = 0.05
        bike = f.pick_bike(0, prefer_low=True)
        assert bike.bike_id == 2

    def test_pick_bike_prefer_low_none_when_all_high(self):
        f = Fleet(stations(1), n_bikes=2, rng=np.random.default_rng(3))
        for b in f.bikes:
            b.battery.level = 0.9
        assert f.pick_bike(0, prefer_low=True) is None

    def test_pick_bike_empty_station(self):
        f = Fleet(stations(2), n_bikes=1, rng=np.random.default_rng(4))
        # The single bike sits at station 0; station 1 is empty.
        assert f.pick_bike(1) is None

    def test_recharge_station_clears_low(self, fleet):
        target = None
        for s, ids in fleet.low_energy_map().items():
            if ids:
                target = s
                break
        if target is None:
            pytest.skip("seed produced no low bikes")
        n = fleet.recharge_station(target)
        assert n > 0
        assert target not in fleet.low_energy_map()


class TestReplay:
    def test_replay_executes_trips(self, fleet):
        trips = [
            TripRecord(
                order_id=i,
                user_id=i,
                bike_id=0,
                bike_type=1,
                start_time=datetime(2017, 5, 10, 8, i),
                start=Point(0.0, 0.0),
                end=Point(2000.0, 0.0),
            )
            for i in range(3)
        ]

        def station_of(p):
            return 0 if p.x < 1000 else 2

        executed = replay_trips_onto_fleet(fleet, station_of, trips)
        assert executed == 3
        assert len(fleet.bikes_at(2)) == 10 + 3

    def test_replay_skips_empty_origin(self):
        f = Fleet(stations(2), n_bikes=1, rng=np.random.default_rng(5))
        trip = TripRecord(
            order_id=0, user_id=0, bike_id=0, bike_type=1,
            start_time=datetime(2017, 5, 10, 8, 0),
            start=Point(1000.0, 0.0), end=Point(0.0, 0.0),
        )
        executed = replay_trips_onto_fleet(f, lambda p: 1 if p.x > 500 else 0, [trip])
        assert executed == 0
