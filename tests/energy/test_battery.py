"""Tests for repro.energy.battery."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.energy import LOW_ENERGY_THRESHOLD, Battery, BatteryConfig


class TestBatteryConfig:
    def test_defaults_valid(self):
        cfg = BatteryConfig()
        assert cfg.range_km == pytest.approx(40.0)

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BatteryConfig(capacity_wh=0)

    def test_invalid_consumption(self):
        with pytest.raises(ValueError):
            BatteryConfig(wh_per_km=-1)

    def test_invalid_noise(self):
        with pytest.raises(ValueError):
            BatteryConfig(consumption_noise=-0.1)

    def test_invalid_idle_drain(self):
        with pytest.raises(ValueError):
            BatteryConfig(idle_drain_per_day=1.0)


class TestBattery:
    def test_initial_level_validated(self):
        with pytest.raises(ValueError):
            Battery(level=1.5)
        with pytest.raises(ValueError):
            Battery(level=-0.1)

    def test_full_battery_not_low(self):
        assert not Battery(level=1.0).is_low

    def test_low_threshold(self):
        assert Battery(level=LOW_ENERGY_THRESHOLD - 0.01).is_low
        assert not Battery(level=LOW_ENERGY_THRESHOLD).is_low

    def test_ride_drains_deterministically_without_rng(self):
        b = Battery(BatteryConfig(capacity_wh=100.0, wh_per_km=10.0, consumption_noise=0.0))
        b.ride(1000.0)  # 1 km => 10 Wh => 10% of capacity
        assert b.level == pytest.approx(0.9)

    def test_ride_never_below_zero(self):
        b = Battery(BatteryConfig(capacity_wh=10.0, wh_per_km=10.0), level=0.05)
        b.ride(100_000.0)
        assert b.level == 0.0

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            Battery().ride(-1.0)

    def test_ride_noise_varies(self):
        rng = np.random.default_rng(0)
        cfg = BatteryConfig(consumption_noise=0.5)
        levels = set()
        for _ in range(5):
            b = Battery(cfg, level=1.0)
            levels.add(round(b.ride(5000.0, rng=rng), 6))
        assert len(levels) > 1

    def test_idle_drain(self):
        b = Battery(BatteryConfig(idle_drain_per_day=0.01), level=0.5)
        b.idle(10.0)
        assert b.level == pytest.approx(0.4)

    def test_idle_negative_rejected(self):
        with pytest.raises(ValueError):
            Battery().idle(-1.0)

    def test_recharge(self):
        b = Battery(level=0.1)
        b.recharge()
        assert b.level == 1.0

    def test_remaining_range(self):
        b = Battery(BatteryConfig(capacity_wh=360.0, wh_per_km=9.0), level=0.5)
        assert b.remaining_range_km() == pytest.approx(20.0)

    def test_can_ride_respects_margin(self):
        # 10 Wh capacity at 10 Wh/km: 1 km nominal range.
        b = Battery(BatteryConfig(capacity_wh=10.0, wh_per_km=10.0, consumption_noise=0.0))
        assert b.can_ride(800.0, margin=1.2)  # needs 9.6 Wh <= 10
        assert not b.can_ride(900.0, margin=1.2)  # needs 10.8 Wh > 10

    @given(st.floats(min_value=0, max_value=50_000), st.floats(min_value=0, max_value=1))
    def test_level_always_in_unit_interval(self, distance, start):
        b = Battery(level=start)
        b.ride(distance)
        assert 0.0 <= b.level <= 1.0
        b.idle(3.0)
        assert 0.0 <= b.level <= 1.0
