"""Tests for repro.core.result (PlacementResult and evaluate_placement)."""

import pytest

from repro.core import DemandPoint, constant_facility_cost, evaluate_placement
from repro.core.result import PlacementResult
from repro.geo import Point


@pytest.fixture
def result():
    demands = [DemandPoint(Point(0, 0), weight=2.0), DemandPoint(Point(10, 0))]
    return PlacementResult(
        stations=[Point(0, 0), Point(10, 0)],
        assignment=[0, 1],
        walking=0.0,
        space=20.0,
        demands=demands,
        online_opened=[1],
    )


class TestValidation:
    def test_negative_costs_rejected(self):
        with pytest.raises(ValueError):
            PlacementResult([Point(0, 0)], [], walking=-1.0, space=0.0)
        with pytest.raises(ValueError):
            PlacementResult([Point(0, 0)], [], walking=0.0, space=-1.0)

    def test_out_of_range_assignment_rejected(self):
        with pytest.raises(ValueError):
            PlacementResult([Point(0, 0)], [1], walking=0.0, space=0.0)
        with pytest.raises(ValueError):
            PlacementResult([Point(0, 0)], [-1], walking=0.0, space=0.0)


class TestProperties:
    def test_counts_and_total(self, result):
        assert result.n_stations == 2
        assert result.total == pytest.approx(20.0)

    def test_station_of(self, result):
        assert result.station_of(0) == Point(0, 0)
        assert result.station_of(1) == Point(10, 0)

    def test_average_walking_distance_weighted(self):
        demands = [DemandPoint(Point(0, 0), weight=3.0), DemandPoint(Point(0, 10))]
        res = PlacementResult(
            stations=[Point(0, 5)],
            assignment=[0, 0],
            walking=3.0 * 5 + 1.0 * 5,
            space=0.0,
            demands=demands,
        )
        # 20 walking over 4 arrivals.
        assert res.average_walking_distance() == pytest.approx(5.0)

    def test_average_walking_without_demands_rejected(self):
        res = PlacementResult([Point(0, 0)], [], walking=0.0, space=0.0)
        with pytest.raises(ValueError):
            res.average_walking_distance()

    def test_summary_format(self, result):
        text = result.summary()
        assert "#parking=2" in text
        assert "total=20.0" in text


class TestEvaluatePlacement:
    def test_costs_and_assignment(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(100, 0), weight=2.0)]
        stations = [Point(10, 0), Point(90, 0)]
        res = evaluate_placement(demands, stations, constant_facility_cost(7.0))
        assert res.assignment == [0, 1]
        assert res.walking == pytest.approx(10.0 + 2.0 * 10.0)
        assert res.space == pytest.approx(14.0)
        assert res.demands == demands

    def test_empty_demand(self):
        res = evaluate_placement([], [Point(0, 0)], constant_facility_cost(3.0))
        assert res.walking == 0.0
        assert res.space == pytest.approx(3.0)
