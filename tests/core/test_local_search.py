"""Tests for repro.core.local_search."""

import itertools

import numpy as np
import pytest

from repro.core import (
    DemandPoint,
    constant_facility_cost,
    evaluate_placement,
    local_search,
    offline_placement,
    refine_placement,
)
from repro.geo import Point


def uniform_demands(seed, n, extent=500.0):
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0, extent, size=(n, 2))
    return [DemandPoint(Point(float(x), float(y))) for x, y in xy]


def brute_force(demands, candidates, cost_fn):
    best = float("inf")
    for r in range(1, len(candidates) + 1):
        for subset in itertools.combinations(range(len(candidates)), r):
            stations = [candidates[i] for i in subset]
            best = min(best, evaluate_placement(demands, stations, cost_fn).total)
    return best


class TestLocalSearch:
    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            local_search([DemandPoint(Point(0, 0))], [], constant_facility_cost(1.0), [0])

    def test_empty_initial_rejected(self):
        with pytest.raises(ValueError):
            local_search(
                [DemandPoint(Point(0, 0))], [Point(0, 0)], constant_facility_cost(1.0), []
            )

    def test_out_of_range_initial_rejected(self):
        with pytest.raises(ValueError):
            local_search(
                [DemandPoint(Point(0, 0))], [Point(0, 0)], constant_facility_cost(1.0), [5]
            )

    def test_no_demand_returns_initial(self):
        open_idx, cost = local_search(
            [], [Point(0, 0), Point(1, 1)], constant_facility_cost(7.0), [0, 1]
        )
        assert open_idx == [0, 1]
        assert cost == pytest.approx(14.0)

    def test_closes_redundant_station(self):
        demands = [DemandPoint(Point(0, 0))]
        candidates = [Point(0, 0), Point(1000, 1000)]
        open_idx, cost = local_search(
            demands, candidates, constant_facility_cost(10.0), [0, 1]
        )
        assert open_idx == [0]
        assert cost == pytest.approx(10.0)

    def test_opens_missing_station(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(10_000, 0))]
        candidates = [Point(0, 0), Point(10_000, 0)]
        open_idx, cost = local_search(
            demands, candidates, constant_facility_cost(10.0), [0]
        )
        assert open_idx == [0, 1]

    def test_swaps_to_better_location(self):
        demands = [DemandPoint(Point(100, 0), weight=5.0)]
        candidates = [Point(0, 0), Point(100, 0)]
        open_idx, _ = local_search(
            demands, candidates, constant_facility_cost(10.0), [0]
        )
        assert open_idx == [1]

    def test_never_worse_than_initial(self):
        for seed in range(5):
            demands = uniform_demands(seed, 25)
            candidates = [d.location for d in demands]
            cost_fn = constant_facility_cost(800.0)
            initial = [0, 1, 2]
            initial_cost = evaluate_placement(
                demands, [candidates[i] for i in initial], cost_fn
            ).total
            _, cost = local_search(demands, candidates, cost_fn, initial)
            assert cost <= initial_cost + 1e-6

    def test_reaches_optimum_on_tiny_instances(self):
        for seed in range(4):
            demands = uniform_demands(seed + 10, 6, extent=200.0)
            candidates = [d.location for d in demands]
            cost_fn = constant_facility_cost(120.0)
            _, cost = local_search(demands, candidates, cost_fn, [0])
            optimum = brute_force(demands, candidates, cost_fn)
            # Single-move local search is near-optimal on tiny instances.
            assert cost <= optimum * 1.15 + 1e-6


class TestRefinePlacement:
    def test_no_stations_rejected(self):
        from repro.core.result import PlacementResult

        empty = PlacementResult([], [], 0.0, 0.0)
        with pytest.raises(ValueError):
            refine_placement(empty, constant_facility_cost(1.0))

    def test_never_increases_total(self):
        for seed in range(5):
            demands = uniform_demands(seed + 20, 30)
            cost_fn = constant_facility_cost(500.0)
            greedy = offline_placement(demands, cost_fn)
            refined = refine_placement(greedy, cost_fn)
            assert refined.total <= greedy.total + 1e-6

    def test_greedy_already_near_local_optimum(self):
        """The 1.61 greedy should leave little for local search to close."""
        gaps = []
        for seed in range(5):
            demands = uniform_demands(seed + 40, 40)
            cost_fn = constant_facility_cost(800.0)
            greedy = offline_placement(demands, cost_fn)
            refined = refine_placement(greedy, cost_fn)
            gaps.append(1.0 - refined.total / greedy.total)
        assert np.mean(gaps) < 0.10

    def test_custom_candidates(self):
        demands = [DemandPoint(Point(50, 50), weight=10.0)]
        cost_fn = constant_facility_cost(100.0)
        greedy = offline_placement(demands, cost_fn, candidates=[Point(0, 0)])
        refined = refine_placement(
            greedy, cost_fn, candidates=[Point(0, 0), Point(50, 50)]
        )
        assert refined.stations == [Point(50, 50)]
