"""Tests for repro.core.esharing (Algorithm 2)."""

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    constant_facility_cost,
    demand_points_from_stream,
    esharing_placement,
    meyerson_placement,
    offline_placement,
)
from repro.geo import Point


def cluster_stream(rng, centers, n, sigma=100.0, noise=0.25, extent=3000.0):
    """Hotspot demand with a uniform background — the paper's workload shape."""
    pts = []
    for _ in range(n):
        if noise > 0 and rng.uniform() < noise:
            xy = rng.uniform(0, extent, size=2)
            pts.append(Point(float(xy[0]), float(xy[1])))
        else:
            c = centers[int(rng.integers(len(centers)))]
            off = rng.normal(0, sigma, size=2)
            pts.append(Point(c.x + float(off[0]), c.y + float(off[1])))
    return pts


@pytest.fixture(scope="module")
def anchor_setup():
    """Offline anchor computed on historical data (paper-scale 3x3 km field)."""
    rng = np.random.default_rng(0)
    centers = [Point(float(x), float(y)) for x, y in rng.uniform(300, 2700, size=(8, 2))]
    historical_pts = cluster_stream(rng, centers, 600)
    cost_fn = constant_facility_cost(10_000.0)
    offline = offline_placement(demand_points_from_stream(historical_pts), cost_fn)
    historical = np.asarray([(p.x, p.y) for p in historical_pts])
    return centers, historical, offline, cost_fn


class TestConfig:
    def test_defaults_valid(self):
        EsharingConfig()

    def test_beta_below_one_rejected(self):
        with pytest.raises(ValueError):
            EsharingConfig(beta=0.5)

    def test_bad_tolerance_rejected(self):
        with pytest.raises(ValueError):
            EsharingConfig(tolerance_m=0.0)

    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            EsharingConfig(history_window=0)

    def test_unknown_fixed_penalty_rejected(self):
        with pytest.raises(ValueError):
            EsharingConfig(fixed_penalty="type_iv")

    def test_bad_initial_cost_rejected(self):
        with pytest.raises(ValueError):
            EsharingConfig(initial_open_cost_m=0.0)


class TestPlannerBasics:
    def test_empty_anchor_rejected(self):
        with pytest.raises(ValueError):
            EsharingPlanner(
                [], constant_facility_cost(1.0), np.zeros((5, 2)), np.random.default_rng(0)
            )

    def test_bad_historical_shape_rejected(self):
        with pytest.raises(ValueError):
            EsharingPlanner(
                [Point(0, 0)], constant_facility_cost(1.0),
                np.zeros((5, 3)), np.random.default_rng(0),
            )

    def test_anchor_space_cost_charged_up_front(self, anchor_setup):
        _, historical, offline, cost_fn = anchor_setup
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(1)
        )
        assert planner.space == pytest.approx(10_000.0 * offline.n_stations)

    def test_request_at_existing_station_never_opens(self, anchor_setup):
        _, historical, offline, cost_fn = anchor_setup
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(2)
        )
        decision = planner.offer(offline.stations[0])
        assert not decision.opened
        assert decision.walking_cost == 0.0

    def test_decision_trace_recorded(self, anchor_setup):
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(3)
        planner = EsharingPlanner(offline.stations, cost_fn, historical, rng)
        stream = cluster_stream(rng, centers, 50)
        for p in stream:
            planner.offer(p)
        assert len(planner.decisions) == 50
        res = planner.result()
        assert len(res.assignment) == 50
        assert all(0 <= a < res.n_stations for a in res.assignment)

    def test_walking_cost_accumulates_only_on_assign(self, anchor_setup):
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(4)
        planner = EsharingPlanner(offline.stations, cost_fn, historical, rng)
        for p in cluster_stream(rng, centers, 80):
            planner.offer(p)
        manual = sum(d.walking_cost for d in planner.decisions if not d.opened)
        assert planner.walking == pytest.approx(manual)

    def test_remove_station(self, anchor_setup):
        _, historical, offline, cost_fn = anchor_setup
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(5)
        )
        before = len(planner.stations)
        planner.remove_station(0)
        assert len(planner.stations) == before - 1

    def test_result_after_removal_raises(self, anchor_setup):
        _, historical, offline, cost_fn = anchor_setup
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(7)
        )
        planner.offer(offline.stations[0])
        planner.remove_station(0)
        with pytest.raises(RuntimeError, match="PlacementService"):
            planner.result()

    def test_remove_station_bad_index(self, anchor_setup):
        _, historical, offline, cost_fn = anchor_setup
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(6)
        )
        with pytest.raises(IndexError):
            planner.remove_station(99)


class TestAlgorithmBehaviour:
    def test_cost_doubling_happens(self, anchor_setup):
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(7)
        cfg = EsharingConfig(beta=1.0)
        planner = EsharingPlanner(offline.stations, cost_fn, historical, rng, cfg)
        initial_scale = planner._cost_scale
        for p in cluster_stream(rng, centers, int(3 * planner.k) + 1):
            planner.offer(p)
        assert planner._cost_scale > initial_scale

    def test_ks_switching_on_similar_data(self, anchor_setup):
        """Live data from the same hotspots => high similarity => Type II/III."""
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(8)
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, rng, EsharingConfig(beta=1.0)
        )
        for p in cluster_stream(rng, centers, 150):
            planner.offer(p)
        assert planner.similarity_history, "KS test never ran"
        assert planner.penalty.name in ("type_ii", "type_iii")

    def test_ks_switching_on_shifted_data(self, anchor_setup):
        """Live data from new hotspots => low similarity => Type I."""
        _, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(9)
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, rng, EsharingConfig(beta=1.0)
        )
        new_centers = [Point(950, 950), Point(50, 950)]
        for p in cluster_stream(rng, new_centers, 150):
            planner.offer(p)
        assert planner.similarity_history
        assert planner.similarity_history[-1] < 80.0
        assert planner.penalty.name == "type_i"

    def test_adaptive_tolerance_widens_under_shift(self, anchor_setup):
        _, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(10)
        cfg = EsharingConfig(beta=1.0, adaptive_tolerance=True, tolerance_m=200.0)
        planner = EsharingPlanner(offline.stations, cost_fn, historical, rng, cfg)
        for p in cluster_stream(rng, [Point(950, 950)], 120):
            planner.offer(p)
        assert planner.penalty.tolerance > 200.0

    def test_opens_fewer_than_meyerson(self, anchor_setup):
        """The headline Tier-1 claim: fewer stations and lower total cost
        than Meyerson when demand follows the historical pattern."""
        centers, historical, offline, cost_fn = anchor_setup
        es_stations, es_totals, mey_stations, mey_totals = [], [], [], []
        for seed in range(6):
            rng = np.random.default_rng(100 + seed)
            stream = cluster_stream(rng, centers, 400)
            es = esharing_placement(
                stream, offline.stations, cost_fn, historical,
                np.random.default_rng(seed),
            )
            mey = meyerson_placement(stream, cost_fn, np.random.default_rng(seed))
            es_stations.append(es.n_stations)
            es_totals.append(es.total)
            mey_stations.append(mey.n_stations)
            mey_totals.append(mey.total)
        assert np.mean(es_stations) < np.mean(mey_stations)
        assert np.mean(es_totals) < np.mean(mey_totals)

    def test_responds_to_unknown_distribution(self, anchor_setup):
        """Fig. 6(b): arrivals from an unseen hotspot add online stations."""
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(11)
        surge = [Point(2500, 2500)]
        res = esharing_placement(
            cluster_stream(rng, surge, 100, sigma=40.0),
            offline.stations, cost_fn, historical, np.random.default_rng(12),
        )
        assert len(res.online_opened) >= 1
        # At least one online station sits near the new hotspot.
        opened = [res.stations[i] for i in res.online_opened]
        assert any(s.distance_to(Point(2500, 2500)) < 300.0 for s in opened)

    def test_fixed_penalty_never_switches(self, anchor_setup):
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(31)
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(32),
            EsharingConfig(beta=1.0, fixed_penalty="type_i"),
        )
        for p in cluster_stream(rng, centers, 200):
            planner.offer(p)
        assert planner.similarity_history, "KS still runs for telemetry"
        assert all(d.penalty_name == "type_i" for d in planner.decisions)

    def test_late_surge_absorbed_with_reset(self, anchor_setup):
        """A surge arriving after long normal traffic still opens stations
        because the significant KS shift resets the opening budget."""
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(21)
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(22),
            EsharingConfig(beta=1.0, reset_on_shift=True),
        )
        for p in cluster_stream(rng, centers, 400):
            planner.offer(p)
        opened_before_surge = len(planner.online_opened)
        surge_center = Point(2850, 2850)
        for p in cluster_stream(rng, [surge_center], 200, sigma=60.0, noise=0.0):
            planner.offer(p)
        opened_at_surge = [
            planner.stations[i]
            for i in planner.online_opened[opened_before_surge:]
        ]
        assert any(s.distance_to(surge_center) < 400.0 for s in opened_at_surge)

    def test_reset_latches_once_per_shift(self, anchor_setup):
        """During a sustained shift the budget resets once, not per check."""
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(23)
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(24),
            EsharingConfig(beta=1.0, reset_on_shift=True),
        )
        for p in cluster_stream(rng, [Point(2850, 2850)], 400, sigma=60.0, noise=0.0):
            planner.offer(p)
        assert planner._shift_absorbed
        # The budget has been doubling since the single reset.
        assert planner._cost_scale > planner._initial_cost_scale

    def test_reset_disabled_keeps_budget_monotone(self, anchor_setup):
        centers, historical, offline, cost_fn = anchor_setup
        rng = np.random.default_rng(25)
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(26),
            EsharingConfig(beta=1.0, reset_on_shift=False),
        )
        scales = [planner._cost_scale]
        for p in cluster_stream(rng, [Point(2850, 2850)], 300, sigma=60.0, noise=0.0):
            planner.offer(p)
            scales.append(planner._cost_scale)
        assert all(a <= b for a, b in zip(scales, scales[1:]))

    def test_batch_equals_planner_loop(self, anchor_setup):
        centers, historical, offline, cost_fn = anchor_setup
        stream = cluster_stream(np.random.default_rng(13), centers, 60)
        a = esharing_placement(
            stream, offline.stations, cost_fn, historical, np.random.default_rng(42)
        )
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(42)
        )
        for p in stream:
            planner.offer(p)
        b = planner.result()
        assert a.stations == b.stations
        assert a.assignment == b.assignment
        assert a.total == pytest.approx(b.total)
