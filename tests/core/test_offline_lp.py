"""Tests for repro.core.offline_lp (LP lower bound + certified gaps)."""

import itertools

import numpy as np
import pytest

from repro.core import (
    DemandPoint,
    certified_gap,
    constant_facility_cost,
    evaluate_placement,
    lp_lower_bound,
    offline_placement,
)
from repro.geo import Point


def uniform_demands(seed, n, extent=500.0):
    rng = np.random.default_rng(seed)
    return [
        DemandPoint(Point(float(x), float(y)))
        for x, y in rng.uniform(0, extent, size=(n, 2))
    ]


def brute_force_optimum(demands, cost_fn):
    candidates = [d.location for d in demands]
    best = float("inf")
    for r in range(1, len(candidates) + 1):
        for subset in itertools.combinations(range(len(candidates)), r):
            stations = [candidates[i] for i in subset]
            best = min(best, evaluate_placement(demands, stations, cost_fn).total)
    return best


class TestLpLowerBound:
    def test_empty_demand_zero(self):
        assert lp_lower_bound([], constant_facility_cost(5.0)) == 0.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            lp_lower_bound(
                [DemandPoint(Point(0, 0))], constant_facility_cost(1.0), candidates=[]
            )

    def test_single_demand_exact(self):
        # One demand at a candidate: LP = opening cost exactly.
        bound = lp_lower_bound([DemandPoint(Point(3, 4))], constant_facility_cost(7.0))
        assert bound == pytest.approx(7.0)

    def test_bounded_by_bruteforce_optimum(self):
        for seed in range(4):
            demands = uniform_demands(seed, 7, extent=300.0)
            cost_fn = constant_facility_cost(200.0)
            bound = lp_lower_bound(demands, cost_fn)
            optimum = brute_force_optimum(demands, cost_fn)
            assert bound <= optimum + 1e-6

    def test_bound_reasonably_tight(self):
        """The UFL LP relaxation is famously tight on Euclidean instances."""
        for seed in range(3):
            demands = uniform_demands(seed + 10, 8, extent=300.0)
            cost_fn = constant_facility_cost(200.0)
            bound = lp_lower_bound(demands, cost_fn)
            optimum = brute_force_optimum(demands, cost_fn)
            assert optimum <= bound * 1.1 + 1e-6

    def test_weighted_demand(self):
        demands = [
            DemandPoint(Point(0, 0), weight=10.0),
            DemandPoint(Point(100, 0), weight=1.0),
        ]
        cost_fn = constant_facility_cost(50.0)
        bound = lp_lower_bound(demands, cost_fn)
        # Opening both (100) beats one at origin (50 + 100 walking).
        assert bound == pytest.approx(100.0, rel=0.01)

    def test_custom_candidates(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(10, 0))]
        bound = lp_lower_bound(
            demands, constant_facility_cost(5.0), candidates=[Point(5, 0)]
        )
        assert bound == pytest.approx(15.0)


class TestCertifiedGap:
    def test_no_demand_rejected(self):
        from repro.core.result import PlacementResult

        empty = PlacementResult([Point(0, 0)], [], 0.0, 5.0)
        with pytest.raises(ValueError):
            certified_gap(empty, constant_facility_cost(5.0))

    def test_gap_at_least_one(self):
        for seed in range(4):
            demands = uniform_demands(seed + 20, 30)
            cost_fn = constant_facility_cost(800.0)
            greedy = offline_placement(demands, cost_fn)
            assert certified_gap(greedy, cost_fn) >= 1.0 - 1e-6

    def test_greedy_gap_below_theoretical_factor(self):
        """Every observed gap must respect the 1.61 guarantee (vs the
        integral optimum, which the LP lower-bounds)."""
        gaps = []
        for seed in range(5):
            demands = uniform_demands(seed + 30, 40)
            cost_fn = constant_facility_cost(1000.0)
            greedy = offline_placement(demands, cost_fn)
            gaps.append(certified_gap(greedy, cost_fn))
        assert max(gaps) <= 1.61
        # And in practice the greedy is far tighter than worst-case.
        assert np.mean(gaps) < 1.15

    def test_bad_placement_shows_large_gap(self):
        demands = uniform_demands(40, 20)
        cost_fn = constant_facility_cost(500.0)
        # All stations open: wildly over-built.
        bloated = evaluate_placement(
            demands, [d.location for d in demands], cost_fn
        )
        assert certified_gap(bloated, cost_fn) > 1.5
