"""Tests for repro.core.costs."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core import (
    DemandPoint,
    constant_facility_cost,
    demand_points_from_stream,
    uniform_facility_cost,
    walking_cost,
)
from repro.geo import Point


class TestDemandPoint:
    def test_positive_weight_required(self):
        with pytest.raises(ValueError):
            DemandPoint(Point(0, 0), weight=0)
        with pytest.raises(ValueError):
            DemandPoint(Point(0, 0), weight=-1)

    def test_cost_to_scales_with_weight(self):
        d = DemandPoint(Point(0, 0), weight=3.0)
        assert d.cost_to(Point(0, 10)) == pytest.approx(30.0)

    def test_cost_to_self_zero(self):
        d = DemandPoint(Point(5, 5), weight=2.0)
        assert d.cost_to(Point(5, 5)) == 0.0


class TestFacilityCostFns:
    def test_constant(self):
        fn = constant_facility_cost(5000.0)
        assert fn(Point(0, 0)) == 5000.0
        assert fn(Point(99, 99)) == 5000.0

    def test_constant_negative_rejected(self):
        with pytest.raises(ValueError):
            constant_facility_cost(-1.0)

    def test_uniform_memoised(self):
        fn = uniform_facility_cost(10_000.0, np.random.default_rng(0))
        p = Point(1, 2)
        assert fn(p) == fn(p)

    def test_uniform_mean_and_range(self):
        fn = uniform_facility_cost(10_000.0, np.random.default_rng(1))
        vals = [fn(Point(float(i), 0.0)) for i in range(500)]
        assert np.mean(vals) == pytest.approx(10_000.0, rel=0.05)
        assert all(5_000.0 <= v <= 15_000.0 for v in vals)

    def test_uniform_bad_params_rejected(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ValueError):
            uniform_facility_cost(0.0, rng)
        with pytest.raises(ValueError):
            uniform_facility_cost(100.0, rng, half_width_fraction=1.5)


class TestDemandPointsFromStream:
    def test_merges_duplicates(self):
        stream = [Point(0, 0), Point(1, 1), Point(0, 0)]
        pts = demand_points_from_stream(stream)
        assert len(pts) == 2
        assert pts[0].weight == 2.0
        assert pts[1].weight == 1.0

    def test_preserves_first_seen_order(self):
        stream = [Point(1, 1), Point(0, 0), Point(1, 1)]
        pts = demand_points_from_stream(stream)
        assert pts[0].location == Point(1, 1)

    def test_empty(self):
        assert demand_points_from_stream([]) == []

    @given(st.lists(st.tuples(st.integers(0, 5), st.integers(0, 5)), max_size=40))
    def test_total_weight_preserved(self, raw):
        stream = [Point(float(x), float(y)) for x, y in raw]
        pts = demand_points_from_stream(stream)
        assert sum(p.weight for p in pts) == len(stream)


class TestWalkingCost:
    def test_no_demand(self):
        total, assignment = walking_cost([], [Point(0, 0)])
        assert total == 0.0
        assert assignment == []

    def test_no_stations_raises(self):
        with pytest.raises(ValueError):
            walking_cost([DemandPoint(Point(0, 0))], [])

    def test_nearest_assignment(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(10, 0))]
        stations = [Point(1, 0), Point(9, 0)]
        total, assignment = walking_cost(demands, stations)
        assert assignment == [0, 1]
        assert total == pytest.approx(2.0)

    def test_weights_applied(self):
        demands = [DemandPoint(Point(0, 0), weight=5.0)]
        total, _ = walking_cost(demands, [Point(0, 2)])
        assert total == pytest.approx(10.0)

    @given(
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=15),
        st.lists(st.tuples(st.floats(0, 100), st.floats(0, 100)), min_size=1, max_size=5),
    )
    def test_assignment_is_argmin(self, d_raw, s_raw):
        demands = [DemandPoint(Point(x, y)) for x, y in d_raw]
        stations = [Point(x, y) for x, y in s_raw]
        _, assignment = walking_cost(demands, stations)
        for d, a in zip(demands, assignment):
            best = min(d.location.distance_to(s) for s in stations)
            assert d.location.distance_to(stations[a]) == pytest.approx(best)
