"""Tests for repro.core.station_set — the unified station store.

The load-bearing guarantee: the ``"grid"`` backend is an exact,
bit-identical drop-in for the ``"linear"`` reference — same ids, same
distances, same tie-breaks — across arbitrary interleavings of add,
remove and query.  Everything downstream (planner determinism across
backends, the Table V numbers) rests on this.
"""

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    StationSet,
    constant_facility_cost,
    esharing_placement,
    meyerson_placement,
    online_kmeans_placement,
)
from repro.geo import Point


class TestConstruction:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            StationSet(backend="kdtree")

    def test_bad_cell_size_rejected(self):
        with pytest.raises(ValueError):
            StationSet(backend="grid", cell_size=0.0)

    def test_initial_points_get_dense_ids(self):
        s = StationSet([Point(0, 0), Point(10, 10)])
        assert s.ids() == [0, 1]
        assert len(s) == 2
        assert s.total_assigned == 2
        assert s.locations() == [Point(0, 0), Point(10, 10)]


class TestStableIds:
    def test_ids_survive_removal(self):
        s = StationSet([Point(0, 0), Point(10, 0), Point(20, 0)])
        s.remove(1)
        assert s.ids() == [0, 2]
        assert 1 not in s
        assert s.is_active(2)
        assert s.location(1) == Point(10, 0)  # retired keeps coordinates

    def test_ids_never_reused(self):
        s = StationSet([Point(0, 0)])
        s.remove(0)
        assert s.add(Point(0, 0)) == 1
        assert s.total_assigned == 2

    def test_remove_unknown_raises(self):
        s = StationSet([Point(0, 0)])
        with pytest.raises(KeyError):
            s.remove(7)
        s.remove(0)
        with pytest.raises(KeyError):
            s.remove(0)

    def test_location_unknown_raises(self):
        with pytest.raises(KeyError):
            StationSet([Point(0, 0)]).location(5)


class TestQueries:
    @pytest.fixture(params=["linear", "grid"])
    def backend(self, request):
        return request.param

    def test_nearest_empty_raises(self, backend):
        with pytest.raises(ValueError):
            StationSet(backend=backend).nearest(Point(0, 0))

    def test_nearest_tie_breaks_lowest_id(self, backend):
        s = StationSet(
            [Point(5, 0), Point(-5, 0), Point(0, 5)],
            backend=backend, cell_size=3.0,
        )
        assert s.nearest(Point(0, 0)) == (0, 5.0)
        s.remove(0)
        assert s.nearest(Point(0, 0)) == (1, 5.0)

    def test_nearest_where_skips_filtered(self, backend):
        s = StationSet([Point(0, 0), Point(1, 0), Point(2, 0)], backend=backend)
        hit = s.nearest_where(Point(0, 0), lambda sid: sid != 0)
        assert hit == (1, 1.0)

    def test_nearest_where_none_when_no_match(self, backend):
        s = StationSet([Point(0, 0)], backend=backend)
        assert s.nearest_where(Point(0, 0), lambda sid: False) is None
        assert StationSet(backend=backend).nearest_where(Point(0, 0), bool) is None

    def test_within_sorted_and_inclusive(self, backend):
        s = StationSet(
            [Point(0, 3), Point(0, 1), Point(0, 2)], backend=backend, cell_size=1.5
        )
        hits = s.within(Point(0, 0), 3.0)
        assert hits == [(1, 1.0), (2, 2.0), (0, 3.0)]
        with pytest.raises(ValueError):
            s.within(Point(0, 0), -1.0)

    def test_min_spacing_incremental_and_after_removal(self, backend):
        s = StationSet(backend=backend)
        assert s.min_spacing() == float("inf")
        s.add(Point(0, 0))
        assert s.min_spacing() == float("inf")
        s.add(Point(10, 0))
        assert s.min_spacing() == 10.0
        s.add(Point(4, 0))
        assert s.min_spacing() == 4.0
        s.remove(2)  # the point creating the 4 m pair
        assert s.min_spacing() == 10.0


class TestInventoryHooks:
    def test_add_and_remove_hooks_fire(self):
        events = []
        s = StationSet([Point(0, 0)])
        s.subscribe(
            on_add=lambda sid, p: events.append(("add", sid, p)),
            on_remove=lambda sid, p: events.append(("remove", sid, p)),
        )
        s.add(Point(5, 5))
        s.remove(0)
        assert events == [
            ("add", 1, Point(5, 5)),
            ("remove", 0, Point(0, 0)),
        ]


class TestBackendEquivalence:
    """Satellite: seeded random clouds, interleaved add/remove, 1k queries —
    the grid backend must agree with the linear reference exactly."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    @pytest.mark.parametrize("cell_size", [40.0, 250.0, 900.0])
    def test_randomized_parity(self, seed, cell_size):
        rng = np.random.default_rng(seed)
        linear = StationSet(backend="linear")
        grid = StationSet(backend="grid", cell_size=cell_size)
        live = []

        def random_point():
            x, y = rng.uniform(0, 3000, 2)
            return Point(float(x), float(y))

        for p in [random_point() for _ in range(60)]:
            assert linear.add(p) == grid.add(p)
            live.append(True)

        checked = 0
        while checked < 1000:
            op = rng.uniform()
            if op < 0.08:
                sid = len(live)
                p = random_point()
                assert linear.add(p) == sid == grid.add(p)
                live.append(True)
            elif op < 0.16 and sum(live) > 5:
                active = [i for i, a in enumerate(live) if a]
                sid = int(active[int(rng.integers(len(active)))])
                linear.remove(sid)
                grid.remove(sid)
                live[sid] = False
            else:
                q = random_point()
                assert linear.nearest(q) == grid.nearest(q)
                radius = float(rng.uniform(0, 800))
                assert linear.within(q, radius) == grid.within(q, radius)
                checked += 1

        assert linear.ids() == grid.ids()
        assert linear.min_spacing() == grid.min_spacing()

    def test_parity_with_duplicate_points(self):
        pts = [Point(0, 0), Point(0, 0), Point(100, 100), Point(0, 0)]
        linear = StationSet(pts, backend="linear")
        grid = StationSet(pts, backend="grid", cell_size=50.0)
        assert linear.nearest(Point(1, 1)) == grid.nearest(Point(1, 1))
        linear.remove(0)
        grid.remove(0)
        assert linear.nearest(Point(1, 1)) == grid.nearest(Point(1, 1)) == (
            1,
            Point(1, 1).distance_to(Point(0, 0)),
        )


class TestPlacementBitIdentity:
    """Acceptance: placement outputs (stations, assignments, costs) are
    bit-identical between backends for a fixed seed."""

    def _stream(self, seed, n=300):
        rng = np.random.default_rng(seed)
        return [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (n, 2))]

    def test_esharing_backends_bit_identical(self):
        rng = np.random.default_rng(0)
        anchors = [Point(float(x), float(y)) for x, y in rng.uniform(0, 3000, (12, 2))]
        historical = rng.uniform(0, 3000, (400, 2))
        stream = self._stream(7)
        cost_fn = constant_facility_cost(10_000.0)
        results = {}
        for backend in ("linear", "grid"):
            results[backend] = esharing_placement(
                stream, anchors, cost_fn, historical, np.random.default_rng(42),
                EsharingConfig(nn_backend=backend),
            )
        a, b = results["linear"], results["grid"]
        assert a.stations == b.stations
        assert a.assignment == b.assignment
        assert a.walking == b.walking  # exact, not approx
        assert a.space == b.space
        assert a.online_opened == b.online_opened

    def test_meyerson_backends_bit_identical(self):
        stream = self._stream(11)
        cost_fn = constant_facility_cost(5_000.0)
        a = meyerson_placement(stream, cost_fn, np.random.default_rng(3))
        b = meyerson_placement(
            stream, cost_fn, np.random.default_rng(3), nn_backend="grid"
        )
        assert a.stations == b.stations
        assert a.assignment == b.assignment
        assert a.walking == b.walking
        assert a.space == b.space

    def test_online_kmeans_backends_bit_identical(self):
        stream = self._stream(13)
        cost_fn = constant_facility_cost(5_000.0)
        a = online_kmeans_placement(stream, 8, cost_fn, np.random.default_rng(5))
        b = online_kmeans_placement(
            stream, 8, cost_fn, np.random.default_rng(5), nn_backend="grid"
        )
        assert a.stations == b.stations
        assert a.assignment == b.assignment
        assert a.walking == b.walking
        assert a.space == b.space
