"""Tests for repro.core.kmedian."""

import itertools

import numpy as np
import pytest

from repro.core import (
    DemandPoint,
    constant_facility_cost,
    kmedian_placement,
    offline_placement,
)
from repro.geo import Point


def uniform_demands(seed, n, extent=500.0):
    rng = np.random.default_rng(seed)
    return [
        DemandPoint(Point(float(x), float(y)))
        for x, y in rng.uniform(0, extent, size=(n, 2))
    ]


def brute_force_kmedian(demands, candidates, k):
    best = float("inf")
    for subset in itertools.combinations(range(len(candidates)), k):
        walking = 0.0
        for d in demands:
            walking += d.weight * min(
                d.location.distance_to(candidates[i]) for i in subset
            )
        best = min(best, walking)
    return best


class TestValidation:
    def test_k_positive(self):
        with pytest.raises(ValueError):
            kmedian_placement([DemandPoint(Point(0, 0))], k=0)

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            kmedian_placement([DemandPoint(Point(0, 0))], k=1, candidates=[])

    def test_empty_demand(self):
        res = kmedian_placement([], k=3)
        assert res.n_stations == 0
        assert res.total == 0.0


class TestPlacement:
    def test_exactly_k_stations(self):
        demands = uniform_demands(0, 30)
        for k in (1, 3, 7):
            res = kmedian_placement(demands, k=k)
            assert res.n_stations == k

    def test_k_capped_by_candidates(self):
        demands = uniform_demands(1, 4)
        res = kmedian_placement(demands, k=10)
        assert res.n_stations == 4
        assert res.walking == pytest.approx(0.0)

    def test_single_median_is_weighted_center(self):
        demands = [
            DemandPoint(Point(0, 0), weight=10.0),
            DemandPoint(Point(100, 0), weight=1.0),
        ]
        res = kmedian_placement(demands, k=1)
        assert res.stations == [Point(0, 0)]

    def test_two_clusters_two_medians(self):
        cluster_a = [DemandPoint(Point(float(i), 0.0)) for i in range(4)]
        cluster_b = [DemandPoint(Point(5000.0 + i, 0.0)) for i in range(4)]
        res = kmedian_placement(cluster_a + cluster_b, k=2)
        xs = sorted(s.x for s in res.stations)
        assert xs[0] < 100 and xs[1] > 4900

    def test_assignment_is_nearest(self):
        demands = uniform_demands(2, 25)
        res = kmedian_placement(demands, k=4)
        for d, a in zip(res.demands, res.assignment):
            best = min(d.location.distance_to(s) for s in res.stations)
            assert d.location.distance_to(res.stations[a]) == pytest.approx(best)

    def test_walking_decreases_with_k(self):
        demands = uniform_demands(3, 40)
        walks = [kmedian_placement(demands, k=k).walking for k in (1, 3, 6, 10)]
        assert all(a >= b - 1e-9 for a, b in zip(walks, walks[1:]))

    def test_space_reported_with_cost_fn(self):
        demands = uniform_demands(4, 10)
        res = kmedian_placement(
            demands, k=3, facility_cost=constant_facility_cost(500.0)
        )
        assert res.space == pytest.approx(1500.0)

    @pytest.mark.parametrize("seed", range(4))
    def test_near_bruteforce_optimum(self, seed):
        demands = uniform_demands(seed + 10, 8, extent=200.0)
        candidates = [d.location for d in demands]
        res = kmedian_placement(demands, k=2)
        optimum = brute_force_kmedian(demands, candidates, 2)
        assert res.walking <= optimum * 1.2 + 1e-6

    def test_competitive_with_offline_at_same_k(self):
        """At the offline solution's own k, k-median should reach a
        walking cost at most slightly above (it optimises walking only)."""
        demands = uniform_demands(20, 40)
        cost_fn = constant_facility_cost(1000.0)
        offline = offline_placement(demands, cost_fn)
        km = kmedian_placement(demands, k=offline.n_stations)
        assert km.walking <= offline.walking * 1.05 + 1e-6
