"""Parity of the batched replay paths against the per-call online APIs.

The contract (core/replay.py, DESIGN.md "Performance"): one RNG draw per
arrival in arrival order, scalar decision distances, nearest-station
selection with the lowest-id tie-break — so every planner's batched path
must reproduce its per-call path bit for bit.
"""

import math

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    checkpoint_schedule,
    constant_facility_cost,
    meyerson_placement,
    online_kmeans_placement,
    uniform_facility_cost,
)
from repro.core.penalty import TypeIPenalty
from repro.core.replay import UniformStream
from repro.geo import Point


def _points(rng, n, extent=5_000.0):
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, extent, (n, 2))]


def _with_duplicates(rng, stream, anchors):
    for i in range(0, len(stream), 61):
        stream[i] = anchors[i % len(anchors)]
    for i in range(1, len(stream), 83):
        stream[i] = stream[i - 1]
    return stream


def _setup(seed, n, backend="linear"):
    rng = np.random.default_rng(seed)
    anchors = _points(rng, int(rng.integers(3, 25)))
    historical = rng.uniform(0, 5_000.0, size=(1_200, 2))
    stream = _with_duplicates(rng, _points(rng, n), anchors)
    fc = uniform_facility_cost(700.0, np.random.default_rng(seed + 1))
    planner = EsharingPlanner(
        anchors, fc, historical, np.random.default_rng(seed + 2),
        EsharingConfig(nn_backend=backend),
    )
    return planner, stream


def _same_run(a, b):
    ra, rb = a.result(), b.result()
    assert ra.stations == rb.stations
    assert ra.assignment == rb.assignment
    assert ra.walking == rb.walking
    assert ra.space == rb.space
    assert ra.online_opened == rb.online_opened
    assert a.similarity_history == b.similarity_history
    assert a._cost_scale == b._cost_scale
    assert a._arrivals_since_check == b._arrivals_since_check
    for da, db in zip(a.decisions, b.decisions):
        assert da == db


class TestEsharingReplay:
    @pytest.mark.parametrize("seed", range(8))
    def test_matches_per_call(self, seed):
        per_call, stream = _setup(seed, 1_200)
        batched, _ = _setup(seed, 1_200)
        for p in stream:
            per_call.offer(p)
        batched.replay(stream)
        _same_run(per_call, batched)

    @pytest.mark.parametrize("backend", ("linear", "grid"))
    def test_backends(self, backend):
        per_call, stream = _setup(42, 900, backend=backend)
        batched, _ = _setup(42, 900, backend=backend)
        for p in stream:
            per_call.offer(p)
        batched.replay(stream)
        _same_run(per_call, batched)

    def test_interleaves_with_offer(self):
        per_call, stream = _setup(3, 1_500)
        mixed, _ = _setup(3, 1_500)
        for p in stream:
            per_call.offer(p)
        third = len(stream) // 3
        for p in stream[:third]:
            mixed.offer(p)
        mixed.replay(stream[third : 2 * third])
        for p in stream[2 * third :]:
            mixed.offer(p)
        _same_run(per_call, mixed)

    def test_empty_stream_is_noop(self):
        planner, _ = _setup(0, 10)
        scale = planner._cost_scale
        assert planner.replay([]) == []
        assert planner.decisions == []
        assert planner._cost_scale == scale


class TestBaselineBatched:
    @pytest.mark.parametrize("seed", range(6))
    def test_meyerson(self, seed):
        rng = np.random.default_rng(seed)
        stream = _points(rng, 800)
        stream = _with_duplicates(rng, stream, stream[:5])
        init = _points(rng, 4) if seed % 2 else None
        penalty = TypeIPenalty(200.0) if seed % 3 == 0 else None
        runs = {}
        for batched in (False, True):
            fc = uniform_facility_cost(500.0, np.random.default_rng(seed + 1))
            runs[batched] = meyerson_placement(
                stream, fc, np.random.default_rng(seed + 2),
                initial_stations=init, penalty=penalty, batched=batched,
            )
        assert runs[False].stations == runs[True].stations
        assert runs[False].assignment == runs[True].assignment
        assert runs[False].walking == runs[True].walking
        assert runs[False].space == runs[True].space

    @pytest.mark.parametrize("seed", range(6))
    def test_online_kmeans(self, seed):
        rng = np.random.default_rng(seed)
        stream = _points(rng, 800)
        stream = _with_duplicates(rng, stream, stream[:5])
        runs = {}
        for batched in (False, True):
            runs[batched] = online_kmeans_placement(
                stream, 10, constant_facility_cost(400.0),
                np.random.default_rng(seed + 3), batched=batched,
            )
        assert runs[False].stations == runs[True].stations
        assert runs[False].assignment == runs[True].assignment
        assert runs[False].walking == runs[True].walking
        assert runs[False].space == runs[True].space

    def test_kmeans_short_stream_warmup_only(self):
        rng = np.random.default_rng(9)
        stream = _points(rng, 5)
        a = online_kmeans_placement(
            stream, 10, constant_facility_cost(1.0), np.random.default_rng(0)
        )
        b = online_kmeans_placement(
            stream, 10, constant_facility_cost(1.0), np.random.default_rng(0),
            batched=True,
        )
        assert a.stations == b.stations and a.assignment == b.assignment


class TestReplayPrimitives:
    def test_uniform_stream_matches_scalar_draws(self):
        a = np.random.default_rng(1)
        b = np.random.default_rng(1)
        stream = UniformStream(a, 20_000)
        got = [stream.next() for _ in range(20_000)]
        want = [float(b.uniform()) for _ in range(20_000)]
        assert got == want
        with pytest.raises(RuntimeError):
            stream.next()

    @pytest.mark.parametrize(
        "counter,n,period",
        [(0, 100, 10), (3, 100, 10), (0, 50, 7.5), (2, 40, 3.0), (0, 5, 100)],
    )
    def test_checkpoint_schedule_matches_counter_loop(self, counter, n, period):
        fires = []
        c = counter
        for t in range(n):
            c += 1
            if c >= period:
                fires.append(t)
                c = 0
        assert checkpoint_schedule(counter, n, period) == fires
        if fires:
            assert n - 1 - fires[-1] == c

    def test_checkpoint_schedule_rejects_bad_period(self):
        with pytest.raises(ValueError):
            checkpoint_schedule(0, 10, 0)
