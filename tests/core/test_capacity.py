"""Tests for repro.core.capacity."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import DemandPoint, assign_with_capacity
from repro.geo import Point


class TestValidation:
    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            assign_with_capacity(
                [DemandPoint(Point(0, 0))], [Point(0, 0)], [1.0, 2.0]
            )

    def test_negative_capacity_rejected(self):
        with pytest.raises(ValueError):
            assign_with_capacity([DemandPoint(Point(0, 0))], [Point(0, 0)], [-1.0])

    def test_no_stations_with_demand_rejected(self):
        with pytest.raises(ValueError):
            assign_with_capacity([DemandPoint(Point(0, 0))], [], [])

    def test_empty_demand_ok(self):
        out = assign_with_capacity([], [Point(0, 0)], [3.0])
        assert out.assignment == []
        assert out.is_feasible


class TestAssignment:
    def test_unconstrained_matches_nearest(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(10, 0))]
        stations = [Point(1, 0), Point(9, 0)]
        out = assign_with_capacity(demands, stations, [10.0, 10.0])
        assert out.assignment == [0, 1]
        assert out.walking == pytest.approx(2.0)
        assert out.is_feasible

    def test_capacity_forces_detour(self):
        # Both demands prefer station 0, but it only fits one.
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(1, 0))]
        stations = [Point(0, 0), Point(100, 0)]
        out = assign_with_capacity(demands, stations, [1.0, 10.0])
        assert sorted(out.assignment) == [0, 1]
        assert out.is_feasible
        # The demand sitting exactly on station 0 should keep it.
        assert out.assignment[0] == 0

    def test_insufficient_capacity_reports_unassigned(self):
        demands = [DemandPoint(Point(0, 0), weight=2.0), DemandPoint(Point(1, 0), weight=2.0)]
        stations = [Point(0, 0)]
        out = assign_with_capacity(demands, stations, [2.0])
        assert len(out.unassigned) == 1
        assert not out.is_feasible

    def test_atomic_demands_not_split(self):
        # A weight-3 demand cannot be split across two capacity-2 stations.
        demands = [DemandPoint(Point(0, 0), weight=3.0)]
        stations = [Point(0, 0), Point(1, 0)]
        out = assign_with_capacity(demands, stations, [2.0, 2.0])
        assert out.assignment == [-1]
        assert out.unassigned == [0]

    def test_loads_respect_capacity(self):
        rng = np.random.default_rng(0)
        demands = [
            DemandPoint(Point(float(x), float(y)), weight=float(w))
            for (x, y), w in zip(rng.uniform(0, 100, (20, 2)), rng.integers(1, 4, 20))
        ]
        stations = [Point(25, 25), Point(75, 75), Point(25, 75)]
        caps = [15.0, 15.0, 15.0]
        out = assign_with_capacity(demands, stations, caps)
        for load, cap in zip(out.loads, caps):
            assert load <= cap + 1e-9

    def test_walking_consistent_with_assignment(self):
        rng = np.random.default_rng(1)
        demands = [
            DemandPoint(Point(float(x), float(y)))
            for x, y in rng.uniform(0, 100, (15, 2))
        ]
        stations = [Point(20, 20), Point(80, 80)]
        out = assign_with_capacity(demands, stations, [8.0, 8.0])
        manual = sum(
            d.weight * d.location.distance_to(stations[a])
            for d, a in zip(demands, out.assignment)
            if a >= 0
        )
        assert out.walking == pytest.approx(manual)

    def test_capacitated_never_cheaper_than_uncapacitated(self):
        rng = np.random.default_rng(2)
        demands = [
            DemandPoint(Point(float(x), float(y)))
            for x, y in rng.uniform(0, 200, (25, 2))
        ]
        stations = [Point(50, 50), Point(150, 150), Point(50, 150)]
        free = assign_with_capacity(demands, stations, [100.0] * 3)
        tight = assign_with_capacity(demands, stations, [9.0, 9.0, 9.0])
        assert tight.is_feasible
        assert tight.walking >= free.walking - 1e-9

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_feasible_when_capacity_sufficient(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 15))
        demands = [
            DemandPoint(Point(float(x), float(y)))
            for x, y in rng.uniform(0, 100, (n, 2))
        ]
        stations = [Point(float(x), float(y)) for x, y in rng.uniform(0, 100, (3, 2))]
        out = assign_with_capacity(demands, stations, [float(n)] * 3)
        assert out.is_feasible
        assert all(0 <= a < 3 for a in out.assignment)
