"""Property-based invariants of the placement algorithms.

Hypothesis drives random instances through every placement algorithm and
checks the structural invariants that must hold regardless of inputs:
cost accounting closes, assignments are valid, station counts reconcile
with the decision traces, determinism under fixed seeds.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DemandPoint,
    EsharingConfig,
    constant_facility_cost,
    demand_points_from_stream,
    esharing_placement,
    meyerson_placement,
    offline_placement,
    online_kmeans_placement,
)
from repro.geo import Point

seeds = st.integers(min_value=0, max_value=2**31 - 1)
stream_sizes = st.integers(min_value=1, max_value=60)
costs = st.sampled_from([100.0, 1_000.0, 10_000.0])


def random_stream(seed, n, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, extent, (n, 2))]


def check_result(res, n_requests):
    """The invariants every PlacementResult must satisfy."""
    assert res.total == pytest.approx(res.walking + res.space)
    assert res.walking >= 0 and res.space >= 0
    assert len(res.assignment) == n_requests
    assert all(0 <= a < res.n_stations for a in res.assignment)
    assert len(set(res.online_opened)) == len(res.online_opened)
    for idx in res.online_opened:
        assert 0 <= idx < res.n_stations


class TestMeyersonInvariants:
    @given(seed=seeds, n=stream_sizes, f=costs)
    @settings(max_examples=40, deadline=None)
    def test_structure(self, seed, n, f):
        stream = random_stream(seed, n)
        res = meyerson_placement(
            stream, constant_facility_cost(f), np.random.default_rng(seed)
        )
        check_result(res, n)
        # Every station was opened by some arrival.
        assert len(res.online_opened) == res.n_stations
        assert res.space == pytest.approx(f * res.n_stations)

    @given(seed=seeds, n=stream_sizes)
    @settings(max_examples=20, deadline=None)
    def test_deterministic_under_seed(self, seed, n):
        stream = random_stream(seed, n)
        a = meyerson_placement(
            stream, constant_facility_cost(1000.0), np.random.default_rng(seed)
        )
        b = meyerson_placement(
            stream, constant_facility_cost(1000.0), np.random.default_rng(seed)
        )
        assert a.stations == b.stations
        assert a.assignment == b.assignment


class TestOfflineInvariants:
    @given(seed=seeds, n=stream_sizes, f=costs)
    @settings(max_examples=30, deadline=None)
    def test_structure(self, seed, n, f):
        demands = demand_points_from_stream(random_stream(seed, n))
        res = offline_placement(demands, constant_facility_cost(f))
        check_result(res, len(demands))
        # Offline stations all serve someone.
        assert set(res.assignment) == set(range(res.n_stations))

    @given(seed=seeds, n=st.integers(min_value=2, max_value=40))
    @settings(max_examples=20, deadline=None)
    def test_walking_matches_assignment_distances(self, seed, n):
        demands = demand_points_from_stream(random_stream(seed, n))
        res = offline_placement(demands, constant_facility_cost(500.0))
        manual = sum(
            d.weight * d.location.distance_to(res.stations[a])
            for d, a in zip(res.demands, res.assignment)
        )
        assert res.walking == pytest.approx(manual)

    @given(seed=seeds, n=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_assignment_is_nearest_open_station(self, seed, n):
        """After the greedy's defections settle, every demand sits at its
        nearest open station (otherwise a defection was missed)."""
        demands = demand_points_from_stream(random_stream(seed, n))
        res = offline_placement(demands, constant_facility_cost(800.0))
        for d, a in zip(res.demands, res.assignment):
            best = min(d.location.distance_to(s) for s in res.stations)
            assert d.location.distance_to(res.stations[a]) == pytest.approx(best)


class TestOnlineKmeansInvariants:
    @given(seed=seeds, n=stream_sizes, k=st.integers(min_value=1, max_value=8))
    @settings(max_examples=30, deadline=None)
    def test_structure(self, seed, n, k):
        stream = random_stream(seed, n)
        res = online_kmeans_placement(
            stream, k=k, facility_cost=constant_facility_cost(1000.0),
            rng=np.random.default_rng(seed),
        )
        check_result(res, n)
        assert res.n_stations >= min(n, k + 1) or n <= k + 1


class TestEsharingInvariants:
    @given(seed=seeds, n=stream_sizes)
    @settings(max_examples=25, deadline=None)
    def test_structure(self, seed, n):
        rng = np.random.default_rng(seed)
        anchors = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1000, (3, 2))]
        historical = rng.uniform(0, 1000, (50, 2))
        stream = random_stream(seed + 1, n)
        cost_fn = constant_facility_cost(5000.0)
        res = esharing_placement(
            stream, anchors, cost_fn, historical, np.random.default_rng(seed)
        )
        check_result(res, n)
        # Stations = anchors + online openings (no removals happened).
        assert res.n_stations == 3 + len(res.online_opened)
        # Space cost covers anchors plus every opening.
        assert res.space == pytest.approx(5000.0 * res.n_stations)
        # Opened stations sit exactly at some request destination.
        dests = set(stream)
        for idx in res.online_opened:
            assert res.stations[idx] in dests

    @given(seed=seeds)
    @settings(max_examples=10, deadline=None)
    def test_walking_equals_trace_sum(self, seed):
        rng = np.random.default_rng(seed)
        anchors = [Point(200, 200), Point(800, 800)]
        historical = rng.uniform(0, 1000, (40, 2))
        stream = random_stream(seed + 2, 40)
        from repro.core import EsharingPlanner

        planner = EsharingPlanner(
            anchors, constant_facility_cost(5000.0), historical,
            np.random.default_rng(seed),
        )
        for p in stream:
            planner.offer(p)
        trace_sum = sum(d.walking_cost for d in planner.decisions)
        assert planner.walking == pytest.approx(trace_sum)
