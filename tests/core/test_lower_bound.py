"""Tests for repro.core.lower_bound (Theorem 1 instance)."""

import math

import numpy as np
import pytest

from repro.core import (
    THEOREM1_FACILITY_COST,
    competitive_ratio,
    constant_facility_cost,
    meyerson_placement,
    theorem1_offline_optimum,
    theorem1_requests,
)


class TestInstance:
    def test_request_coordinates(self):
        reqs = theorem1_requests(3)
        assert reqs[0].x == pytest.approx(0.5)
        assert reqs[1].x == pytest.approx(0.25)
        assert reqs[2].y == pytest.approx(0.125)

    def test_n_must_be_positive(self):
        with pytest.raises(ValueError):
            theorem1_requests(0)
        with pytest.raises(ValueError):
            theorem1_offline_optimum(0)

    def test_offline_optimum_formula(self):
        # 2 + sqrt(2) - sqrt(2) * 2^-n
        assert theorem1_offline_optimum(1) == pytest.approx(2 + math.sqrt(2) / 2)
        assert theorem1_offline_optimum(50) == pytest.approx(2 + math.sqrt(2), rel=1e-9)

    def test_offline_optimum_monotone_bounded(self):
        vals = [theorem1_offline_optimum(n) for n in range(1, 30)]
        assert all(a < b for a, b in zip(vals, vals[1:]))
        assert vals[-1] < 2 + math.sqrt(2)

    def test_each_walking_distance_below_f(self):
        # The proof's premise: walking to origin is cheaper than opening.
        for p in theorem1_requests(20):
            assert math.hypot(p.x, p.y) < THEOREM1_FACILITY_COST


class TestOnlineStruggles:
    def test_meyerson_ratio_above_one(self):
        reqs = theorem1_requests(25)
        res = meyerson_placement(
            reqs, constant_facility_cost(THEOREM1_FACILITY_COST), np.random.default_rng(0)
        )
        assert competitive_ratio(res, 25) > 1.0

    def test_ratio_depends_on_randomness(self):
        reqs = theorem1_requests(25)
        ratios = set()
        for seed in range(5):
            res = meyerson_placement(
                reqs, constant_facility_cost(THEOREM1_FACILITY_COST),
                np.random.default_rng(seed),
            )
            ratios.add(round(competitive_ratio(res, 25), 6))
        assert len(ratios) > 1
