"""Tests for repro.core.streaming (the Fig. 3 service + footnote 2)."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    PlacementService,
    constant_facility_cost,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import Point


def make_trip(i, start, end):
    return TripRecord(
        order_id=i, user_id=i, bike_id=0, bike_type=1,
        start_time=datetime(2017, 5, 10, 8) + timedelta(minutes=i),
        start=start, end=end,
    )


@pytest.fixture
def service():
    anchors = [Point(0, 0), Point(1000, 0), Point(2000, 0)]
    rng = np.random.default_rng(0)
    historical = np.concatenate(
        [np.asarray([(a.x, a.y) for a in anchors])] * 40
    ) + rng.normal(0, 50, size=(120, 2))
    planner = EsharingPlanner(
        anchors, constant_facility_cost(10_000.0), historical,
        np.random.default_rng(1),
    )
    fleet = Fleet(planner.stations, n_bikes=6, rng=np.random.default_rng(2))
    for b in fleet.bikes:
        b.battery.level = 0.9
    return PlacementService(planner, fleet)


class TestConstruction:
    def test_mismatched_layout_rejected(self):
        anchors = [Point(0, 0)]
        planner = EsharingPlanner(
            anchors, constant_facility_cost(1.0), np.zeros((5, 2)),
            np.random.default_rng(0),
        )
        fleet = Fleet([Point(0, 0), Point(1, 1)], n_bikes=2)
        with pytest.raises(ValueError):
            PlacementService(planner, fleet)

    def test_initial_ids(self, service):
        assert service.active_station_ids == [0, 1, 2]
        assert service.station_location(1) == Point(1000, 0)

    def test_unknown_station_id(self, service):
        with pytest.raises(KeyError):
            service.station_location(99)


class TestHandleTrip:
    def test_serves_from_nearest_stocked_station(self, service):
        trip = make_trip(0, Point(950, 10), Point(10, 10))
        response = service.handle_trip(trip)
        assert response.served
        assert response.origin_station == 1
        service.consistency_check()

    def test_unserved_when_fleet_empty(self, service):
        # With no bikes anywhere, every pickup attempt is refused.
        service.fleet.bikes.clear()
        response = service.handle_trip(make_trip(99, Point(0, 0), Point(1, 1)))
        assert not response.served
        assert response.origin_station == -1
        assert response.destination_station == -1

    def test_emptied_station_retires(self, service):
        # Station 2 holds exactly 2 bikes (round robin of 6 over 3).
        assert len(service.fleet.bikes_at(2)) == 2
        r1 = service.handle_trip(make_trip(0, Point(2000, 5), Point(0, 5)))
        assert r1.origin_station == 2
        assert r1.removed_station is None
        r2 = service.handle_trip(make_trip(1, Point(2000, 5), Point(0, 5)))
        assert r2.origin_station == 2
        assert r2.removed_station == 2
        assert 2 not in service.active_station_ids
        assert 2 in service.retired
        service.consistency_check()

    def test_retired_station_not_assigned_for_dropoff(self, service):
        # Retire station 2 as above.
        service.handle_trip(make_trip(0, Point(2000, 5), Point(0, 5)))
        service.handle_trip(make_trip(1, Point(2000, 5), Point(0, 5)))
        # A drop-off request right at the retired location must not be
        # assigned to it (it is out of P) — either a new station opens
        # there or it walks to an active one.
        response = service.handle_trip(make_trip(2, Point(0, 5), Point(2000, 0)))
        assert response.destination_station != 2
        service.consistency_check()

    def test_location_can_reopen_later(self, service):
        """Footnote 2: the algorithm can still establish a station at the
        emptied location depending on later requests."""
        service.handle_trip(make_trip(0, Point(2000, 5), Point(0, 5)))
        service.handle_trip(make_trip(1, Point(2000, 5), Point(0, 5)))
        assert 2 in service.retired
        # Hammer the retired location with drop-offs; Algorithm 2's
        # opening coin flip should eventually open a station nearby.
        reopened = False
        for i in range(60):
            r = service.handle_trip(make_trip(10 + i, Point(0, 5), Point(2000, 0)))
            if r.opened_new and service.station_location(
                r.destination_station
            ).distance_to(Point(2000, 0)) < 300:
                reopened = True
                break
        assert reopened
        service.consistency_check()

    def test_opened_station_gets_stable_id(self, service):
        opened_ids = []
        for i in range(40):
            r = service.handle_trip(make_trip(i, Point(0, 5), Point(1500, 800)))
            if r.opened_new:
                opened_ids.append(r.destination_station)
        if not opened_ids:
            pytest.skip("no online opening with this seed")
        assert all(oid >= 3 for oid in opened_ids)
        service.consistency_check()

    def test_responses_recorded(self, service):
        for i in range(5):
            service.handle_trip(make_trip(i, Point(0, 5), Point(1000, 5)))
        assert len(service.responses) == 5


class TestStateDriftGuards:
    """Invariant guards raise typed errors (assert would vanish under -O)."""

    def test_rack_count_drift_detected(self, service):
        from repro.errors import StateDriftError

        service.fleet.stations.append(Point(9999.0, 9999.0))
        with pytest.raises(StateDriftError, match="racks"):
            service.consistency_check()

    def test_location_divergence_detected(self, service):
        from repro.errors import StateDriftError

        service.fleet.stations[0] = Point(123.0, 456.0)
        with pytest.raises(StateDriftError, match="diverged"):
            service.consistency_check()

    def test_zombie_retired_id_detected(self, service):
        from repro.errors import StateDriftError

        service.retired.append(0)  # id 0 is still active in the planner
        with pytest.raises(StateDriftError, match="retired"):
            service.consistency_check()

    def test_state_drift_error_is_runtime_error(self):
        from repro.errors import StateDriftError

        assert issubclass(StateDriftError, RuntimeError)
        assert not issubclass(StateDriftError, AssertionError)
