"""Tests for Meyerson online facility location and online k-means."""

import numpy as np
import pytest

from repro.core import (
    constant_facility_cost,
    meyerson_placement,
    offline_placement,
    online_kmeans_placement,
    demand_points_from_stream,
)
from repro.geo import Point


def uniform_stream(seed, n, extent=1000.0):
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0, extent, size=(n, 2))
    return [Point(float(x), float(y)) for x, y in xy]


class TestMeyerson:
    def test_empty_stream(self):
        res = meyerson_placement([], constant_facility_cost(10.0), np.random.default_rng(0))
        assert res.n_stations == 0
        assert res.total == 0.0

    def test_first_request_always_opens(self):
        res = meyerson_placement(
            [Point(5, 5)], constant_facility_cost(10.0), np.random.default_rng(0)
        )
        assert res.n_stations == 1
        assert res.stations[0] == Point(5, 5)
        assert res.walking == 0.0

    def test_duplicate_requests_never_reopen(self):
        stream = [Point(5, 5)] * 50
        res = meyerson_placement(stream, constant_facility_cost(10.0), np.random.default_rng(0))
        assert res.n_stations == 1
        assert res.walking == 0.0

    def test_assignment_trace_complete(self):
        stream = uniform_stream(0, 80)
        res = meyerson_placement(stream, constant_facility_cost(5000.0), np.random.default_rng(1))
        assert len(res.assignment) == 80
        assert all(0 <= a < res.n_stations for a in res.assignment)

    def test_space_cost_counts_openings(self):
        stream = uniform_stream(1, 100)
        res = meyerson_placement(stream, constant_facility_cost(5000.0), np.random.default_rng(2))
        assert res.space == pytest.approx(5000.0 * res.n_stations)
        assert len(res.online_opened) == res.n_stations

    def test_zero_facility_cost_opens_everything(self):
        stream = uniform_stream(2, 30)
        res = meyerson_placement(stream, constant_facility_cost(0.0), np.random.default_rng(3))
        assert res.n_stations == 30

    def test_initial_stations_used(self):
        stream = [Point(0, 0)] * 10
        res = meyerson_placement(
            stream,
            constant_facility_cost(100.0),
            np.random.default_rng(4),
            initial_stations=[Point(0, 0)],
        )
        assert res.n_stations == 1
        assert res.walking == 0.0
        assert res.space == 100.0

    def test_opens_more_than_offline(self):
        """The Fig. 4 observation: Meyerson over-opens vs Algorithm 1."""
        counts_on, counts_off = [], []
        for seed in range(8):
            stream = uniform_stream(seed + 10, 100)
            cost_fn = constant_facility_cost(5000.0)
            on = meyerson_placement(stream, cost_fn, np.random.default_rng(seed))
            off = offline_placement(demand_points_from_stream(stream), cost_fn)
            counts_on.append(on.n_stations)
            counts_off.append(off.n_stations)
        assert np.mean(counts_on) > np.mean(counts_off)

    def test_total_cost_worse_than_offline(self):
        """Fig. 4: online total cost exceeds the offline near-optimum."""
        totals_on, totals_off = [], []
        for seed in range(8):
            stream = uniform_stream(seed + 30, 100)
            cost_fn = constant_facility_cost(5000.0)
            totals_on.append(
                meyerson_placement(stream, cost_fn, np.random.default_rng(seed)).total
            )
            totals_off.append(
                offline_placement(demand_points_from_stream(stream), cost_fn).total
            )
        assert np.mean(totals_on) > np.mean(totals_off)


class TestOnlineKmeans:
    def test_empty_stream(self):
        res = online_kmeans_placement(
            [], k=3, facility_cost=constant_facility_cost(1.0), rng=np.random.default_rng(0)
        )
        assert res.n_stations == 0

    def test_k_must_be_positive(self):
        with pytest.raises(ValueError):
            online_kmeans_placement(
                [Point(0, 0)], k=0,
                facility_cost=constant_facility_cost(1.0), rng=np.random.default_rng(0),
            )

    def test_warmup_opens_first_k_plus_one(self):
        stream = uniform_stream(0, 50)
        res = online_kmeans_placement(
            stream, k=5, facility_cost=constant_facility_cost(100.0),
            rng=np.random.default_rng(1),
        )
        # First 6 points are centres by construction.
        assert res.stations[:6] == stream[:6]
        assert all(res.assignment[t] == t for t in range(6))

    def test_short_stream_all_centres(self):
        stream = uniform_stream(1, 4)
        res = online_kmeans_placement(
            stream, k=5, facility_cost=constant_facility_cost(100.0),
            rng=np.random.default_rng(2),
        )
        assert res.n_stations == 4
        assert res.walking == 0.0

    def test_coincident_warmup_does_not_crash(self):
        stream = [Point(1, 1)] * 10 + uniform_stream(3, 10)
        res = online_kmeans_placement(
            stream, k=3, facility_cost=constant_facility_cost(100.0),
            rng=np.random.default_rng(3),
        )
        assert res.n_stations >= 1

    def test_opens_most_stations_of_all(self):
        """Table V shape: online k-means opens even more than Meyerson."""
        meyer, okm = [], []
        for seed in range(8):
            stream = uniform_stream(seed + 60, 120)
            cost_fn = constant_facility_cost(5000.0)
            off_k = max(
                1,
                offline_placement(demand_points_from_stream(stream), cost_fn).n_stations,
            )
            meyer.append(
                meyerson_placement(stream, cost_fn, np.random.default_rng(seed)).n_stations
            )
            okm.append(
                online_kmeans_placement(
                    stream, k=off_k, facility_cost=cost_fn, rng=np.random.default_rng(seed)
                ).n_stations
            )
        assert np.mean(okm) > np.mean(meyer)

    def test_assignment_valid(self):
        stream = uniform_stream(9, 100)
        res = online_kmeans_placement(
            stream, k=4, facility_cost=constant_facility_cost(5000.0),
            rng=np.random.default_rng(4),
        )
        assert len(res.assignment) == 100
        assert all(0 <= a < res.n_stations for a in res.assignment)
