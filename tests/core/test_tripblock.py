"""TripBlock: exact scalar↔columnar round trips and slicing semantics."""

from datetime import datetime, timedelta, timezone

import numpy as np
import pytest

from repro.core.tripblock import EPOCH, TripBlock, datetime_to_us, us_to_datetime
from repro.datasets import TripRecord
from repro.geo import Point

T0 = datetime(2017, 5, 10)


def make_trips(n, seed=0):
    rng = np.random.default_rng(seed)
    trips = []
    for i in range(n):
        battery = None
        if i % 3 == 1:
            battery = float(rng.uniform(0.0, 1.0))
        elif i % 3 == 2:
            battery = float("nan")  # present-but-garbage: distinct from None
        trips.append(
            TripRecord(
                order_id=i,
                user_id=i % 7,
                bike_id=i % 5,
                bike_type=1 + i % 2,
                start_time=T0 + timedelta(seconds=30.0 * i, microseconds=i % 997),
                start=Point(*rng.uniform(0.0, 2000.0, 2)),
                end=Point(*rng.uniform(0.0, 2000.0, 2)),
                geodesic_m=float(rng.uniform(0.0, 5000.0)) if i % 2 else None,
                battery=battery,
            )
        )
    return trips


class TestTimeline:
    def test_datetime_us_bijection_microsecond_resolution(self):
        moments = [
            EPOCH,
            datetime(2017, 5, 10, 23, 59, 59, 999999),
            datetime(1969, 12, 31, 23, 59, 59, 1),  # pre-epoch: negative µs
            datetime(2262, 1, 1, 0, 0, 0, 123456),
        ]
        for m in moments:
            assert us_to_datetime(datetime_to_us(m)) == m

    def test_timezone_aware_refused(self):
        aware = datetime(2017, 5, 10, tzinfo=timezone.utc)
        with pytest.raises(ValueError, match="timezone-aware"):
            datetime_to_us(aware)
        trip = make_trips(1)[0]
        bad = TripRecord(
            order_id=trip.order_id, user_id=trip.user_id, bike_id=trip.bike_id,
            bike_type=trip.bike_type, start_time=aware,
            start=trip.start, end=trip.end,
        )
        with pytest.raises(ValueError, match="timezone-aware"):
            TripBlock.from_trips([bad])

    def test_integer_diff_equals_timedelta_seconds(self):
        a = datetime(2017, 5, 10, 8, 0, 0, 250000)
        b = datetime(2017, 5, 10, 9, 30, 59, 750001)
        us = datetime_to_us(b) - datetime_to_us(a)
        assert us / 1e6 == (b - a).total_seconds()


class TestRoundTrip:
    def test_from_trips_to_trips_is_exact(self):
        trips = make_trips(31, seed=3)
        block = TripBlock.from_trips(trips)
        back = block.to_trips()
        assert len(back) == len(trips)
        for orig, got in zip(trips, back):
            # NaN battery breaks dataclass ==; compare field by field.
            assert got.order_id == orig.order_id
            assert got.user_id == orig.user_id
            assert got.bike_id == orig.bike_id
            assert got.bike_type == orig.bike_type
            assert got.start_time == orig.start_time
            assert (got.start.x, got.start.y) == (orig.start.x, orig.start.y)
            assert (got.end.x, got.end.y) == (orig.end.x, orig.end.y)
            assert got.geodesic_m == orig.geodesic_m
            if orig.battery is None:
                assert got.battery is None
            elif np.isnan(orig.battery):
                assert got.battery is not None and np.isnan(got.battery)
            else:
                assert got.battery == orig.battery

    def test_none_and_nan_battery_stay_distinct(self):
        trips = make_trips(9, seed=1)
        block = TripBlock.from_trips(trips)
        for i, trip in enumerate(trips):
            assert bool(block.has_battery[i]) == (trip.battery is not None)
        back = block.to_trips()
        absent = [i for i, t in enumerate(trips) if t.battery is None]
        present_nan = [
            i for i, t in enumerate(trips)
            if t.battery is not None and np.isnan(t.battery)
        ]
        assert absent and present_nan  # the fixture covers both cases
        for i in absent:
            assert back[i].battery is None
        for i in present_nan:
            assert back[i].battery is not None and np.isnan(back[i].battery)

    def test_single_trip_accessor_matches_to_trips(self):
        trips = make_trips(7, seed=2)
        block = TripBlock.from_trips(trips)
        materialised = block.to_trips()
        for i in range(len(trips)):
            assert block.trip(i) == materialised[i] or (
                # NaN battery rows: compare everything except the NaN
                materialised[i].order_id == block.trip(i).order_id
                and np.isnan(block.trip(i).battery)
            )

    def test_iteration_yields_records(self):
        trips = make_trips(4, seed=5)
        block = TripBlock.from_trips(trips)
        assert [t.order_id for t in block] == [t.order_id for t in trips]

    def test_empty(self):
        block = TripBlock.empty()
        assert len(block) == 0
        assert block.to_trips() == []
        assert TripBlock.from_trips([]).start_us.dtype == np.int64


class TestSlicing:
    def test_slice_is_zero_copy_view(self):
        block = TripBlock.from_trips(make_trips(12, seed=4))
        view = block[2:8]
        assert len(view) == 6
        assert view.start_us.base is block.start_us or (
            view.start_us.base is block.start_us.base
        )
        assert np.shares_memory(view.end_x, block.end_x)
        assert view.trip(0) == block.trip(2) or view.order_id[0] == block.order_id[2]

    def test_int_index_materialises_one_trip(self):
        block = TripBlock.from_trips(make_trips(5, seed=6))
        assert block[3].order_id == int(block.order_id[3])

    def test_take_copies_in_given_order(self):
        block = TripBlock.from_trips(make_trips(10, seed=7))
        sub = block.take([4, 1, 9])
        assert list(sub.order_id) == [4, 1, 9]
        assert not np.shares_memory(sub.start_x, block.start_x)

    def test_concat_preserves_order_and_masks(self):
        trips = make_trips(15, seed=8)
        parts = [
            TripBlock.from_trips(trips[:5]),
            TripBlock.empty(),
            TripBlock.from_trips(trips[5:]),
        ]
        merged = TripBlock.concat(parts)
        assert list(merged.order_id) == [t.order_id for t in trips]
        ref = TripBlock.from_trips(trips)
        for name in TripBlock.__slots__:
            assert np.array_equal(
                getattr(merged, name), getattr(ref, name), equal_nan=True
            ), name

    def test_sorted_by_time_matches_stable_record_sort(self):
        trips = make_trips(20, seed=9)
        # Shuffle, with deliberate timestamp ties to exercise stability.
        rng = np.random.default_rng(0)
        shuffled = [trips[i] for i in rng.permutation(len(trips))]
        tied = shuffled + shuffled[:5]
        block = TripBlock.from_trips(tied).sorted_by_time()
        want = sorted(tied, key=lambda r: r.start_time)
        assert [t.order_id for t in block.to_trips()] == [t.order_id for t in want]

    def test_length_mismatch_rejected(self):
        block = TripBlock.from_trips(make_trips(3, seed=10))
        with pytest.raises(ValueError, match="column"):
            TripBlock(
                block.order_id, block.user_id, block.bike_id, block.bike_type,
                block.start_us[:2],  # wrong length
                block.start_x, block.start_y, block.end_x, block.end_y,
            )
