"""Tests for repro.core.penalty (Eqs. 6-8, Fig. 5, Section V-C rule)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core import (
    PENALTY_REGISTRY,
    NoPenalty,
    TypeIPenalty,
    TypeIIPenalty,
    TypeIIIPenalty,
    select_penalty,
)

costs = st.floats(min_value=0.0, max_value=5000.0, allow_nan=False)
ALL_TYPES = [TypeIPenalty, TypeIIPenalty, TypeIIIPenalty, NoPenalty]


class TestCommonProperties:
    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_zero_cost_no_penalty(self, cls):
        assert cls(tolerance=200.0).value(0.0) == pytest.approx(1.0)

    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_negative_cost_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(tolerance=200.0).value(-1.0)

    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_bad_tolerance_rejected(self, cls):
        with pytest.raises(ValueError):
            cls(tolerance=0.0)

    @pytest.mark.parametrize("cls", ALL_TYPES)
    @given(c=costs)
    def test_value_in_unit_interval(self, cls, c):
        g = cls(tolerance=200.0).value(c)
        assert 0.0 <= g <= 1.0

    @pytest.mark.parametrize("cls", [TypeIPenalty, TypeIIPenalty, TypeIIIPenalty])
    @given(c1=costs, c2=costs)
    def test_monotone_nonincreasing(self, cls, c1, c2):
        p = cls(tolerance=200.0)
        lo, hi = min(c1, c2), max(c1, c2)
        assert p.value(lo) >= p.value(hi) - 1e-12

    @pytest.mark.parametrize("cls", ALL_TYPES)
    def test_derivative_matches_numerical(self, cls):
        p = cls(tolerance=200.0)
        eps = 1e-5
        for c in (10.0, 100.0, 150.0, 500.0):
            numeric = (p.value(c + eps) - p.value(c - eps)) / (2 * eps)
            assert p.derivative(c) == pytest.approx(numeric, abs=1e-6)

    def test_with_tolerance(self):
        p = TypeIIPenalty(tolerance=100.0).with_tolerance(400.0)
        assert isinstance(p, TypeIIPenalty)
        assert p.tolerance == 400.0


class TestShapeDistinctions:
    """Fig. 5: II plunges fastest, I declines modestly, III in between."""

    def test_type_ii_zero_beyond_tolerance(self):
        p = TypeIIPenalty(tolerance=200.0)
        assert p.value(200.0) == pytest.approx(0.0)
        assert p.value(201.0) == 0.0
        assert p.value(1000.0) == 0.0

    def test_type_i_maintains_tail_beyond_3L(self):
        p = TypeIPenalty(tolerance=200.0)
        assert p.value(3 * 200.0) > 0.2

    def test_type_iii_between_i_and_ii_at_midrange(self):
        L = 200.0
        c = 1.5 * L
        g1 = TypeIPenalty(tolerance=L).value(c)
        g2 = TypeIIPenalty(tolerance=L).value(c)
        g3 = TypeIIIPenalty(tolerance=L).value(c)
        assert g2 < g3 < g1

    def test_type_iii_gaussian_value(self):
        p = TypeIIIPenalty(tolerance=200.0)
        assert p.value(200.0) == pytest.approx(math.exp(-1.0))

    def test_type_i_halves_at_L(self):
        assert TypeIPenalty(tolerance=200.0).value(200.0) == pytest.approx(0.5)

    def test_type_ii_steepest_initial_decline(self):
        L = 200.0
        d1 = TypeIPenalty(tolerance=L).derivative(L * 0.5)
        d2 = TypeIIPenalty(tolerance=L).derivative(L * 0.5)
        # At mid-tolerance the linear cut-off falls faster than Type I.
        assert d2 < d1 < 0


class TestRegistryAndSelection:
    def test_registry_complete(self):
        assert set(PENALTY_REGISTRY) == {"type_i", "type_ii", "type_iii", "no_penalty"}

    def test_registry_constructs_with_tolerance(self):
        p = PENALTY_REGISTRY["type_iii"](150.0)
        assert p.tolerance == 150.0
        assert p.name == "type_iii"

    def test_select_very_similar_gives_type_ii(self):
        assert select_penalty(97.0).name == "type_ii"

    def test_select_similar_gives_type_iii(self):
        assert select_penalty(90.0).name == "type_iii"
        assert select_penalty(80.0).name == "type_iii"
        assert select_penalty(95.0).name == "type_iii"

    def test_select_less_similar_gives_type_i(self):
        assert select_penalty(60.0).name == "type_i"
        assert select_penalty(79.9).name == "type_i"

    def test_select_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            select_penalty(101.0)
        with pytest.raises(ValueError):
            select_penalty(-5.0)

    def test_select_passes_tolerance(self):
        assert select_penalty(50.0, tolerance=333.0).tolerance == 333.0
