"""Randomized parity: the lazy-greedy offline solver vs the reference.

The lazy solver must reproduce the per-round full-rescan reference bit
for bit — same stations in the same order, same assignment, same walking
and space totals — across weights, duplicate candidate points, exact
ratio ties and separate candidate sets.  The blocked connection-cost
path must match the dense one too.
"""

import numpy as np
import pytest

from repro.core import DemandPoint, constant_facility_cost, uniform_facility_cost
from repro.core.offline import DEFAULT_BLOCK_ELEMS, offline_placement
from repro.geo import Point


def _identical(a, b):
    assert a.stations == b.stations
    assert a.assignment == b.assignment
    assert a.walking == b.walking
    assert a.space == b.space
    assert a.online_opened == b.online_opened


def _random_instance(seed):
    """A randomized instance exercising the tie-break hazards.

    Duplicated demand points create exact star-ratio ties; integer
    coordinates create distance ties; mixed weights and facility costs
    vary which candidate wins each round.
    """
    rng = np.random.default_rng(seed)
    n = int(rng.integers(5, 120))
    if rng.uniform() < 0.5:  # integer grid -> frequent exact distance ties
        coords = rng.integers(0, 12, size=(n, 2)).astype(float)
    else:
        coords = rng.uniform(0, 2_000.0, size=(n, 2))
    # Duplicate a slice of points to force exact ratio ties.
    n_dup = int(rng.integers(0, max(2, n // 3)))
    for i in range(n_dup):
        coords[int(rng.integers(0, n))] = coords[int(rng.integers(0, n))]
    if rng.uniform() < 0.5:
        weights = np.ones(n)
    else:
        weights = rng.integers(1, 6, size=n).astype(float)
    demands = [
        DemandPoint(Point(float(x), float(y)), float(w))
        for (x, y), w in zip(coords, weights)
    ]
    if rng.uniform() < 0.7:
        cost_fn = constant_facility_cost(float(rng.uniform(50.0, 5_000.0)))
    else:
        cost_fn = uniform_facility_cost(
            float(rng.uniform(100.0, 3_000.0)), np.random.default_rng(seed + 1)
        )
    candidates = None
    if rng.uniform() < 0.3:  # separate candidate set
        c = rng.uniform(0, 2_000.0, size=(int(rng.integers(4, 40)), 2))
        candidates = [Point(float(x), float(y)) for x, y in c]
    return demands, cost_fn, candidates


@pytest.mark.parametrize("seed", range(24))
def test_lazy_matches_reference(seed):
    demands, cost_fn, candidates = _random_instance(seed)
    ref = offline_placement(demands, cost_fn, candidates, strategy="reference")
    lazy = offline_placement(demands, cost_fn, candidates, strategy="lazy")
    _identical(ref, lazy)


@pytest.mark.parametrize("seed", (0, 7, 13))
def test_blocked_connection_costs_match_dense(seed):
    """Tiny block sizes force the row-cached path; results must not move."""
    demands, cost_fn, candidates = _random_instance(seed)
    dense = offline_placement(
        demands, cost_fn, candidates, block_elems=DEFAULT_BLOCK_ELEMS
    )
    for block in (1, 7, 64):
        blocked = offline_placement(
            demands, cost_fn, candidates, block_elems=block
        )
        _identical(dense, blocked)


def test_unknown_strategy_rejected():
    demands = [DemandPoint(Point(0.0, 0.0))]
    with pytest.raises(ValueError, match="strategy"):
        offline_placement(demands, constant_facility_cost(1.0), strategy="magic")


@pytest.mark.parametrize("strategy", ("reference", "lazy"))
def test_no_finite_star_raises(strategy):
    """An infinite facility cost everywhere leaves no finite-ratio star;
    both strategies must fail loudly instead of indexing ``is_open[-1]``."""
    demands = [DemandPoint(Point(float(i), 0.0)) for i in range(4)]
    with pytest.raises(RuntimeError, match="finite"):
        offline_placement(
            demands, constant_facility_cost(float("inf")), strategy=strategy
        )
