"""Tests for repro.core.offline (the 1.61-factor greedy, Algorithm 1)."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import (
    DemandPoint,
    constant_facility_cost,
    evaluate_placement,
    offline_placement,
)
from repro.geo import Point


def uniform_demands(seed, n, extent=1000.0):
    rng = np.random.default_rng(seed)
    xy = rng.uniform(0, extent, size=(n, 2))
    return [DemandPoint(Point(float(x), float(y))) for x, y in xy]


def brute_force_optimum(demands, facility_cost):
    """Exact optimum by enumerating candidate subsets (tiny instances)."""
    candidates = [d.location for d in demands]
    best = float("inf")
    for r in range(1, len(candidates) + 1):
        for subset in itertools.combinations(range(len(candidates)), r):
            stations = [candidates[i] for i in subset]
            res = evaluate_placement(demands, stations, facility_cost)
            best = min(best, res.total)
    return best


class TestBasics:
    def test_empty_demand(self):
        res = offline_placement([], constant_facility_cost(10.0))
        assert res.n_stations == 0
        assert res.total == 0.0

    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            offline_placement(
                [DemandPoint(Point(0, 0))], constant_facility_cost(1.0), candidates=[]
            )

    def test_single_demand_opens_there(self):
        res = offline_placement([DemandPoint(Point(3, 4))], constant_facility_cost(10.0))
        assert res.n_stations == 1
        assert res.stations[0] == Point(3, 4)
        assert res.walking == 0.0
        assert res.space == 10.0

    def test_assignment_valid(self):
        demands = uniform_demands(0, 30)
        res = offline_placement(demands, constant_facility_cost(500.0))
        assert len(res.assignment) == 30
        assert all(0 <= a < res.n_stations for a in res.assignment)

    def test_every_station_serves_someone(self):
        demands = uniform_demands(1, 40)
        res = offline_placement(demands, constant_facility_cost(500.0))
        assert set(res.assignment) == set(range(res.n_stations))

    def test_walking_cost_consistent_with_assignment(self):
        demands = uniform_demands(2, 25)
        res = offline_placement(demands, constant_facility_cost(300.0))
        manual = sum(
            d.weight * d.location.distance_to(res.stations[a])
            for d, a in zip(demands, res.assignment)
        )
        assert res.walking == pytest.approx(manual)


class TestCostTradeoffs:
    def test_cheap_facilities_open_everywhere(self):
        demands = uniform_demands(3, 20)
        res = offline_placement(demands, constant_facility_cost(0.001))
        assert res.n_stations == 20
        assert res.walking == pytest.approx(0.0, abs=0.1)

    def test_expensive_facilities_open_one(self):
        demands = uniform_demands(4, 20, extent=100.0)
        res = offline_placement(demands, constant_facility_cost(1e9))
        assert res.n_stations == 1

    def test_station_count_monotone_in_cost(self):
        demands = uniform_demands(5, 60)
        counts = [
            offline_placement(demands, constant_facility_cost(f)).n_stations
            for f in (10.0, 1_000.0, 100_000.0)
        ]
        assert counts[0] >= counts[1] >= counts[2]

    def test_two_clusters_two_stations(self):
        cluster_a = [DemandPoint(Point(float(i), 0.0)) for i in range(5)]
        cluster_b = [DemandPoint(Point(float(i) + 10_000.0, 0.0)) for i in range(5)]
        res = offline_placement(cluster_a + cluster_b, constant_facility_cost(100.0))
        assert res.n_stations == 2

    def test_weights_pull_station(self):
        # A heavy demand point should host the station.
        demands = [
            DemandPoint(Point(0, 0), weight=100.0),
            DemandPoint(Point(100, 0), weight=1.0),
        ]
        res = offline_placement(demands, constant_facility_cost(1_000.0))
        assert res.n_stations == 1
        assert res.stations[0] == Point(0, 0)


class TestApproximationQuality:
    @pytest.mark.parametrize("seed", range(6))
    def test_within_1_61_of_bruteforce(self, seed):
        demands = uniform_demands(seed + 100, 7, extent=200.0)
        cost_fn = constant_facility_cost(150.0)
        greedy = offline_placement(demands, cost_fn).total
        optimum = brute_force_optimum(demands, cost_fn)
        assert greedy <= optimum * 1.61 + 1e-6
        assert greedy >= optimum - 1e-6

    def test_beats_naive_all_open(self):
        demands = uniform_demands(200, 40)
        cost_fn = constant_facility_cost(2_000.0)
        greedy = offline_placement(demands, cost_fn).total
        all_open = evaluate_placement(
            demands, [d.location for d in demands], cost_fn
        ).total
        assert greedy < all_open

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_total_is_walking_plus_space(self, seed):
        demands = uniform_demands(seed, 15)
        res = offline_placement(demands, constant_facility_cost(500.0))
        assert res.total == pytest.approx(res.walking + res.space)
        assert res.n_stations >= 1


class TestCustomCandidates:
    def test_candidates_restrict_locations(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(10, 0))]
        candidates = [Point(5, 0)]
        res = offline_placement(demands, constant_facility_cost(1.0), candidates=candidates)
        assert res.stations == [Point(5, 0)]
        assert res.walking == pytest.approx(10.0)
