"""Surge scenarios: pulse algebra, event rewrites, vector/scalar parity."""

from datetime import datetime

import numpy as np
import pytest

from repro.core.tripblock import TripBlock, datetime_to_us
from repro.geo import BoundingBox
from repro.loadgen import (
    RatePulse,
    SCENARIOS,
    ScenarioSchedule,
    ScheduledEvent,
    make_scenario,
)
from repro.loadgen.scenarios import DEFAULT_T0

BOX = BoundingBox(0.0, 0.0, 2000.0, 2000.0)
T0_US = datetime_to_us(DEFAULT_T0)
DURATION = 3600.0


def make_block(n, seed=0, duration_s=DURATION):
    """Random rows spread uniformly over the scenario's full window."""
    rng = np.random.default_rng(seed)
    idx = np.arange(n, dtype=np.int64)
    return TripBlock(
        order_id=idx,
        user_id=idx % 50,
        bike_id=idx % 60,
        bike_type=np.ones(n, dtype=np.int64),
        start_us=T0_US
        + np.sort(rng.integers(0, int(duration_s * 1e6), n, dtype=np.int64)),
        start_x=rng.uniform(BOX.min_x, BOX.max_x, n),
        start_y=rng.uniform(BOX.min_y, BOX.max_y, n),
        end_x=rng.uniform(BOX.min_x, BOX.max_x, n),
        end_y=rng.uniform(BOX.min_y, BOX.max_y, n),
    )


class TestPulseValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(start_s=10.0, end_s=10.0, multiplier=2.0),
            dict(start_s=20.0, end_s=10.0, multiplier=2.0),
            dict(start_s=0.0, end_s=10.0, multiplier=-1.0),
            dict(start_s=0.0, end_s=10.0, multiplier=2.0, direction="sideways"),
            dict(start_s=0.0, end_s=10.0, multiplier=2.0, center=(1.0, 1.0)),
        ],
    )
    def test_rate_pulse_rejects(self, kwargs):
        with pytest.raises(ValueError):
            RatePulse(**kwargs)

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(kind="earthquake", start_s=0.0, end_s=10.0, x=0, y=0, radius_m=5.0),
            dict(kind="surge", start_s=10.0, end_s=10.0, x=0, y=0, radius_m=5.0),
            dict(kind="surge", start_s=0.0, end_s=10.0, x=0, y=0, radius_m=0.0),
            dict(
                kind="surge",
                start_s=0.0,
                end_s=10.0,
                x=0,
                y=0,
                radius_m=5.0,
                intensity=1.5,
            ),
        ],
    )
    def test_scheduled_event_rejects(self, kwargs):
        with pytest.raises(ValueError):
            ScheduledEvent(**kwargs)


class TestRateMultiplier:
    def setup_method(self):
        # 2x2 zone centres: (0,0) is "inside" the focus, the rest outside
        self.zx = np.array([0.0, 100.0, 0.0, 100.0])
        self.zy = np.array([0.0, 0.0, 100.0, 100.0])

    def schedule(self, *pulses):
        return ScenarioSchedule(t0=DEFAULT_T0, bounds=BOX, pulses=tuple(pulses))

    def test_inactive_window_returns_scalar_one(self):
        sched = self.schedule(RatePulse(100.0, 200.0, 5.0))
        assert sched.rate_multiplier(50.0, self.zx, self.zy) == 1.0
        assert sched.rate_multiplier(200.0, self.zx, self.zy) == 1.0  # half-open

    def test_global_pulse_scales_everything(self):
        sched = self.schedule(RatePulse(0.0, 100.0, 0.05))
        factor = sched.rate_multiplier(50.0, self.zx, self.zy)
        assert np.all(factor == 0.05)

    def test_inbound_pulse_scales_only_outside_to_inside(self):
        pulse = RatePulse(
            0.0, 100.0, 10.0, center=(0.0, 0.0), radius_m=10.0, direction="inbound"
        )
        factor = self.schedule(pulse).rate_multiplier(50.0, self.zx, self.zy)
        inside = np.array([True, False, False, False])
        expect = np.ones((4, 4))
        expect[np.ix_(~inside, inside)] = 10.0
        assert np.array_equal(factor, expect)

    def test_outbound_pulse_scales_only_inside_to_outside(self):
        pulse = RatePulse(
            0.0, 100.0, 10.0, center=(0.0, 0.0), radius_m=10.0, direction="outbound"
        )
        factor = self.schedule(pulse).rate_multiplier(50.0, self.zx, self.zy)
        inside = np.array([True, False, False, False])
        expect = np.ones((4, 4))
        expect[np.ix_(inside, ~inside)] = 10.0
        assert np.array_equal(factor, expect)

    def test_any_direction_scales_all_flows_into_the_focus(self):
        pulse = RatePulse(0.0, 100.0, 10.0, center=(0.0, 0.0), radius_m=10.0)
        factor = self.schedule(pulse).rate_multiplier(50.0, self.zx, self.zy)
        assert np.all(factor[:, 0] == 10.0)
        assert np.all(factor[:, 1:] == 1.0)

    def test_overlapping_pulses_compose_by_multiplication(self):
        sched = self.schedule(
            RatePulse(0.0, 100.0, 2.0), RatePulse(50.0, 150.0, 3.0)
        )
        assert np.all(sched.rate_multiplier(75.0, self.zx, self.zy) == 6.0)


class TestApplyParity:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_vectorized_apply_matches_the_scalar_oracle(self, name):
        sched = make_scenario(name, BOX, DURATION)
        block = make_block(400, seed=11)
        fast = sched.apply(block, np.random.default_rng(99))
        slow = sched.apply_scalar(block, np.random.default_rng(99))
        assert np.array_equal(fast.end_x, slow.end_x)  # bitwise, not approx
        assert np.array_equal(fast.end_y, slow.end_y)
        assert np.array_equal(fast.start_us, block.start_us)
        assert np.array_equal(fast.start_x, block.start_x)

    def test_parity_covers_the_zero_distance_closure_branch(self):
        sched = make_scenario("weather", BOX, DURATION)
        closure = next(e for e in sched.events if e.kind == "closure")
        block = make_block(50, seed=2)
        # park one in-window destination exactly on the closed centre
        mid = (closure.start_s + closure.end_s) / 2.0
        block.start_us[0] = T0_US + int(mid * 1e6)
        block.end_x[0] = closure.x
        block.end_y[0] = closure.y
        fast = sched.apply(block, np.random.default_rng(4))
        slow = sched.apply_scalar(block, np.random.default_rng(4))
        assert np.array_equal(fast.end_x, slow.end_x)
        assert np.array_equal(fast.end_y, slow.end_y)
        # the parked row was pushed just past the rim
        d = float(
            np.sqrt(
                (fast.end_x[0] - closure.x) ** 2 + (fast.end_y[0] - closure.y) ** 2
            )
        )
        assert d == pytest.approx(closure.radius_m * 1.05)

    def test_closure_empties_the_disc(self):
        sched = make_scenario("weather", BOX, DURATION)
        closure = next(e for e in sched.events if e.kind == "closure")
        rewritten = sched.apply(make_block(600, seed=8), np.random.default_rng(1))
        t_s = (rewritten.start_us - T0_US) / 1e6
        window = (t_s >= closure.start_s) & (t_s < closure.end_s)
        d = np.sqrt(
            (rewritten.end_x - closure.x) ** 2 + (rewritten.end_y - closure.y) ** 2
        )
        assert np.any(window)
        assert np.all(d[window] >= closure.radius_m)

    def test_surge_pulls_destinations_toward_the_venue(self):
        sched = make_scenario("stadium", BOX, DURATION)
        event = sched.events[0]
        before = make_block(600, seed=8)
        after = sched.apply(before, np.random.default_rng(1))
        t_s = (before.start_us - T0_US) / 1e6
        window = (t_s >= event.start_s) & (t_s < event.end_s)

        def mean_dist(block):
            return float(
                np.mean(
                    np.sqrt(
                        (block.end_x[window] - event.x) ** 2
                        + (block.end_y[window] - event.y) ** 2
                    )
                )
            )

        assert mean_dist(after) < mean_dist(before)

    def test_no_events_returns_the_same_object(self):
        sched = make_scenario("baseline", BOX, DURATION)
        block = make_block(10)
        rng = np.random.default_rng(0)
        assert sched.apply(block, rng) is block
        # and consumed no entropy
        assert (
            rng.bit_generator.state == np.random.default_rng(0).bit_generator.state
        )


class TestRegistry:
    def test_known_scenarios(self):
        assert set(SCENARIOS) == {"baseline", "festival", "stadium", "weather", "rush"}

    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    def test_every_factory_builds_a_schedule(self, name):
        t0 = datetime(2020, 1, 1)
        sched = make_scenario(name, BOX, 600.0, t0=t0)
        assert sched.t0 == t0 and sched.bounds == BOX
        for pulse in sched.pulses:
            assert 0.0 <= pulse.start_s < pulse.end_s <= 600.0
        for event in sched.events:
            assert 0.0 <= event.start_s < event.end_s <= 600.0

    def test_unknown_name_lists_the_known_ones(self):
        with pytest.raises(ValueError, match="baseline.*stadium"):
            make_scenario("tsunami", BOX, 600.0)

    def test_non_positive_duration_rejected(self):
        with pytest.raises(ValueError):
            make_scenario("baseline", BOX, 0.0)
