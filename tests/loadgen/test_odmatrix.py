"""OD-matrix stream generation: gravity model, emission, routing."""

import numpy as np
import pytest

from repro.core.tripblock import datetime_to_us
from repro.geo import BoundingBox
from repro.loadgen import ODConfig, ODMatrix, TripStream, WaypointRouter, make_scenario
from repro.loadgen.scenarios import DEFAULT_T0

BOX = BoundingBox(0.0, 0.0, 2000.0, 2000.0)
T0_US = datetime_to_us(DEFAULT_T0)


def stream(scenario="baseline", duration_s=1800.0, seed=0, **overrides):
    defaults = dict(
        bounds=BOX, zones_per_side=4, trips_per_hour=1200.0, step_s=60.0
    )
    defaults.update(overrides)
    config = ODConfig(**defaults)
    return TripStream(config, make_scenario(scenario, BOX, duration_s), seed=seed)


class TestODConfigValidation:
    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(zones_per_side=0),
            dict(trips_per_hour=0.0),
            dict(step_s=-1.0),
            dict(low_value_fraction=1.5),
            dict(low_value_fraction=-0.1),
            dict(detour_max=-0.2),
            dict(decay_m=0.0),
            dict(hotspots=-1),
            dict(users=0),
            dict(bikes=0),
        ],
    )
    def test_rejects_bad_shapes(self, kwargs):
        with pytest.raises(ValueError):
            ODConfig(bounds=BOX, **kwargs)


class TestODMatrix:
    def test_rates_sum_to_the_offered_rate(self):
        config = ODConfig(bounds=BOX, zones_per_side=5, trips_per_hour=3600.0)
        matrix = ODMatrix(config, seed=3)
        assert matrix.rates.shape == (25, 25)
        assert np.all(matrix.rates >= 0.0)
        # the whole matrix emits trips_per_hour / 3600 trips per second
        assert matrix.rates.sum() == pytest.approx(1.0)

    def test_zone_centres_tile_the_plane(self):
        config = ODConfig(bounds=BOX, zones_per_side=4)
        matrix = ODMatrix(config, seed=0)
        assert matrix.n_zones == 16
        assert np.all((matrix.zone_x >= BOX.min_x) & (matrix.zone_x <= BOX.max_x))
        assert np.all((matrix.zone_y >= BOX.min_y) & (matrix.zone_y <= BOX.max_y))
        assert matrix.half_x == pytest.approx(2000.0 / 8)


class TestTripStream:
    def test_same_seed_is_bitwise_reproducible(self):
        first = list(stream(seed=42).blocks(1800.0))
        second = list(stream(seed=42).blocks(1800.0))
        assert len(first) == len(second) > 0
        for a, b in zip(first, second):
            assert np.array_equal(a.order_id, b.order_id)
            assert np.array_equal(a.start_us, b.start_us)
            assert np.array_equal(a.end_x, b.end_x)
            assert np.array_equal(a.geodesic_m, b.geodesic_m)

    def test_different_seeds_diverge(self):
        a = stream(seed=1).records(600.0)
        b = stream(seed=2).records(600.0)
        assert [t.start_time for t in a] != [t.start_time for t in b]

    def test_timestamps_sorted_and_order_ids_dense(self):
        blocks = list(stream(seed=5).blocks(1800.0))
        start_us = np.concatenate([b.start_us for b in blocks])
        order_id = np.concatenate([b.order_id for b in blocks])
        assert np.all(np.diff(start_us) >= 0)  # watermark fast path rides this
        assert np.array_equal(order_id, np.arange(order_id.size))
        assert np.all(start_us >= T0_US)

    def test_endpoints_stay_inside_the_plane(self):
        for block in stream("weather", seed=9).blocks(1800.0):
            for col in (block.start_x, block.end_x):
                assert np.all((col >= BOX.min_x) & (col <= BOX.max_x))
            for col in (block.start_y, block.end_y):
                assert np.all((col >= BOX.min_y) & (col <= BOX.max_y))

    def test_low_value_fraction_is_respected(self):
        blocks = list(
            stream(seed=3, low_value_fraction=0.3, trips_per_hour=6000.0).blocks(
                1800.0
            )
        )
        user_id = np.concatenate([b.user_id for b in blocks])
        assert user_id.size > 1000
        low = float(np.mean(user_id < 0))
        assert 0.25 < low < 0.35

    def test_zero_low_value_fraction_marks_nothing(self):
        blocks = list(stream(seed=3, low_value_fraction=0.0).blocks(600.0))
        assert all(np.all(b.user_id >= 0) for b in blocks)


class TestWaypointRouter:
    def test_rejects_negative_detour(self):
        with pytest.raises(ValueError):
            WaypointRouter(detour_max=-0.1)

    def test_route_length_brackets_the_manhattan_distance(self):
        detour_max = 0.2
        blocks = list(stream(seed=7, detour_max=detour_max).blocks(1800.0))
        for block in blocks:
            manhattan = np.abs(block.end_x - block.start_x) + np.abs(
                block.end_y - block.start_y
            )
            assert np.all(block.has_geodesic)
            assert np.all(block.geodesic_m >= manhattan)
            assert np.all(block.geodesic_m <= manhattan * (1.0 + detour_max))

    def test_waypoints_reconstruct_the_rectilinear_route(self):
        router = WaypointRouter()
        trips = stream(seed=7).records(600.0)
        assert trips
        for trip in trips[:200]:
            poly = router.waypoints(trip)
            assert len(poly) == 3
            assert poly[0] == (trip.start.x, trip.start.y)
            assert poly[-1] == (trip.end.x, trip.end.y)
            # the polyline is rectilinear: each leg moves along one axis
            length = 0.0
            for (ax, ay), (bx, by) in zip(poly, poly[1:]):
                assert ax == bx or ay == by
                length += abs(bx - ax) + abs(by - ay)
            manhattan = abs(trip.end.x - trip.start.x) + abs(
                trip.end.y - trip.start.y
            )
            assert length == pytest.approx(manhattan)

    def test_detour_stretch_is_recoverable(self):
        detour_max = 0.3
        trips = stream(seed=7, detour_max=detour_max).records(600.0)
        for trip in trips:
            manhattan = abs(trip.end.x - trip.start.x) + abs(
                trip.end.y - trip.start.y
            )
            if manhattan == 0.0:
                continue
            stretch = trip.geodesic_m / manhattan
            assert 1.0 <= stretch <= 1.0 + detour_max
