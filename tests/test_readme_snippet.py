"""The README quickstart snippet must keep working verbatim.

Mirrors the code block in README.md step by step; if an API change
breaks this test, update the README in the same commit.
"""

import numpy as np


def test_readme_quickstart_snippet():
    from repro.core import (
        DemandPoint,
        offline_placement,
        esharing_placement,
        uniform_facility_cost,
    )
    from repro.datasets import mobike_like_dataset
    from repro.geo import DemandGrid, UniformGrid

    # Reduced volume so the doc test stays fast; structure identical.
    from repro.datasets import SyntheticConfig

    trips = mobike_like_dataset(
        seed=7, days=7,
        config=SyntheticConfig(trips_per_weekday=400, trips_per_weekend_day=300),
    )
    grid = UniformGrid(trips.bounding_box(margin=50.0), cell_size=150.0)
    demand = DemandGrid(grid)
    demand.add_many(r.end for r in trips)
    demands = [DemandPoint(grid.centroid(c), n) for c, n in demand.top_cells(120)]

    cost_fn = uniform_facility_cost(10_000.0, np.random.default_rng(0))
    anchor = offline_placement(demands, cost_fn)

    result = esharing_placement(
        stream=trips.destinations()[:500],
        offline_stations=anchor.stations,
        facility_cost=cost_fn,
        historical=trips.destination_array(),
        rng=np.random.default_rng(1),
    )
    summary = result.summary()
    assert "#parking=" in summary
    assert result.n_stations >= anchor.n_stations
    assert result.total > 0
