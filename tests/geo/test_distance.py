"""Tests for repro.geo.distance."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import (
    LocalProjection,
    Point,
    cross_distances,
    euclidean,
    haversine_m,
    haversine_m_vec,
    nearest_point_index,
    pairwise_distances,
)

lat = st.floats(min_value=-80, max_value=80, allow_nan=False)
lon = st.floats(min_value=-179, max_value=179, allow_nan=False)


class TestEuclidean:
    def test_matches_point_method(self):
        a, b = Point(0, 0), Point(5, 12)
        assert euclidean(a, b) == pytest.approx(a.distance_to(b)) == pytest.approx(13.0)


class TestHaversine:
    def test_zero_distance(self):
        assert haversine_m(39.9, 116.4, 39.9, 116.4) == 0.0

    def test_one_degree_latitude(self):
        # One degree of latitude is ~111.2 km everywhere.
        d = haversine_m(0.0, 0.0, 1.0, 0.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_equator_longitude_degree(self):
        d = haversine_m(0.0, 0.0, 0.0, 1.0)
        assert d == pytest.approx(111_195, rel=0.01)

    def test_symmetry(self):
        assert haversine_m(10, 20, 30, 40) == pytest.approx(haversine_m(30, 40, 10, 20))

    def test_antipodal_does_not_crash(self):
        d = haversine_m(0, 0, 0, 180)
        assert d == pytest.approx(math.pi * 6_371_008.8, rel=0.01)


class TestMatrices:
    def test_pairwise_shape_and_diagonal(self):
        pts = [Point(0, 0), Point(1, 0), Point(0, 1)]
        m = pairwise_distances(pts)
        assert m.shape == (3, 3)
        assert np.allclose(np.diag(m), 0.0)
        assert m[0, 1] == pytest.approx(1.0)
        assert m[1, 2] == pytest.approx(math.sqrt(2))

    def test_pairwise_symmetric(self):
        rng = np.random.default_rng(1)
        pts = [Point(x, y) for x, y in rng.normal(size=(10, 2))]
        m = pairwise_distances(pts)
        assert np.allclose(m, m.T)

    def test_pairwise_empty(self):
        assert pairwise_distances([]).shape == (0, 0)

    def test_cross_distances(self):
        m = cross_distances([Point(0, 0)], [Point(3, 4), Point(0, 1)])
        assert m.shape == (1, 2)
        assert m[0, 0] == pytest.approx(5.0)
        assert m[0, 1] == pytest.approx(1.0)

    def test_cross_empty(self):
        assert cross_distances([], [Point(0, 0)]).shape == (0, 1)


class TestNearest:
    def test_picks_nearest(self):
        idx, d = nearest_point_index(Point(0, 0), [Point(5, 5), Point(1, 0), Point(2, 2)])
        assert idx == 1
        assert d == pytest.approx(1.0)

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            nearest_point_index(Point(0, 0), [])


class TestLocalProjection:
    def test_reference_maps_to_origin(self):
        proj = LocalProjection(39.9, 116.4)
        p = proj.to_plane(39.9, 116.4)
        assert p.x == pytest.approx(0.0, abs=1e-9)
        assert p.y == pytest.approx(0.0, abs=1e-9)

    def test_invalid_latitude_rejected(self):
        with pytest.raises(ValueError):
            LocalProjection(91.0, 0.0)

    @given(lat, lon)
    def test_roundtrip(self, la, lo):
        proj = LocalProjection(la, lo)
        # A point a few km away round-trips through the projection.
        p = proj.to_plane(la + 0.01, lo + 0.01)
        la2, lo2 = proj.to_geo(p)
        assert la2 == pytest.approx(la + 0.01, abs=1e-9)
        assert lo2 == pytest.approx(lo + 0.01, abs=1e-9)

    def test_distance_agreement_with_haversine(self):
        proj = LocalProjection(39.9042, 116.4074)
        p1 = proj.to_plane(39.91, 116.41)
        p2 = proj.to_plane(39.93, 116.45)
        planar = euclidean(p1, p2)
        sphere = haversine_m(39.91, 116.41, 39.93, 116.45)
        assert planar == pytest.approx(sphere, rel=0.001)


class TestVectorizedGeo:
    @given(lat, lon, lat, lon)
    def test_haversine_vec_matches_scalar(self, la1, lo1, la2, lo2):
        vec = haversine_m_vec(
            np.asarray([la1]), np.asarray([lo1]), np.asarray([la2]), np.asarray([lo2])
        )
        assert float(vec[0]) == pytest.approx(haversine_m(la1, lo1, la2, lo2), rel=1e-12, abs=1e-9)

    def test_haversine_vec_batches_and_broadcasts(self):
        rng = np.random.default_rng(0)
        lats1, lons1 = rng.uniform(-80, 80, 50), rng.uniform(-179, 179, 50)
        lats2, lons2 = rng.uniform(-80, 80, 50), rng.uniform(-179, 179, 50)
        vec = haversine_m_vec(lats1, lons1, lats2, lons2)
        assert vec.shape == (50,)
        for i in range(50):
            assert vec[i] == pytest.approx(
                haversine_m(lats1[i], lons1[i], lats2[i], lons2[i]), rel=1e-12, abs=1e-9
            )
        # scalar against array broadcasts
        assert haversine_m_vec(lats1, lons1, 0.0, 0.0).shape == (50,)

    def test_to_plane_vec_bit_identical_to_scalar(self):
        rng = np.random.default_rng(1)
        proj = LocalProjection(39.9042, 116.4074)
        lats = rng.uniform(39.5, 40.3, 200)
        lons = rng.uniform(116.0, 116.9, 200)
        xy = proj.to_plane_vec(lats, lons)
        assert xy.shape == (200, 2)
        for i in range(200):
            p = proj.to_plane(lats[i], lons[i])
            assert (float(xy[i, 0]), float(xy[i, 1])) == (p.x, p.y)

    def test_to_geo_vec_bit_identical_to_scalar(self):
        rng = np.random.default_rng(2)
        proj = LocalProjection(39.9042, 116.4074)
        xs = rng.uniform(-5e4, 5e4, 200)
        ys = rng.uniform(-5e4, 5e4, 200)
        lats, lons = proj.to_geo_vec(xs, ys)
        for i in range(200):
            la, lo = proj.to_geo(Point(float(xs[i]), float(ys[i])))
            assert (float(lats[i]), float(lons[i])) == (la, lo)

    def test_to_geo_vec_inverts_to_plane_vec(self):
        rng = np.random.default_rng(3)
        proj = LocalProjection(39.9042, 116.4074)
        lats = rng.uniform(39.5, 40.3, 100)
        lons = rng.uniform(116.0, 116.9, 100)
        xy = proj.to_plane_vec(lats, lons)
        la2, lo2 = proj.to_geo_vec(xy[:, 0], xy[:, 1])
        assert np.allclose(la2, lats, atol=1e-12)
        assert np.allclose(lo2, lons, atol=1e-12)
