"""Tests for repro.geo.grid."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import BoundingBox, DemandGrid, GridCell, Point, UniformGrid


@pytest.fixture
def grid():
    return UniformGrid(BoundingBox.square(300.0), cell_size=100.0)


class TestUniformGrid:
    def test_dimensions(self, grid):
        assert grid.n_cols == 3
        assert grid.n_rows == 3
        assert len(grid) == 9

    def test_nonpositive_cell_size_rejected(self):
        with pytest.raises(ValueError):
            UniformGrid(BoundingBox.square(100.0), cell_size=0.0)

    def test_non_divisible_extent_rounds_up(self):
        g = UniformGrid(BoundingBox.square(250.0), cell_size=100.0)
        assert g.n_cols == 3 and g.n_rows == 3

    def test_cell_of_interior_point(self, grid):
        assert grid.cell_of(Point(50, 50)) == GridCell(0, 0)
        assert grid.cell_of(Point(250, 150)) == GridCell(2, 1)

    def test_cell_of_boundary_clamps(self, grid):
        assert grid.cell_of(Point(300, 300)) == GridCell(2, 2)

    def test_cell_of_outside_raises(self, grid):
        with pytest.raises(ValueError):
            grid.cell_of(Point(301, 0))

    def test_centroid(self, grid):
        assert grid.centroid(GridCell(0, 0)) == Point(50, 50)
        assert grid.centroid(GridCell(2, 1)) == Point(250, 150)

    def test_centroid_out_of_range_raises(self, grid):
        with pytest.raises(ValueError):
            grid.centroid(GridCell(3, 0))

    def test_snap_is_idempotent(self, grid):
        snapped = grid.snap(Point(10, 290))
        assert grid.snap(snapped) == snapped

    def test_cells_row_major_count(self, grid):
        cells = list(grid.cells())
        assert len(cells) == 9
        assert cells[0] == GridCell(0, 0)
        assert cells[-1] == GridCell(2, 2)

    def test_centroids_all_inside_box(self, grid):
        assert all(grid.box.contains(c) for c in grid.centroids())

    def test_neighbors_interior(self, grid):
        n = grid.neighbors(GridCell(1, 1))
        assert len(n) == 8
        assert GridCell(1, 1) not in n

    def test_neighbors_corner(self, grid):
        n = grid.neighbors(GridCell(0, 0))
        assert len(n) == 3

    def test_neighbors_radius_two(self, grid):
        n = grid.neighbors(GridCell(1, 1), radius=2)
        assert len(n) == 8  # whole 3x3 grid minus itself

    @given(st.floats(0, 300), st.floats(0, 300))
    def test_every_point_maps_to_valid_cell(self, x, y):
        g = UniformGrid(BoundingBox.square(300.0), cell_size=100.0)
        cell = g.cell_of(Point(x, y))
        assert cell in g

    @given(st.floats(0, 300), st.floats(0, 300))
    def test_snap_within_half_cell_diagonal(self, x, y):
        g = UniformGrid(BoundingBox.square(300.0), cell_size=100.0)
        p = Point(x, y)
        assert p.distance_to(g.snap(p)) <= 100.0 * np.sqrt(2) / 2 + 1e-9


class TestDemandGrid:
    def test_add_and_count(self, grid):
        d = DemandGrid(grid)
        d.add(Point(50, 50))
        d.add(Point(60, 60), weight=2)
        assert d.count(GridCell(0, 0)) == 3
        assert d.total == 3

    def test_negative_weight_rejected(self, grid):
        d = DemandGrid(grid)
        with pytest.raises(ValueError):
            d.add(Point(50, 50), weight=-1)

    def test_add_many(self, grid):
        d = DemandGrid(grid)
        d.add_many([Point(10, 10), Point(210, 210), Point(15, 20)])
        assert d.total == 3
        assert d.count(GridCell(0, 0)) == 2
        assert d.count(GridCell(2, 2)) == 1

    def test_occupied_cells_sorted(self, grid):
        d = DemandGrid(grid)
        d.add(Point(250, 250))
        d.add(Point(50, 50))
        assert d.occupied_cells == [GridCell(0, 0), GridCell(2, 2)]

    def test_weighted_points(self, grid):
        d = DemandGrid(grid)
        d.add(Point(10, 10), weight=5)
        [(centroid, count)] = d.weighted_points()
        assert centroid == Point(50, 50)
        assert count == 5

    def test_as_matrix(self, grid):
        d = DemandGrid(grid)
        d.add(Point(250, 50), weight=4)  # col 2, row 0
        mat = d.as_matrix()
        assert mat.shape == (3, 3)
        assert mat[0, 2] == 4
        assert mat.sum() == 4

    def test_top_cells(self, grid):
        d = DemandGrid(grid)
        d.add(Point(50, 50), weight=1)
        d.add(Point(150, 150), weight=7)
        d.add(Point(250, 250), weight=3)
        top = d.top_cells(2)
        assert top[0] == (GridCell(1, 1), 7)
        assert top[1] == (GridCell(2, 2), 3)

    def test_top_cells_negative_k_rejected(self, grid):
        with pytest.raises(ValueError):
            DemandGrid(grid).top_cells(-1)

    @given(st.lists(st.tuples(st.floats(0, 300), st.floats(0, 300)), max_size=50))
    def test_total_equals_points_added(self, raw):
        g = UniformGrid(BoundingBox.square(300.0), cell_size=100.0)
        d = DemandGrid(g)
        d.add_many(Point(x, y) for x, y in raw)
        assert d.total == len(raw)
        assert sum(c for _, c in d.weighted_points()) == len(raw)
