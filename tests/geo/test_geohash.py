"""Tests for repro.geo.geohash."""

import pytest
from hypothesis import given, strategies as st

from repro.geo import geohash

lat = st.floats(min_value=-90, max_value=90, allow_nan=False)
lon = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestEncode:
    def test_known_value(self):
        # Reference value from the original geohash.org service.
        assert geohash.encode(57.64911, 10.40744, precision=11) == "u4pruydqqvj"

    def test_beijing(self):
        # Beijing city centre lands in the 'wx4' macro-cell.
        assert geohash.encode(39.9042, 116.4074, precision=7).startswith("wx4")

    def test_precision_controls_length(self):
        for p in range(1, 13):
            assert len(geohash.encode(10, 20, precision=p)) == p

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            geohash.encode(91, 0)
        with pytest.raises(ValueError):
            geohash.encode(0, 181)
        with pytest.raises(ValueError):
            geohash.encode(0, 0, precision=0)


class TestDecode:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode("")

    def test_invalid_char_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode("ab!c")

    def test_uppercase_accepted(self):
        assert geohash.decode("WX4G0") == geohash.decode("wx4g0")

    def test_bbox_ordering(self):
        lat_lo, lat_hi, lon_lo, lon_hi = geohash.decode_bbox("wx4g0")
        assert lat_lo < lat_hi
        assert lon_lo < lon_hi

    @given(lat, lon)
    def test_roundtrip_precision7(self, la, lo):
        code = geohash.encode(la, lo, precision=7)
        la2, lo2 = geohash.decode(code)
        # Precision-7 cells are ~153m x 153m => centre within ~0.0014 deg.
        assert abs(la2 - la) < 0.0007 + 1e-9
        assert abs(lo2 - lo) < 0.0007 + 1e-9

    @given(lat, lon)
    def test_decoded_center_reencodes_to_same_hash(self, la, lo):
        code = geohash.encode(la, lo, precision=6)
        assert geohash.encode(*geohash.decode(code), precision=6) == code

    @given(lat, lon)
    def test_point_inside_decoded_bbox(self, la, lo):
        code = geohash.encode(la, lo, precision=8)
        lat_lo, lat_hi, lon_lo, lon_hi = geohash.decode_bbox(code)
        assert lat_lo <= la <= lat_hi
        assert lon_lo <= lo <= lon_hi


class TestNeighbors:
    def test_interior_has_eight(self):
        n = geohash.neighbors("wx4g0")
        assert len(n) == 8
        assert "wx4g0" not in n

    def test_neighbors_same_precision(self):
        assert all(len(h) == 5 for h in geohash.neighbors("wx4g0"))

    def test_pole_has_fewer(self):
        code = geohash.encode(89.99, 0.0, precision=4)
        assert len(geohash.neighbors(code)) < 8

    def test_neighbors_are_adjacent(self):
        code = "wx4g0"
        lat_c, lon_c = geohash.decode(code)
        for n in geohash.neighbors(code):
            la, lo = geohash.decode(n)
            # Precision-5 cells are ~0.044 deg tall x 0.044 deg wide.
            assert abs(la - lat_c) <= 0.05
            assert abs(lo - lon_c) <= 0.05
