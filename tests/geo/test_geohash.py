"""Tests for repro.geo.geohash."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import geohash

lat = st.floats(min_value=-90, max_value=90, allow_nan=False)
lon = st.floats(min_value=-180, max_value=180, allow_nan=False)


class TestEncode:
    def test_known_value(self):
        # Reference value from the original geohash.org service.
        assert geohash.encode(57.64911, 10.40744, precision=11) == "u4pruydqqvj"

    def test_beijing(self):
        # Beijing city centre lands in the 'wx4' macro-cell.
        assert geohash.encode(39.9042, 116.4074, precision=7).startswith("wx4")

    def test_precision_controls_length(self):
        for p in range(1, 13):
            assert len(geohash.encode(10, 20, precision=p)) == p

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            geohash.encode(91, 0)
        with pytest.raises(ValueError):
            geohash.encode(0, 181)
        with pytest.raises(ValueError):
            geohash.encode(0, 0, precision=0)


class TestDecode:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode("")

    def test_invalid_char_rejected(self):
        with pytest.raises(ValueError):
            geohash.decode("ab!c")

    def test_uppercase_accepted(self):
        assert geohash.decode("WX4G0") == geohash.decode("wx4g0")

    def test_bbox_ordering(self):
        lat_lo, lat_hi, lon_lo, lon_hi = geohash.decode_bbox("wx4g0")
        assert lat_lo < lat_hi
        assert lon_lo < lon_hi

    @given(lat, lon)
    def test_roundtrip_precision7(self, la, lo):
        code = geohash.encode(la, lo, precision=7)
        la2, lo2 = geohash.decode(code)
        # Precision-7 cells are ~153m x 153m => centre within ~0.0014 deg.
        assert abs(la2 - la) < 0.0007 + 1e-9
        assert abs(lo2 - lo) < 0.0007 + 1e-9

    @given(lat, lon)
    def test_decoded_center_reencodes_to_same_hash(self, la, lo):
        code = geohash.encode(la, lo, precision=6)
        assert geohash.encode(*geohash.decode(code), precision=6) == code

    @given(lat, lon)
    def test_point_inside_decoded_bbox(self, la, lo):
        code = geohash.encode(la, lo, precision=8)
        lat_lo, lat_hi, lon_lo, lon_hi = geohash.decode_bbox(code)
        assert lat_lo <= la <= lat_hi
        assert lon_lo <= lo <= lon_hi


class TestEncodeMany:
    """The vectorized encoder must match the scalar bisection exactly."""

    # Cell-boundary, antimeridian and pole cases the float kernel must
    # settle identically to the scalar comparisons.
    EDGES_LAT = [-90.0, 90.0, 0.0, 45.0, -45.0, 22.5, -22.5, 90.0, -90.0]
    EDGES_LON = [-180.0, 180.0, 0.0, 90.0, -90.0, 180.0, -180.0, 180.0, -180.0]

    @pytest.mark.parametrize("precision", [1, 2, 5, 7, 12])
    def test_parity_with_scalar(self, precision):
        rng = np.random.default_rng(7)
        lats = np.concatenate(
            [rng.uniform(-90, 90, 2000), np.array(self.EDGES_LAT)]
        )
        lons = np.concatenate(
            [rng.uniform(-180, 180, 2000), np.array(self.EDGES_LON)]
        )
        vec = geohash.encode_many(lats, lons, precision)
        ref = [geohash.encode(a, b, precision) for a, b in zip(lats, lons)]
        assert vec == ref

    def test_cell_boundary_parity(self):
        # Points exactly on split lines: the bisection midpoints are
        # dyadic fractions, representable exactly in float64, so >= must
        # agree between scalar and vector paths.
        lats, lons = [], []
        for k in range(1, 64):
            lats.append(-90.0 + 180.0 * k / 64.0)
            lons.append(-180.0 + 360.0 * k / 64.0)
        vec = geohash.encode_many(np.array(lats), np.array(lons), 6)
        ref = [geohash.encode(a, b, 6) for a, b in zip(lats, lons)]
        assert vec == ref

    def test_empty_input(self):
        assert geohash.encode_many(np.array([]), np.array([]), 5) == []

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            geohash.encode_many(np.array([91.0]), np.array([0.0]))
        with pytest.raises(ValueError):
            geohash.encode_many(np.array([0.0]), np.array([181.0]))
        with pytest.raises(ValueError):
            geohash.encode_many(np.array([np.nan]), np.array([0.0]))
        with pytest.raises(ValueError):
            geohash.encode_many(np.array([0.0]), np.array([0.0]), precision=0)

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            geohash.encode_many(np.array([0.0, 1.0]), np.array([0.0]))


class TestCellIndices:
    def test_roundtrip_through_cell_code(self):
        rng = np.random.default_rng(3)
        lats = rng.uniform(-90, 90, 300)
        lons = rng.uniform(-180, 180, 300)
        for precision in (1, 3, 7):
            lat_idx, lon_idx = geohash.cell_indices_many(lats, lons, precision)
            codes = geohash.encode_many(lats, lons, precision)
            for r, c, code in zip(lat_idx.tolist(), lon_idx.tolist(), codes):
                assert geohash.cell_code(r, c, precision) == code
                assert geohash.cell_of(code) == (r, c)

    def test_garbage_coordinates_never_raise(self):
        lat_idx, lon_idx = geohash.cell_indices_many(
            np.array([np.nan, 95.0, -95.0, np.inf, -np.inf]),
            np.array([np.nan, 200.0, -200.0, np.inf, -np.inf]),
            3,
        )
        n_lat, n_lon = geohash.cell_shape(3)
        assert lat_idx.tolist() == [0, n_lat - 1, 0, n_lat - 1, 0]
        assert lon_idx.tolist() == [0, n_lon - 1, 0, n_lon - 1, 0]

    def test_cell_shape(self):
        assert geohash.cell_shape(1) == (4, 8)
        assert geohash.cell_shape(2) == (32, 32)
        assert geohash.cell_shape(3) == (128, 256)

    def test_cell_code_range_checks(self):
        with pytest.raises(ValueError):
            geohash.cell_code(4, 0, 1)
        with pytest.raises(ValueError):
            geohash.cell_code(0, 8, 1)
        with pytest.raises(ValueError):
            geohash.cell_code(-1, 0, 1)


class TestNeighbors:
    def test_interior_has_eight(self):
        n = geohash.neighbors("wx4g0")
        assert len(n) == 8
        assert "wx4g0" not in n

    def test_neighbors_same_precision(self):
        assert all(len(h) == 5 for h in geohash.neighbors("wx4g0"))

    def test_pole_has_fewer(self):
        code = geohash.encode(89.99, 0.0, precision=4)
        assert len(geohash.neighbors(code)) < 8

    def test_neighbors_are_adjacent(self):
        code = "wx4g0"
        lat_c, lon_c = geohash.decode(code)
        for n in geohash.neighbors(code):
            la, lo = geohash.decode(n)
            # Precision-5 cells are ~0.044 deg tall x 0.044 deg wide.
            assert abs(la - lat_c) <= 0.05
            assert abs(lo - lon_c) <= 0.05


class TestNeighborsMapEdges:
    """Regression pins for the ±90° borders and the antimeridian."""

    def test_north_pole_corner_pinned(self):
        # 'b' is the north-west precision-1 cell: the polar row is
        # dropped and the west neighbor wraps to 'z' (antimeridian).
        assert sorted(geohash.neighbors("b")) == ["8", "9", "c", "x", "z"]

    def test_south_pole_corner_pinned(self):
        # '0' is the south-west cell: south row dropped, west wraps to 'p'.
        assert sorted(geohash.neighbors("0")) == ["1", "2", "3", "p", "r"]

    def test_north_east_corner_pinned(self):
        # 'z' is the north-east cell: east wraps back to 'b'.
        assert sorted(geohash.neighbors("z")) == ["8", "b", "w", "x", "y"]

    def test_antimeridian_east_neighbors_wrap(self):
        # 'xbp' hugs lon=180 away from the poles: all 8 neighbors exist,
        # and the three eastern ones live on the lon=-180 side.
        n = geohash.neighbors("xbp")
        assert len(n) == 8
        assert {"800", "802", "2pb"} <= set(n)

    @pytest.mark.parametrize("precision", [1, 2, 3, 5])
    def test_edge_invariants(self, precision):
        n_lat, n_lon = geohash.cell_shape(precision)
        probes = [
            (0, 0), (0, n_lon - 1), (n_lat - 1, 0), (n_lat - 1, n_lon - 1),
            (0, n_lon // 2), (n_lat - 1, n_lon // 2),
            (n_lat // 2, 0), (n_lat // 2, n_lon - 1),
        ]
        for r, c in probes:
            code = geohash.cell_code(r, c, precision)
            ns = geohash.neighbors(code)
            polar = r in (0, n_lat - 1)
            assert len(ns) == (5 if polar else 8)
            assert len(set(ns)) == len(ns)
            assert code not in ns
            for other in ns:
                rr, cc = geohash.cell_of(other)
                assert 0 <= rr < n_lat
                assert abs(rr - r) <= 1
                dc = abs(cc - c)
                assert min(dc, n_lon - dc) <= 1

    def test_pole_rows_never_out_of_range(self):
        # Every cell of the top and bottom rows at precision 2: no
        # neighbor may decode outside the valid coordinate ranges.
        n_lat, n_lon = geohash.cell_shape(2)
        for c in range(n_lon):
            for r in (0, n_lat - 1):
                for other in geohash.neighbors(geohash.cell_code(r, c, 2)):
                    lat_lo, lat_hi, lon_lo, lon_hi = geohash.decode_bbox(other)
                    assert -90.0 <= lat_lo < lat_hi <= 90.0
                    assert -180.0 <= lon_lo < lon_hi <= 180.0
