"""Tests for repro.geo.spatial_index — checked against brute force."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import Point
from repro.geo.distance import nearest_point_index
from repro.geo.spatial_index import NearestNeighborIndex


def brute_nearest(query, points):
    best_idx, best_d = -1, float("inf")
    for i, p in enumerate(points):
        if p is None:
            continue
        d = query.distance_to(p)
        if d < best_d:
            best_idx, best_d = i, d
    return best_idx, best_d


class TestConstruction:
    def test_bad_cell_size(self):
        with pytest.raises(ValueError):
            NearestNeighborIndex(cell_size=0.0)

    def test_bulk_load(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0), Point(5, 5)])
        assert len(idx) == 2

    def test_empty_nearest_raises(self):
        with pytest.raises(ValueError):
            NearestNeighborIndex(10.0).nearest(Point(0, 0))


class TestAddRemove:
    def test_add_returns_stable_indices(self):
        idx = NearestNeighborIndex(10.0)
        assert idx.add(Point(0, 0)) == 0
        assert idx.add(Point(1, 1)) == 1
        assert idx.point(0) == Point(0, 0)

    def test_remove(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0), Point(100, 100)])
        idx.remove(0)
        assert len(idx) == 1
        near, _ = idx.nearest(Point(0, 0))
        assert near == 1

    def test_remove_twice_raises(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0)])
        idx.remove(0)
        with pytest.raises(KeyError):
            idx.remove(0)

    def test_point_after_remove_raises(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0)])
        idx.remove(0)
        with pytest.raises(KeyError):
            idx.point(0)

    def test_readd_after_remove(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0)])
        idx.remove(0)
        new = idx.add(Point(0, 0))
        assert new == 1
        assert idx.nearest(Point(1, 1))[0] == 1


class TestNearest:
    def test_single_point(self):
        idx = NearestNeighborIndex(10.0, points=[Point(3, 4)])
        i, d = idx.nearest(Point(0, 0))
        assert i == 0
        assert d == pytest.approx(5.0)

    def test_query_far_from_all_points(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0), Point(10, 0)])
        i, d = idx.nearest(Point(10_000, 10_000))
        assert i in (0, 1)
        assert np.isfinite(d)

    def test_exact_hit(self):
        idx = NearestNeighborIndex(10.0, points=[Point(5, 5), Point(50, 50)])
        i, d = idx.nearest(Point(50, 50))
        assert i == 1
        assert d == 0.0

    @given(
        st.lists(
            st.tuples(st.floats(-500, 500), st.floats(-500, 500)),
            min_size=1, max_size=60,
        ),
        st.tuples(st.floats(-600, 600), st.floats(-600, 600)),
        st.sampled_from([5.0, 50.0, 400.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_brute_force(self, raw, q, cell):
        points = [Point(x, y) for x, y in raw]
        idx = NearestNeighborIndex(cell, points=points)
        query = Point(*q)
        i, d = idx.nearest(query)
        bi, bd = brute_nearest(query, points)
        assert d == pytest.approx(bd)

    def test_matches_brute_force_after_removals(self):
        rng = np.random.default_rng(0)
        points = [Point(float(x), float(y)) for x, y in rng.uniform(0, 1000, (40, 2))]
        idx = NearestNeighborIndex(100.0, points=points)
        removed = {3, 11, 25}
        live = list(points)
        for r in removed:
            idx.remove(r)
            live[r] = None
        for _ in range(25):
            q = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            i, d = idx.nearest(q)
            bi, bd = brute_nearest(q, live)
            assert d == pytest.approx(bd)
            assert i not in removed


class TestTieBreak:
    """The index must resolve equal distances exactly like
    ``nearest_point_index`` (np.argmin keeps the first minimum): lowest
    stored index wins, even when the tie spans ring boundaries."""

    TIED = [Point(2, 0), Point(-2, 0), Point(0, 2)]  # all at d=2 from origin

    def test_tied_points_identical_to_reference(self):
        idx = NearestNeighborIndex(1.0, points=self.TIED)
        query = Point(0, 0)
        assert idx.nearest(query) == nearest_point_index(query, self.TIED) == (0, 2.0)

    def test_tie_break_survives_removal(self):
        idx = NearestNeighborIndex(1.0, points=self.TIED)
        idx.remove(0)
        assert idx.nearest(Point(0, 0)) == (1, 2.0)
        idx.remove(1)
        assert idx.nearest(Point(0, 0)) == (2, 2.0)

    def test_tie_across_ring_boundary(self):
        # With cell_size 2 and a query at the origin, Point(2, 0) sits in
        # ring 1 while Point(-2, 0) sits in ring 1 too, but a point at
        # exactly ring*cell distance must not let the expansion stop
        # before an equidistant lower-index point is seen.
        points = [Point(4, 0), Point(0, 4), Point(-4, 0)]
        idx = NearestNeighborIndex(2.0, points=points)
        query = Point(0, 0)
        assert idx.nearest(query) == nearest_point_index(query, points) == (0, 4.0)

    @given(
        st.lists(st.sampled_from([-4, -2, 0, 2, 4]), min_size=2, max_size=12),
        st.sampled_from([1.0, 2.0, 5.0]),
    )
    @settings(max_examples=60, deadline=None)
    def test_lattice_ties_match_reference(self, xs, cell):
        # Lattice coordinates manufacture many exact distance ties.
        points = [Point(float(x), float(-x)) for x in xs]
        idx = NearestNeighborIndex(cell, points=points)
        query = Point(0.0, 0.0)
        assert idx.nearest(query) == nearest_point_index(query, points)


class TestPredicate:
    def test_predicate_filters(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0), Point(1, 0), Point(2, 0)])
        i, d = idx.nearest(Point(0, 0), predicate=lambda k: k != 0)
        assert (i, d) == (1, 1.0)

    def test_predicate_rejecting_all(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0)])
        assert idx.nearest(Point(0, 0), predicate=lambda k: False) == (-1, float("inf"))


class TestBoundsCache:
    """The occupied-bucket bounding box must stay correct through add and
    remove so the ring-expansion cutoff never terminates early."""

    def _brute_bounds(self, idx):
        if not idx._buckets:
            return None
        cs = [k[0] for k in idx._buckets]
        rs = [k[1] for k in idx._buckets]
        return (min(cs), max(cs), min(rs), max(rs))

    def test_bounds_track_boundary_removals(self):
        rng = np.random.default_rng(42)
        idx = NearestNeighborIndex(25.0)
        live = []
        for _ in range(80):
            p = Point(float(rng.uniform(-500, 500)), float(rng.uniform(-500, 500)))
            live.append(idx.add(p))
            assert idx._bounds == self._brute_bounds(idx)
        rng.shuffle(live)
        for i in live:
            idx.remove(i)
            assert idx._bounds == self._brute_bounds(idx)
        assert idx._bounds is None

    def test_query_correct_after_boundary_shrink(self):
        # Remove the extreme point, then query far outside what remains:
        # with stale bounds the expansion would overrun or stop early.
        idx = NearestNeighborIndex(10.0, points=[Point(0, 0), Point(1000, 1000)])
        idx.remove(1)
        assert idx.nearest(Point(900, 900))[0] == 0


class TestWithin:
    def test_radius_zero_exact_hits_only(self):
        idx = NearestNeighborIndex(10.0, points=[Point(1, 1), Point(2, 2)])
        hits = idx.within(Point(1, 1), 0.0)
        assert [i for i, _ in hits] == [0]

    def test_negative_radius_rejected(self):
        with pytest.raises(ValueError):
            NearestNeighborIndex(10.0).within(Point(0, 0), -1.0)

    def test_sorted_by_distance(self):
        idx = NearestNeighborIndex(10.0, points=[Point(0, 3), Point(0, 1), Point(0, 2)])
        hits = idx.within(Point(0, 0), 5.0)
        dists = [d for _, d in hits]
        assert dists == sorted(dists)
        assert len(hits) == 3

    @given(
        st.lists(
            st.tuples(st.floats(-200, 200), st.floats(-200, 200)),
            min_size=0, max_size=40,
        ),
        st.floats(0, 300),
    )
    @settings(max_examples=40, deadline=None)
    def test_within_matches_brute_force(self, raw, radius):
        points = [Point(x, y) for x, y in raw]
        idx = NearestNeighborIndex(50.0, points=points)
        query = Point(10.0, -10.0)
        got = {i for i, _ in idx.within(query, radius)}
        want = {
            i for i, p in enumerate(points) if query.distance_to(p) <= radius
        }
        assert got == want
