"""Tests for repro.geo.streets."""

import numpy as np
import pytest

from repro.core import DemandPoint, walking_cost
from repro.geo import BoundingBox, Point
from repro.geo.streets import StreetNetwork, street_walking_cost


@pytest.fixture(scope="module")
def net():
    return StreetNetwork(BoundingBox.square(1000.0), block_size=100.0)


class TestConstruction:
    def test_bad_block_size(self):
        with pytest.raises(ValueError):
            StreetNetwork(BoundingBox.square(100.0), block_size=0.0)
        with pytest.raises(ValueError):
            StreetNetwork(BoundingBox.square(100.0), block_size=500.0)

    def test_grid_dimensions(self, net):
        assert net.n_cols == 11
        assert net.n_rows == 11
        assert net.n_intersections == 121

    def test_node_location(self, net):
        assert net.node_location((0, 0)) == Point(0, 0)
        assert net.node_location((3, 5)) == Point(300, 500)

    def test_unknown_node_rejected(self, net):
        with pytest.raises(KeyError):
            net.node_location((99, 99))

    def test_nearest_node_rounds(self, net):
        assert net.nearest_node(Point(149, 51)) == (1, 1)
        assert net.nearest_node(Point(151, 49)) == (2, 0)

    def test_nearest_node_clamps(self, net):
        assert net.nearest_node(Point(-50, 2000)) == (0, 10)


class TestDistances:
    def test_same_point_zero(self, net):
        assert net.walking_distance(Point(100, 100), Point(100, 100)) == 0.0

    def test_straight_street(self, net):
        d = net.walking_distance(Point(0, 0), Point(500, 0))
        assert d == pytest.approx(500.0)

    def test_manhattan_on_grid_nodes(self, net):
        d = net.walking_distance(Point(0, 0), Point(300, 400))
        assert d == pytest.approx(700.0)

    def test_never_less_than_euclidean(self, net):
        rng = np.random.default_rng(0)
        for _ in range(30):
            a = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            b = Point(float(rng.uniform(0, 1000)), float(rng.uniform(0, 1000)))
            if a.distance_to(b) < 150:
                continue
            # Access legs are Euclidean, so allow a tiny tolerance around
            # corner cases near intersections.
            assert net.walking_distance(a, b) >= a.distance_to(b) - net.block_size

    def test_detour_factor_on_diagonal(self, net):
        # A pure diagonal walk on a grid costs sqrt(2) x Euclidean.
        f = net.detour_factor(Point(0, 0), Point(800, 800))
        assert f == pytest.approx(np.sqrt(2.0), rel=0.02)

    def test_detour_factor_coincident_rejected(self, net):
        with pytest.raises(ValueError):
            net.detour_factor(Point(5, 5), Point(5, 5))

    def test_diagonal_avenues_shorten_diagonals(self):
        box = BoundingBox.square(1000.0)
        plain = StreetNetwork(box, block_size=100.0)
        with_diag = StreetNetwork(box, block_size=100.0, diagonal_avenues=True)
        a, b = Point(0, 0), Point(900, 900)
        assert with_diag.walking_distance(a, b) < plain.walking_distance(a, b)

    def test_symmetry(self, net):
        a, b = Point(120, 330), Point(840, 90)
        assert net.walking_distance(a, b) == pytest.approx(net.walking_distance(b, a))


class TestStreetWalkingCost:
    def test_empty_demand(self, net):
        total, assignment = street_walking_cost([], [Point(0, 0)], net)
        assert total == 0.0 and assignment == []

    def test_no_stations_rejected(self, net):
        with pytest.raises(ValueError):
            street_walking_cost([DemandPoint(Point(0, 0))], [], net)

    def test_assignment_minimises_street_distance(self, net):
        # Station B is Euclidean-farther but street-closer than station A.
        demand = DemandPoint(Point(0, 0))
        a = Point(290, 290)   # Euclidean 410, street 580
        b = Point(0, 500)     # Euclidean 500, street 500
        total, assignment = street_walking_cost([demand], [a, b], net)
        assert assignment == [1]
        assert total == pytest.approx(500.0)

    def test_weights_applied(self, net):
        demand = DemandPoint(Point(0, 0), weight=3.0)
        total, _ = street_walking_cost([demand], [Point(0, 400)], net)
        assert total == pytest.approx(1200.0)

    def test_street_cost_at_least_euclidean_cost(self, net):
        rng = np.random.default_rng(1)
        demands = [
            DemandPoint(Point(float(x), float(y)))
            for x, y in rng.uniform(0, 1000, size=(20, 2))
        ]
        stations = [Point(200, 200), Point(800, 700)]
        street_total, _ = street_walking_cost(demands, stations, net)
        euclid_total, _ = walking_cost(demands, stations)
        assert street_total >= euclid_total * 0.95
