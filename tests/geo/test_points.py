"""Tests for repro.geo.points."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.geo import BoundingBox, Point, array_to_points, points_to_array

coords = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False)


class TestPoint:
    def test_distance_to_self_is_zero(self):
        p = Point(3.0, 4.0)
        assert p.distance_to(p) == 0.0

    def test_distance_pythagoras(self):
        assert Point(0, 0).distance_to(Point(3, 4)) == pytest.approx(5.0)

    def test_manhattan_distance(self):
        assert Point(0, 0).manhattan_distance_to(Point(3, -4)) == pytest.approx(7.0)

    def test_midpoint(self):
        assert Point(0, 0).midpoint(Point(2, 4)) == Point(1, 2)

    def test_translate(self):
        assert Point(1, 1).translate(-1, 2) == Point(0, 3)

    def test_as_tuple_and_iter(self):
        p = Point(1.5, -2.5)
        assert p.as_tuple() == (1.5, -2.5)
        assert tuple(p) == (1.5, -2.5)

    def test_ordering_lexicographic(self):
        assert Point(0, 5) < Point(1, 0)
        assert Point(1, 0) < Point(1, 1)

    def test_hashable_and_frozen(self):
        p = Point(1, 2)
        assert {p: "a"}[Point(1, 2)] == "a"
        with pytest.raises(AttributeError):
            p.x = 3  # type: ignore[misc]

    @given(coords, coords, coords, coords)
    def test_distance_symmetry(self, x1, y1, x2, y2):
        a, b = Point(x1, y1), Point(x2, y2)
        assert a.distance_to(b) == pytest.approx(b.distance_to(a))

    @given(coords, coords, coords, coords, coords, coords)
    def test_triangle_inequality(self, x1, y1, x2, y2, x3, y3):
        a, b, c = Point(x1, y1), Point(x2, y2), Point(x3, y3)
        assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


class TestBoundingBox:
    def test_inverted_box_rejected(self):
        with pytest.raises(ValueError):
            BoundingBox(1, 0, 0, 1)
        with pytest.raises(ValueError):
            BoundingBox(0, 1, 1, 0)

    def test_square_factory(self):
        box = BoundingBox.square(10.0, Point(1, 2))
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (1, 2, 11, 12)
        assert box.area == pytest.approx(100.0)

    def test_square_rejects_nonpositive_side(self):
        with pytest.raises(ValueError):
            BoundingBox.square(0.0)

    def test_from_points(self):
        box = BoundingBox.from_points([Point(0, 5), Point(3, -1), Point(2, 2)])
        assert (box.min_x, box.min_y, box.max_x, box.max_y) == (0, -1, 3, 5)

    def test_from_points_empty_raises(self):
        with pytest.raises(ValueError):
            BoundingBox.from_points([])

    def test_contains_boundary(self):
        box = BoundingBox.square(1.0)
        assert box.contains(Point(0, 0))
        assert box.contains(Point(1, 1))
        assert not box.contains(Point(1.0001, 0.5))

    def test_clamp(self):
        box = BoundingBox.square(1.0)
        assert box.clamp(Point(2, -1)) == Point(1, 0)
        assert box.clamp(Point(0.5, 0.5)) == Point(0.5, 0.5)

    def test_center(self):
        assert BoundingBox.square(2.0).center == Point(1, 1)

    def test_expand(self):
        box = BoundingBox.square(2.0).expand(1.0)
        assert (box.min_x, box.max_x) == (-1, 3)

    def test_sample_inside(self):
        box = BoundingBox.square(100.0)
        rng = np.random.default_rng(0)
        pts = box.sample(rng, 50)
        assert len(pts) == 50
        assert all(box.contains(p) for p in pts)

    @given(st.lists(st.tuples(coords, coords), min_size=1, max_size=20))
    def test_from_points_contains_all(self, raw):
        pts = [Point(x, y) for x, y in raw]
        box = BoundingBox.from_points(pts)
        assert all(box.contains(p) for p in pts)


class TestArrayConversion:
    def test_roundtrip(self):
        pts = [Point(1, 2), Point(-3, 4.5)]
        assert array_to_points(points_to_array(pts)) == pts

    def test_empty(self):
        assert points_to_array([]).shape == (0, 2)
        assert array_to_points(np.empty((0, 2))) == []

    def test_bad_shape_rejected(self):
        with pytest.raises(ValueError):
            array_to_points(np.zeros((3, 3)))
