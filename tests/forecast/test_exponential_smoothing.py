"""Tests for repro.forecast.exponential_smoothing."""

import numpy as np
import pytest

from repro.forecast import (
    HoltWinters,
    MovingAverage,
    SeasonalNaive,
    rolling_rmse,
)


def seasonal_series(n=480, period=24, trend=0.0, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    seasonal = 40 + 25 * np.sin(2 * np.pi * t / period)
    return seasonal + trend * t + rng.normal(0, noise, size=n)


class TestSeasonalNaive:
    def test_validation(self):
        with pytest.raises(ValueError):
            SeasonalNaive(period=0)
        with pytest.raises(ValueError):
            SeasonalNaive(window=0)

    def test_repeats_last_season_exactly(self):
        series = seasonal_series(n=96)
        model = SeasonalNaive(period=24)
        out = model.forecast(series, 24)
        assert np.allclose(out, series[-24:])

    def test_multi_season_horizon_tiles(self):
        series = seasonal_series(n=96)
        out = SeasonalNaive(period=24).forecast(series, 48)
        assert np.allclose(out[:24], out[24:])

    def test_window_averages_seasons(self):
        # Two seasons: [0]*4 and [2]*4 -> window=2 forecasts 1s.
        series = np.array([0.0] * 4 + [2.0] * 4)
        out = SeasonalNaive(period=4, window=2).forecast(series, 4)
        assert np.allclose(out, 1.0)

    def test_short_history_rejected(self):
        with pytest.raises(ValueError):
            SeasonalNaive(period=24).forecast(np.arange(10.0), 1)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            SeasonalNaive(period=4).forecast(np.arange(8.0), 0)

    def test_perfect_on_pure_seasonality(self):
        series = seasonal_series(n=480, noise=0.0)
        err = rolling_rmse(SeasonalNaive(period=24), series[:384], series[384:], horizon=6)
        assert err < 1e-9

    def test_beats_ma_on_seasonal_data(self):
        series = seasonal_series(n=480, noise=3.0, seed=1)
        train, test = series[:384], series[384:]
        err_sn = rolling_rmse(SeasonalNaive(period=24), train, test, horizon=6)
        err_ma = rolling_rmse(MovingAverage(window=3), train, test, horizon=6)
        assert err_sn < err_ma


class TestHoltWinters:
    def test_validation(self):
        with pytest.raises(ValueError):
            HoltWinters(period=0)

    def test_fit_too_short_rejected(self):
        with pytest.raises(ValueError):
            HoltWinters(period=24).fit(np.arange(30.0))

    def test_forecast_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            HoltWinters(period=4).forecast(np.arange(20.0), 1)

    def test_forecast_short_history_rejected(self):
        model = HoltWinters(period=24).fit(seasonal_series())
        with pytest.raises(ValueError):
            model.forecast(np.arange(5.0), 1)

    def test_is_fitted_flag(self):
        model = HoltWinters(period=24)
        assert not model.is_fitted
        model.fit(seasonal_series())
        assert model.is_fitted

    def test_tracks_pure_seasonality(self):
        series = seasonal_series(n=480, noise=0.0)
        model = HoltWinters(period=24).fit(series[:384])
        err = rolling_rmse(model, series[:384], series[384:], horizon=6, fit=False)
        assert err < 3.0

    def test_tracks_trend(self):
        series = seasonal_series(n=480, trend=0.1, noise=0.0)
        model = HoltWinters(period=24).fit(series[:384])
        out = model.forecast(series[:384], 24)
        actual = series[384:408]
        assert np.abs(out - actual).mean() < 6.0

    def test_beats_ma_on_seasonal_data(self):
        series = seasonal_series(n=480, noise=3.0, seed=2)
        train, test = series[:384], series[384:]
        err_hw = rolling_rmse(HoltWinters(period=24), train, test, horizon=6)
        err_ma = rolling_rmse(MovingAverage(window=3), train, test, horizon=6)
        assert err_hw < err_ma

    def test_params_within_unit_interval(self):
        model = HoltWinters(period=24).fit(seasonal_series(noise=2.0))
        assert np.all(model._params > 0)
        assert np.all(model._params < 1)

    def test_undamped_trend_option(self):
        series = seasonal_series(n=240, trend=0.2)
        model = HoltWinters(period=24, damped_trend=False).fit(series)
        out = model.forecast(series, 48)
        # Undamped trend keeps climbing season over season: compare the
        # same phase one period apart so seasonality cancels.
        assert np.mean(out[24:48] - out[0:24]) > 0
