"""Tests for repro.forecast.base and repro.forecast.features."""

import numpy as np
import pytest

from repro.datasets import SyntheticConfig, mobike_like_dataset
from repro.forecast import (
    DemandSeries,
    MovingAverage,
    build_demand_series,
    rolling_forecasts,
    rolling_rmse,
    train_test_split_series,
    weekday_weekend_split,
)
from repro.geo import UniformGrid


class TestTrainTestSplit:
    def test_chronological(self):
        train, test = train_test_split_series(np.arange(10.0), 0.7)
        assert list(train) == list(range(7))
        assert list(test) == [7, 8, 9]

    def test_degenerate_fraction_rejected(self):
        with pytest.raises(ValueError):
            train_test_split_series(np.arange(10.0), 0.0)
        with pytest.raises(ValueError):
            train_test_split_series(np.arange(10.0), 1.0)


class TestRollingForecasts:
    def test_covers_test_segment(self):
        train = np.arange(20.0)
        test = np.arange(20.0, 30.0)
        pred, actual = rolling_forecasts(MovingAverage(window=2), train, test, horizon=1)
        assert len(pred) == len(actual) == 10
        assert np.allclose(actual, test)

    def test_multi_horizon_blocks(self):
        train = np.ones(20)
        test = np.ones(9)
        pred, actual = rolling_forecasts(MovingAverage(), train, test, horizon=3)
        assert len(pred) == 9  # 3 blocks of 3

    def test_horizon_longer_than_test_rejected(self):
        with pytest.raises(ValueError):
            rolling_forecasts(MovingAverage(), np.ones(10), np.ones(2), horizon=5)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            rolling_forecasts(MovingAverage(), np.ones(10), np.ones(5), horizon=0)

    def test_rolling_rmse_perfect_model_zero(self):
        class Oracle(MovingAverage):
            def forecast(self, history, horizon):
                return np.full(horizon, 5.0)

        err = rolling_rmse(Oracle(), np.full(10, 5.0), np.full(6, 5.0))
        assert err == 0.0


class TestDemandSeries:
    @pytest.fixture(scope="class")
    def dataset(self):
        cfg = SyntheticConfig(trips_per_weekday=200, trips_per_weekend_day=150)
        return mobike_like_dataset(seed=1, days=14, config=cfg)

    @pytest.fixture(scope="class")
    def grid(self, dataset):
        return UniformGrid(dataset.bounding_box(margin=10.0), cell_size=300.0)

    def test_label_shapes_validated(self):
        with pytest.raises(ValueError):
            DemandSeries(np.zeros(5), np.zeros(4), np.zeros(5, dtype=bool))

    def test_total_mass_preserved(self, dataset, grid):
        series = build_demand_series(dataset, grid)
        assert series.totals().sum() == len(dataset)

    def test_per_cell_mode(self, dataset, grid):
        series = build_demand_series(dataset, grid, per_cell=True)
        assert series.counts.ndim == 2
        assert series.counts.shape[1] == len(grid)
        assert np.allclose(series.totals(), series.counts.sum(axis=1))

    def test_hour_labels_cycle(self, dataset, grid):
        series = build_demand_series(dataset, grid)
        assert series.hour_of_day[0] == 0
        assert set(series.hour_of_day) <= set(range(24))

    def test_weekend_flags_match_calendar(self, dataset, grid):
        series = build_demand_series(dataset, grid)
        # 2017-05-10 was Wednesday; first weekend hour is day 3 (Saturday).
        assert not series.is_weekend[0]
        assert series.is_weekend[3 * 24]

    def test_weekday_weekend_split_sizes(self, dataset, grid):
        series = build_demand_series(dataset, grid)
        (wd_train, wd_test), (we_train, we_test) = weekday_weekend_split(series)
        assert wd_train.size == 7 * 24
        assert we_train.size == 3 * 24
        assert wd_test.size == 3 * 24
        assert we_test.size == 1 * 24

    def test_split_insufficient_days_rejected(self, dataset, grid):
        short = mobike_like_dataset(
            seed=2, days=3,
            config=SyntheticConfig(trips_per_weekday=100, trips_per_weekend_day=80),
        )
        series = build_demand_series(short, UniformGrid(short.bounding_box(10.0), 300.0))
        with pytest.raises(ValueError):
            weekday_weekend_split(series)
