"""Tests for repro.forecast.lstm — including a numerical gradient check."""

import numpy as np
import pytest

from repro.forecast import LstmConfig, LstmForecaster, rolling_rmse, sliding_windows
from repro.forecast.moving_average import MovingAverage


def sine_series(n=400, period=24, noise=0.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 50 + 30 * np.sin(2 * np.pi * t / period) + rng.normal(0, noise, size=n)


class TestSlidingWindows:
    def test_shapes(self):
        X, y = sliding_windows(np.arange(10.0), lookback=3)
        assert X.shape == (7, 3)
        assert y.shape == (7,)

    def test_alignment(self):
        X, y = sliding_windows(np.arange(10.0), lookback=3)
        assert list(X[0]) == [0, 1, 2]
        assert y[0] == 3
        assert list(X[-1]) == [6, 7, 8]
        assert y[-1] == 9

    def test_too_short_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(3.0), lookback=3)

    def test_bad_lookback_rejected(self):
        with pytest.raises(ValueError):
            sliding_windows(np.arange(10.0), lookback=0)


class TestLstmConfig:
    def test_defaults_valid(self):
        LstmConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"lookback": 0},
            {"hidden_size": 0},
            {"n_layers": 0},
            {"epochs": 0},
            {"batch_size": 0},
            {"learning_rate": 0.0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            LstmConfig(**kwargs)

    def test_config_and_kwargs_conflict(self):
        with pytest.raises(ValueError):
            LstmForecaster(LstmConfig(), lookback=5)


class TestGradients:
    def test_bptt_matches_numerical_gradient(self):
        """The analytic BPTT gradient must match central differences."""
        model = LstmForecaster(
            LstmConfig(lookback=4, hidden_size=5, n_layers=2, epochs=1, seed=3)
        )
        rng = np.random.default_rng(1)
        X = rng.normal(size=(3, 4))
        y = rng.normal(size=3)

        def loss():
            pred, _ = model._forward(X)
            return 0.5 * float(np.mean((pred - y) ** 2))

        pred, caches = model._forward(X)
        grads = model._backward(X, pred, y, caches)

        eps = 1e-6
        for key in ["W0", "U0", "b0", "W1", "U1", "b1", "Wy", "by"]:
            param = model._params[key]
            flat = param.ravel()
            # Check a handful of entries per tensor.
            idxs = np.linspace(0, flat.size - 1, num=min(5, flat.size), dtype=int)
            for idx in idxs:
                orig = flat[idx]
                flat[idx] = orig + eps
                up = loss()
                flat[idx] = orig - eps
                down = loss()
                flat[idx] = orig
                numeric = (up - down) / (2 * eps)
                analytic = grads[key].ravel()[idx]
                assert analytic == pytest.approx(numeric, rel=1e-4, abs=1e-7), key


class TestTraining:
    def test_loss_decreases(self):
        series = sine_series(200)
        model = LstmForecaster(
            LstmConfig(lookback=8, hidden_size=12, n_layers=1, epochs=25, seed=0)
        )
        model.fit(series)
        assert model.loss_history[-1] < model.loss_history[0] * 0.5

    def test_learns_sine_better_than_ma(self):
        series = sine_series(400, noise=2.0)
        train, test = series[:320], series[320:]
        lstm = LstmForecaster(
            LstmConfig(lookback=24, hidden_size=16, n_layers=1, epochs=40, seed=1)
        )
        err_lstm = rolling_rmse(lstm, train, test, horizon=1)
        err_ma = rolling_rmse(MovingAverage(window=3), train, test, horizon=1)
        assert err_lstm < err_ma

    def test_reproducible_given_seed(self):
        series = sine_series(150)
        cfg = LstmConfig(lookback=6, hidden_size=8, n_layers=1, epochs=5, seed=7)
        a = LstmForecaster(cfg).fit(series).forecast(series, 3)
        b = LstmForecaster(cfg).fit(series).forecast(series, 3)
        assert np.allclose(a, b)

    def test_forecast_before_fit_raises(self):
        model = LstmForecaster(LstmConfig(lookback=4))
        with pytest.raises(RuntimeError):
            model.forecast(np.arange(10.0), 1)

    def test_forecast_short_history_raises(self):
        series = sine_series(150)
        model = LstmForecaster(
            LstmConfig(lookback=12, hidden_size=8, n_layers=1, epochs=2)
        ).fit(series)
        with pytest.raises(ValueError):
            model.forecast(np.arange(5.0), 1)

    def test_multi_step_forecast_length(self):
        series = sine_series(150)
        model = LstmForecaster(
            LstmConfig(lookback=8, hidden_size=8, n_layers=1, epochs=5)
        ).fit(series)
        out = model.forecast(series, 6)
        assert out.shape == (6,)
        assert np.all(np.isfinite(out))

    def test_bad_horizon_rejected(self):
        series = sine_series(150)
        model = LstmForecaster(
            LstmConfig(lookback=8, hidden_size=8, n_layers=1, epochs=2)
        ).fit(series)
        with pytest.raises(ValueError):
            model.forecast(series, 0)

    def test_series_too_short_for_lookback(self):
        model = LstmForecaster(LstmConfig(lookback=50))
        with pytest.raises(ValueError):
            model.fit(np.arange(20.0))

    def test_two_layer_forward_shapes(self):
        model = LstmForecaster(
            LstmConfig(lookback=5, hidden_size=7, n_layers=3, epochs=1)
        )
        X = np.zeros((4, 5))
        y, caches = model._forward(X)
        assert y.shape == (4,)
        assert len(caches) == 3
        assert caches[0].h_seq.shape == (4, 5, 7)
