"""Tests for repro.forecast.multicell (shared-weight per-grid LSTM)."""

import numpy as np
import pytest

from repro.forecast import LstmConfig, MultiCellForecaster


def make_city_matrix(hours=240, cells=6, seed=0, noise=0.5):
    """Per-cell diurnal series with cell-specific scales and phases."""
    rng = np.random.default_rng(seed)
    t = np.arange(hours)
    out = np.empty((hours, cells))
    for c in range(cells):
        scale = 5.0 + 10.0 * c
        phase = rng.uniform(0, 2 * np.pi)
        out[:, c] = scale * (1.2 + np.sin(2 * np.pi * t / 24 + phase))
        out[:, c] += rng.normal(0, noise, size=hours)
    return np.clip(out, 0, None)


def small_config(**kw):
    defaults = dict(lookback=12, hidden_size=12, n_layers=1, epochs=20, seed=0)
    defaults.update(kw)
    return LstmConfig(**defaults)


class TestValidation:
    def test_min_std_validated(self):
        with pytest.raises(ValueError):
            MultiCellForecaster(small_config(), min_std=-1.0)

    def test_fit_requires_matrix(self):
        with pytest.raises(ValueError):
            MultiCellForecaster(small_config()).fit(np.zeros(100))

    def test_fit_requires_enough_hours(self):
        with pytest.raises(ValueError):
            MultiCellForecaster(small_config()).fit(np.zeros((5, 3)))

    def test_fit_requires_variance(self):
        with pytest.raises(ValueError):
            MultiCellForecaster(small_config()).fit(np.ones((100, 3)))

    def test_forecast_before_fit(self):
        with pytest.raises(RuntimeError):
            MultiCellForecaster(small_config()).forecast(np.zeros((24, 3)), 1)

    def test_n_cells_before_fit(self):
        with pytest.raises(RuntimeError):
            MultiCellForecaster(small_config()).n_cells

    def test_forecast_layout_mismatch(self):
        m = MultiCellForecaster(small_config()).fit(make_city_matrix(cells=4))
        with pytest.raises(ValueError):
            m.forecast(make_city_matrix(cells=5), 2)

    def test_forecast_short_history(self):
        m = MultiCellForecaster(small_config()).fit(make_city_matrix())
        with pytest.raises(ValueError):
            m.forecast(make_city_matrix(hours=5), 1)

    def test_bad_horizon(self):
        m = MultiCellForecaster(small_config()).fit(make_city_matrix())
        with pytest.raises(ValueError):
            m.forecast(make_city_matrix(), 0)


class TestForecasting:
    @pytest.fixture(scope="class")
    def fitted(self):
        matrix = make_city_matrix(hours=360, cells=6, seed=1)
        model = MultiCellForecaster(small_config(epochs=30)).fit(matrix)
        return model, matrix

    def test_shape(self, fitted):
        model, matrix = fitted
        out = model.forecast(matrix, 6)
        assert out.shape == (6, 6)
        assert np.all(out >= 0)

    def test_tracks_each_cell_scale(self, fitted):
        """Forecasts respect per-cell magnitudes despite shared weights."""
        model, matrix = fitted
        out = model.forecast(matrix, 24)
        cell_means = matrix.mean(axis=0)
        pred_means = out.mean(axis=0)
        # Bigger cells forecast bigger: rank correlation must be perfect.
        assert np.all(np.argsort(cell_means) == np.argsort(pred_means))

    def test_accuracy_beats_per_cell_mean(self):
        matrix = make_city_matrix(hours=360, cells=6, seed=2)
        train, test = matrix[:312], matrix[312:336]
        model = MultiCellForecaster(small_config(epochs=30)).fit(train)
        pred = model.forecast(train, 24)
        err_model = np.sqrt(np.mean((pred - test) ** 2))
        err_mean = np.sqrt(np.mean((train.mean(axis=0)[None, :] - test) ** 2))
        assert err_model < err_mean

    def test_constant_cell_forecasts_its_mean(self):
        matrix = make_city_matrix(hours=240, cells=3, seed=3)
        matrix[:, 1] = 7.0  # a dead cell
        model = MultiCellForecaster(small_config()).fit(matrix)
        out = model.forecast(matrix, 4)
        assert np.allclose(out[:, 1], 7.0)

    def test_totals_sum_cells(self, fitted):
        model, matrix = fitted
        per_cell = model.forecast(matrix, 5)
        totals = model.forecast_totals(matrix, 5)
        assert np.allclose(totals, per_cell.sum(axis=1))

    def test_is_fitted_flag(self):
        model = MultiCellForecaster(small_config())
        assert not model.is_fitted
        model.fit(make_city_matrix())
        assert model.is_fitted
