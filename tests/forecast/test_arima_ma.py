"""Tests for repro.forecast.arima and moving_average."""

import numpy as np
import pytest

from repro.forecast import Arima, MovingAverage, rolling_rmse


def ar1_series(n=300, phi=0.8, c=5.0, sigma=1.0, seed=0):
    rng = np.random.default_rng(seed)
    x = np.zeros(n)
    for t in range(1, n):
        x[t] = c + phi * x[t - 1] + rng.normal(0, sigma)
    return x


class TestMovingAverage:
    def test_bad_window_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage(window=0)

    def test_forecast_is_window_mean(self):
        ma = MovingAverage(window=3)
        out = ma.forecast(np.array([1.0, 2.0, 3.0, 4.0, 5.0]), horizon=2)
        assert np.allclose(out, 4.0)

    def test_window_larger_than_history(self):
        ma = MovingAverage(window=10)
        out = ma.forecast(np.array([2.0, 4.0]), horizon=1)
        assert out[0] == pytest.approx(3.0)

    def test_empty_history_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage(window=2).forecast(np.array([]), horizon=1)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            MovingAverage().forecast(np.arange(5.0), horizon=0)

    def test_fit_returns_self(self):
        ma = MovingAverage()
        assert ma.fit(np.arange(10.0)) is ma


class TestArimaConstruction:
    def test_negative_orders_rejected(self):
        with pytest.raises(ValueError):
            Arima(p=-1)
        with pytest.raises(ValueError):
            Arima(d=-1)
        with pytest.raises(ValueError):
            Arima(q=-1)

    def test_forecast_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Arima(p=1).forecast(np.arange(20.0), 1)

    def test_short_series_rejected(self):
        with pytest.raises(ValueError):
            Arima(p=4).fit(np.arange(5.0))

    def test_is_fitted_flag(self):
        model = Arima(p=1)
        assert not model.is_fitted
        model.fit(ar1_series(50))
        assert model.is_fitted


class TestArimaEstimation:
    def test_recovers_ar1_coefficient(self):
        series = ar1_series(n=500, phi=0.7, c=3.0, sigma=0.5, seed=1)
        model = Arima(p=1, d=0, q=0).fit(series)
        phi_hat = model._params[1]
        assert phi_hat == pytest.approx(0.7, abs=0.1)

    def test_mean_only_model(self):
        series = np.full(50, 7.0)
        model = Arima(p=0, d=0, q=0).fit(series)
        out = model.forecast(series, 3)
        assert np.allclose(out, 7.0)

    def test_differencing_handles_trend(self):
        t = np.arange(100.0)
        trend = 2.0 * t + 5.0
        model = Arima(p=1, d=1, q=0).fit(trend)
        out = model.forecast(trend, 3)
        # A linear trend differenced once is constant: forecast continues it.
        assert out[0] == pytest.approx(205.0, abs=2.0)
        assert out[2] == pytest.approx(209.0, abs=3.0)

    def test_d2_quadratic_trend(self):
        t = np.arange(60.0)
        quad = 0.5 * t**2
        model = Arima(p=0, d=2, q=0).fit(quad)
        out = model.forecast(quad, 2)
        assert out[0] == pytest.approx(0.5 * 60**2, rel=0.05)

    def test_ma_term_fits(self):
        rng = np.random.default_rng(2)
        eps = rng.normal(0, 1, size=400)
        series = 10 + eps[1:] + 0.6 * eps[:-1]
        model = Arima(p=0, d=0, q=1).fit(series)
        out = model.forecast(series, 2)
        assert np.all(np.isfinite(out))

    def test_forecast_horizon_length(self):
        model = Arima(p=2, d=0).fit(ar1_series(100))
        assert model.forecast(ar1_series(100), 6).shape == (6,)

    def test_short_history_forecast_rejected(self):
        model = Arima(p=3, d=1).fit(ar1_series(100))
        with pytest.raises(ValueError):
            model.forecast(np.arange(3.0), 1)


class TestRelativeAccuracy:
    def test_arima_beats_ma_on_ar_process(self):
        series = ar1_series(n=400, phi=0.85, sigma=1.0, seed=3)
        train, test = series[:320], series[320:]
        err_arima = rolling_rmse(Arima(p=2, d=0), train, test, horizon=1)
        err_ma = rolling_rmse(MovingAverage(window=5), train, test, horizon=1)
        assert err_arima < err_ma
