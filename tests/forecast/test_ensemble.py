"""Tests for repro.forecast.ensemble."""

import numpy as np
import pytest

from repro.forecast import (
    Arima,
    HoltWinters,
    MeanEnsemble,
    MovingAverage,
    SeasonalNaive,
    ValidationSelector,
    rolling_rmse,
)


def seasonal_series(n=480, period=24, noise=2.0, seed=0):
    rng = np.random.default_rng(seed)
    t = np.arange(n)
    return 40 + 25 * np.sin(2 * np.pi * t / period) + rng.normal(0, noise, size=n)


class TestMeanEnsemble:
    def test_empty_members_rejected(self):
        with pytest.raises(ValueError):
            MeanEnsemble([])

    def test_average_of_members(self):
        class Const(MovingAverage):
            def __init__(self, v):
                super().__init__(window=1)
                self.v = v

            def forecast(self, history, horizon):
                return np.full(horizon, self.v)

        ens = MeanEnsemble([Const(2.0), Const(4.0)])
        out = ens.forecast(np.arange(5.0), 3)
        assert np.allclose(out, 3.0)

    def test_fit_propagates(self):
        arima = Arima(p=1)
        ens = MeanEnsemble([arima, MovingAverage()])
        ens.fit(seasonal_series())
        assert arima.is_fitted

    def test_bad_horizon(self):
        with pytest.raises(ValueError):
            MeanEnsemble([MovingAverage()]).forecast(np.arange(5.0), 0)

    def test_ensemble_reasonable_on_seasonal_data(self):
        series = seasonal_series(seed=3)
        train, test = series[:384], series[384:]
        ens = MeanEnsemble([SeasonalNaive(period=24), SeasonalNaive(period=24, window=3)])
        err = rolling_rmse(ens, train, test, horizon=6)
        err_ma = rolling_rmse(MovingAverage(window=3), train, test, horizon=6)
        assert err < err_ma


class TestValidationSelector:
    def test_empty_candidates_rejected(self):
        with pytest.raises(ValueError):
            ValidationSelector({})

    def test_bad_fraction_rejected(self):
        with pytest.raises(ValueError):
            ValidationSelector({"ma": MovingAverage()}, validation_fraction=0.0)

    def test_bad_horizon_rejected(self):
        with pytest.raises(ValueError):
            ValidationSelector({"ma": MovingAverage()}, horizon=0)

    def test_forecast_before_fit_raises(self):
        sel = ValidationSelector({"ma": MovingAverage()})
        with pytest.raises(RuntimeError):
            sel.forecast(np.arange(10.0), 1)

    def test_picks_seasonal_model_on_seasonal_data(self):
        series = seasonal_series(seed=1)
        sel = ValidationSelector(
            {
                "ma": MovingAverage(window=3),
                "snaive": SeasonalNaive(period=24),
            },
            horizon=6,
        )
        sel.fit(series)
        assert sel.best_name == "snaive"
        assert sel.scores["snaive"] < sel.scores["ma"]

    def test_delegates_to_winner(self):
        series = seasonal_series(seed=2)
        sel = ValidationSelector(
            {"snaive": SeasonalNaive(period=24), "ma": MovingAverage(window=2)}
        ).fit(series)
        direct = sel.candidates[sel.best_name].forecast(series, 4)
        assert np.allclose(sel.forecast(series, 4), direct)

    def test_unfittable_candidate_scored_inf(self):
        series = seasonal_series(n=120)
        sel = ValidationSelector(
            {
                "hw_too_long": HoltWinters(period=200),  # cannot fit on 90 points
                "ma": MovingAverage(window=3),
            }
        ).fit(series)
        assert sel.scores["hw_too_long"] == float("inf")
        assert sel.best_name == "ma"

    def test_all_unfittable_raises(self):
        series = np.arange(30.0)
        sel = ValidationSelector({"hw": HoltWinters(period=100)})
        with pytest.raises(ValueError):
            sel.fit(series)
