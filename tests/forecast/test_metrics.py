"""Tests for repro.forecast.metrics."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.forecast import mae, mape, rmse

vals = st.lists(
    st.floats(min_value=-1e3, max_value=1e3, allow_nan=False), min_size=1, max_size=30
)


class TestRmse:
    def test_perfect_prediction_zero(self):
        assert rmse([1, 2, 3], [1, 2, 3]) == 0.0

    def test_known_value(self):
        assert rmse([0, 0], [3, 4]) == pytest.approx(np.sqrt(12.5))

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ValueError):
            rmse([1, 2], [1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            rmse([], [])

    @given(vals)
    def test_nonnegative(self, xs):
        pred = np.asarray(xs)
        actual = pred + 1.0
        assert rmse(pred, actual) >= 0

    @given(vals)
    def test_rmse_at_least_mae(self, xs):
        pred = np.zeros(len(xs))
        assert rmse(pred, xs) >= mae(pred, xs) - 1e-12


class TestMae:
    def test_known_value(self):
        assert mae([0, 0], [3, -4]) == pytest.approx(3.5)

    def test_symmetric(self):
        assert mae([1, 2], [3, 4]) == mae([3, 4], [1, 2])


class TestMape:
    def test_known_value(self):
        assert mape([90, 110], [100, 100]) == pytest.approx(0.1)

    def test_zero_actual_uses_eps(self):
        # No division blow-up when the actual value is zero.
        assert np.isfinite(mape([1.0], [0.0]))


class TestMase:
    def test_matches_seasonal_naive_scale(self):
        import numpy as np
        from repro.forecast import mase

        train = np.tile([0.0, 10.0], 50)  # period-2 alternation
        # Naive scale with period=2 is 0... use period=1 instead:
        # |t[1:] - t[:-1]| = 10 everywhere.
        err = mase([5.0, 5.0], [0.0, 10.0], train, period=1)
        assert err == pytest.approx(0.5)

    def test_below_one_beats_naive(self):
        import numpy as np
        from repro.forecast import mase

        rng = np.random.default_rng(0)
        t = np.arange(200) % 24 + rng.normal(0, 0.1, 200)
        pred = (np.arange(200, 224) % 24).astype(float)
        actual = np.arange(200, 224) % 24 + rng.normal(0, 0.1, 24)
        assert mase(pred, actual, t, period=24) < 1.0

    def test_validation(self):
        import numpy as np
        from repro.forecast import mase

        with pytest.raises(ValueError):
            mase([1.0], [1.0], np.arange(5.0), period=0)
        with pytest.raises(ValueError):
            mase([1.0], [1.0], np.arange(5.0), period=10)
        with pytest.raises(ValueError):
            mase([1.0], [1.0], np.ones(50), period=24)  # zero scale
