"""Tests for repro.experiments.ascii_plots."""

import numpy as np
import pytest

from repro.experiments.ascii_plots import bar_chart, heatmap, sparkline


class TestSparkline:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])

    def test_constant_series_flat(self):
        assert sparkline([5, 5, 5]) == "▁▁▁"

    def test_extremes_hit_both_ends(self):
        s = sparkline([0, 10])
        assert s[0] == "▁"
        assert s[-1] == "█"

    def test_length_matches_input(self):
        assert len(sparkline(range(17))) == 17

    def test_width_resamples(self):
        assert len(sparkline(range(100), width=20)) == 20

    def test_bad_width_rejected(self):
        with pytest.raises(ValueError):
            sparkline([1, 2], width=0)

    def test_monotone_series_monotone_glyphs(self):
        s = sparkline(range(8))
        levels = "▁▂▃▄▅▆▇█"
        ranks = [levels.index(ch) for ch in s]
        assert ranks == sorted(ranks)


class TestHeatmap:
    def test_bad_input_rejected(self):
        with pytest.raises(ValueError):
            heatmap(np.zeros(5))
        with pytest.raises(ValueError):
            heatmap(np.zeros((0, 3)))

    def test_shape(self):
        out = heatmap(np.ones((3, 7)), legend=False)
        lines = out.splitlines()
        assert len(lines) == 3
        assert all(len(l) == 7 for l in lines)

    def test_zero_matrix_all_blank(self):
        out = heatmap(np.zeros((2, 4)), legend=False)
        assert out == "    \n    "

    def test_hotspot_darkest(self):
        m = np.zeros((3, 3))
        m[0, 0] = 10.0  # bottom-left in map coordinates
        lines = heatmap(m, legend=False).splitlines()
        assert lines[-1][0] == "@"  # row 0 drawn last (bottom)

    def test_legend(self):
        out = heatmap(np.ones((2, 2)))
        assert "max=1" in out


class TestBarChart:
    def test_validation(self):
        with pytest.raises(ValueError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(ValueError):
            bar_chart([], [])
        with pytest.raises(ValueError):
            bar_chart(["a"], [1], width=0)
        with pytest.raises(ValueError):
            bar_chart(["a"], [-1])

    def test_largest_bar_fills_width(self):
        out = bar_chart(["big", "small"], [10, 5], width=10)
        lines = out.splitlines()
        assert lines[0].count("█") == 10
        assert lines[1].count("█") == 5

    def test_labels_aligned(self):
        out = bar_chart(["a", "longer"], [1, 2])
        lines = out.splitlines()
        assert lines[0].index("|") == lines[1].index("|")

    def test_unit_rendered(self):
        out = bar_chart(["x"], [3], unit="$")
        assert "3$" in out

    def test_zero_values_empty_bars(self):
        out = bar_chart(["x", "y"], [0, 0])
        assert "█" not in out
