"""Tests for repro.experiments.reporting."""

import pytest

from repro.experiments import ExperimentResult, format_table


@pytest.fixture
def result():
    return ExperimentResult(
        experiment_id="Table X",
        title="demo",
        headers=["name", "value"],
        rows=[["a", 1.5], ["b", 2]],
        notes=["a note"],
    )


class TestFormatTable:
    def test_contains_headers_and_cells(self):
        text = format_table(["col1", "col2"], [["x", 1]])
        assert "col1" in text and "col2" in text and "x" in text

    def test_empty_headers_rejected(self):
        with pytest.raises(ValueError):
            format_table([], [])

    def test_ragged_row_rejected(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [["only-one"]])

    def test_float_formatting(self):
        text = format_table(["v"], [[1.234567]])
        assert "1.23" in text

    def test_integral_float_renders_as_int(self):
        text = format_table(["v"], [[2.0]])
        assert " 2" in text or text.endswith("2")

    def test_no_rows_ok(self):
        text = format_table(["a"], [])
        assert "a" in text


class TestExperimentResult:
    def test_to_text_includes_id_and_notes(self, result):
        text = result.to_text()
        assert "Table X" in text
        assert "note: a note" in text

    def test_column(self, result):
        assert result.column("value") == [1.5, 2]

    def test_column_unknown_raises(self, result):
        with pytest.raises(KeyError):
            result.column("nope")

    def test_row_by(self, result):
        assert result.row_by("name", "b") == ["b", 2]

    def test_row_by_missing_raises(self, result):
        with pytest.raises(KeyError):
            result.row_by("name", "zzz")

    def test_save_csv_roundtrip(self, result, tmp_path):
        path = tmp_path / "out.csv"
        result.save_csv(path)
        lines = path.read_text().strip().splitlines()
        assert lines[0] == "name,value"
        assert lines[1] == "a,1.5"
        assert len(lines) == 3
