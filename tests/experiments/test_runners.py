"""Integration tests: every experiment runner reproduces its paper shape.

These are the repository's end-to-end checks — each runner executes the
full pipeline (datasets -> algorithms -> reporting) at reduced scale and
the assertions encode the paper's qualitative claims.
"""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_fig4,
    run_fig5,
    run_fig6,
    run_fig7a,
    run_fig7b,
    run_fig10,
    run_fig11,
    run_table2,
    run_table3,
    run_table4,
    run_table5,
    run_table6,
    run_thm1,
)


class TestRegistry:
    def test_all_paper_artifacts_covered(self):
        expected = {
            "fig4", "fig5", "fig6", "fig7a", "fig7b", "fig8", "fig9",
            "fig10", "fig11", "fig12", "table2", "table3", "table4",
            "table5", "table6", "thm1",
        }
        assert expected <= set(EXPERIMENTS)

    def test_runners_accept_seed(self):
        import inspect

        for name, fn in EXPERIMENTS.items():
            assert "seed" in inspect.signature(fn).parameters, name


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig4(trials=6)

    def test_meyerson_worse_total(self, result):
        offline = result.row_by("algorithm", "offline")
        meyerson = result.row_by("algorithm", "meyerson")
        assert meyerson[4] > offline[4]

    def test_meyerson_more_stations(self, result):
        assert result.row_by("algorithm", "meyerson")[1] > result.row_by(
            "algorithm", "offline"
        )[1]

    def test_trials_validated(self):
        with pytest.raises(ValueError):
            run_fig4(trials=0)


class TestFig5:
    def test_type_ii_hits_zero_at_L(self):
        result = run_fig5(tolerance=200.0)
        row = result.row_by("c (m)", 200.0)
        assert row[2] == pytest.approx(0.0)

    def test_type_i_tail(self):
        result = run_fig5(tolerance=200.0)
        row = result.row_by("c (m)", 600.0)
        assert row[1] > 0.2

    def test_n_points_validated(self):
        with pytest.raises(ValueError):
            run_fig5(n_points=1)


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fig6(trials=5)

    def test_esharing_cheaper_than_meyerson(self, result):
        es = result.row_by("algorithm", "esharing")
        mey = result.row_by("algorithm", "meyerson")
        assert es[4] < mey[4]

    def test_unknown_distribution_opens_online(self, result):
        note = next(n for n in result.notes if "unknown distribution" in n)
        opened = float(note.split(":")[1].split("stations")[0])
        assert opened >= 1.0


class TestFig7:
    def test_fig7a_monotone_saving(self):
        result = run_fig7a(n=20)
        savings = result.column("saving ratio")
        assert all(a >= b for a, b in zip(savings, savings[1:]))

    def test_fig7a_endpoint_zero(self):
        result = run_fig7a(n=10)
        assert result.rows[-1][2] == pytest.approx(0.0)

    def test_fig7b_saving_grows_with_delay_cost(self):
        result = run_fig7b(n=20)
        # For fixed q=1.0 and m=n//2, the saving rises with d.
        rows = [r for r in result.rows if r[0] == 1.0]
        col = result.headers.index("m=10")
        vals = [r[col] for r in rows]
        assert vals == sorted(vals)

    def test_small_n_rejected(self):
        with pytest.raises(ValueError):
            run_fig7a(n=1)


class TestTable2:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table2(fast=True)

    def test_lstm_beats_statistical(self, result):
        rmse = {(r[0], r[1]): r[2] for r in result.rows}
        best_lstm = min(v for (m, _), v in rmse.items() if m.startswith("LSTM"))
        best_stat = min(v for (m, _), v in rmse.items() if not m.startswith("LSTM"))
        assert best_lstm < best_stat

    def test_back12_beats_back3(self, result):
        rmse = {(r[0], r[1]): r[2] for r in result.rows}
        assert rmse[("LSTM 1-layer", "back=12")] < rmse[("LSTM 1-layer", "back=3")]

    def test_all_rmse_positive(self, result):
        assert all(r[2] > 0 for r in result.rows)


class TestTable3:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table3(trials=10)

    def test_no_penalty_wins_walking_everywhere(self, result):
        assert set(result.extras["min_walking"].values()) == {"no_penalty"}

    def test_uniform_winner_type_i(self, result):
        assert result.extras["winners"]["uniform"] == "type_i"

    def test_normal_winner_type_ii(self, result):
        assert result.extras["winners"]["normal"] == "type_ii"

    def test_penalties_reduce_stations(self, result):
        for dist in ("uniform", "poisson", "normal"):
            rows = {r[1]: r for r in result.rows if r[0] == dist}
            assert rows["type_ii"][5] < rows["no_penalty"][5]


class TestTable4:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table4(volume=2500)

    def test_block_structure(self, result):
        m = result.extras["matrix"]
        wd = np.nanmean([m[a, b] for a in range(5) for b in range(a + 1, 5)])
        cross = np.nanmean([m[a, b] for a in range(5) for b in (5, 6)])
        assert wd > cross + 3.0

    def test_weekend_pair_similar(self, result):
        m = result.extras["matrix"]
        cross = np.nanmean([m[a, b] for a in range(5) for b in (5, 6)])
        assert m[5, 6] > cross

    def test_matrix_symmetric(self, result):
        m = result.extras["matrix"]
        assert np.allclose(m, m.T, equal_nan=True)


class TestTable5:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table5(volume=900)

    def test_offline_is_cheapest(self, result):
        totals = result.column("total")
        offline = result.row_by("algorithm", "Offline*")[4]
        assert offline == min(totals)

    def test_esharing_beats_meyerson(self, result):
        es = result.row_by("algorithm", "E-sharing (actual)")[4]
        mey = result.row_by("algorithm", "Meyerson")[4]
        assert es < mey

    def test_online_kmeans_worst(self, result):
        okm = result.row_by("algorithm", "Online k-means")[4]
        assert okm == max(result.column("total"))

    def test_esharing_station_count_near_offline(self, result):
        es_n = result.row_by("algorithm", "E-sharing (actual)")[1]
        off_n = result.row_by("algorithm", "Offline*")[1]
        mey_n = result.row_by("algorithm", "Meyerson")[1]
        assert off_n <= es_n < mey_n * 1.5


class TestTable6:
    @pytest.fixture(scope="class")
    def result(self):
        return run_table6(volume=800)

    def test_incentives_save_cost(self, result):
        totals = result.extras["totals"]
        assert min(totals[a] for a in totals if a > 0) < totals[0.0]

    def test_moderate_alpha_optimal(self, result):
        totals = result.extras["totals"]
        best = min(totals, key=totals.get)
        assert 0.0 < best < 1.0

    def test_percent_charged_improves(self, result):
        pct = {r[0]: r[6] for r in result.rows}
        assert pct["alpha=0.7"] > pct["alpha=0.0"]

    def test_distance_shrinks(self, result):
        dist = {r[0]: r[7] for r in result.rows}
        assert dist["alpha=0.7"] < dist["alpha=0.0"]


class TestFig10:
    def test_esharing_tracks_offline(self):
        result = run_fig10(n_windows=5, volume=900)
        means = result.extras["means"]
        assert means["offline"] <= means["esharing"]
        assert means["esharing"] < means["online_kmeans"]

    def test_windows_validated(self):
        with pytest.raises(ValueError):
            run_fig10(n_windows=0)


class TestFig11:
    def test_incentives_reduce_sites(self):
        result = run_fig11(volume=800)
        note = result.notes[0]
        # "demand sites at tour time: X (alpha=0) vs Y (alpha=0.7)"
        parts = note.split(":")[1]
        base = int(parts.split("(")[0])
        inc = int(parts.split("vs")[1].split("(")[0])
        assert inc < base


class TestPipeline:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import run_pipeline

        return run_pipeline(seed=0, volume=800)

    def test_scorecard_complete(self, result):
        quantities = result.column("quantity")
        for expected in (
            "forecast model selected",
            "tier-1 total cost (km)",
            "tier-2 total cost ($)",
            "% charged within shift",
        ):
            assert expected in quantities

    def test_tier1_beats_meyerson(self, result):
        note = next(n for n in result.notes if "Meyerson baseline" in n)
        saving = float(note.split("is")[1].split("%")[0])
        assert saving > 0

    def test_forecast_close_to_actual(self, result):
        row = result.row_by("quantity", "predicted / actual test-day trips")
        predicted, actual = float(row[1]), float(row[2])
        assert abs(predicted - actual) / actual < 0.5

    def test_events_logged(self, result):
        log = result.extras["event_log"]
        assert len(log) > 0
        report = result.extras["report"]
        from repro.sim import TripRequested

        assert len(log.of_type(TripRequested)) == report.trips_requested


class TestThm1:
    def test_ratio_grows(self):
        result = run_thm1(max_n=20, trials=20)
        ratios = result.column("mean online/offline ratio")
        assert ratios[-1] > ratios[0]
        assert ratios[-1] > 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            run_thm1(max_n=1)
        with pytest.raises(ValueError):
            run_thm1(trials=0)
