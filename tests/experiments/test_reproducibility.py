"""Reproducibility meta-tests: same seed, identical output.

DESIGN.md promises bit-for-bit determinism given a seed; these tests run
the cheaper experiments twice and diff the rows, and verify that a
*different* seed actually changes stochastic outputs.
"""

import pytest

from repro.experiments import (
    run_fig4,
    run_fig6,
    run_fig9,
    run_table3,
    run_thm1,
)


def rows_of(result):
    return [tuple(row) for row in result.rows]


class TestSameSeedSameOutput:
    def test_fig4(self):
        a = run_fig4(seed=3, trials=5)
        b = run_fig4(seed=3, trials=5)
        assert rows_of(a) == rows_of(b)

    def test_fig6(self):
        a = run_fig6(seed=3, trials=4)
        b = run_fig6(seed=3, trials=4)
        assert rows_of(a) == rows_of(b)

    def test_fig9(self):
        a = run_fig9(seed=3)
        b = run_fig9(seed=3)
        assert rows_of(a) == rows_of(b)
        assert a.extras["scatters"] == b.extras["scatters"]

    def test_table3(self):
        a = run_table3(seed=3, trials=5)
        b = run_table3(seed=3, trials=5)
        assert rows_of(a) == rows_of(b)

    def test_thm1(self):
        a = run_thm1(max_n=12, trials=10, seed=3)
        b = run_thm1(max_n=12, trials=10, seed=3)
        assert rows_of(a) == rows_of(b)


class TestDifferentSeedDifferentOutput:
    def test_fig4_varies(self):
        a = run_fig4(seed=1, trials=5)
        b = run_fig4(seed=2, trials=5)
        assert rows_of(a) != rows_of(b)

    def test_fig9_varies(self):
        a = run_fig9(seed=1)
        b = run_fig9(seed=2)
        assert rows_of(a) != rows_of(b)
