"""Public-API quality gates.

Every subpackage must export exactly what its ``__all__`` promises, and
every public item must carry a docstring — the library's contract with
downstream users.
"""

import importlib
import inspect

import pytest

SUBPACKAGES = [
    "repro",
    "repro.geo",
    "repro.stats",
    "repro.datasets",
    "repro.energy",
    "repro.forecast",
    "repro.core",
    "repro.incentives",
    "repro.routing",
    "repro.sim",
    "repro.experiments",
    "repro.resilience",
    "repro.parallel",
    "repro.shard",
    "repro.loadgen",
]


@pytest.mark.parametrize("name", SUBPACKAGES)
def test_module_imports(name):
    importlib.import_module(name)


@pytest.mark.parametrize("name", [m for m in SUBPACKAGES if m != "repro"])
def test_all_entries_resolve(name):
    module = importlib.import_module(name)
    assert hasattr(module, "__all__"), f"{name} must declare __all__"
    for item in module.__all__:
        assert hasattr(module, item), f"{name}.__all__ lists missing {item!r}"


@pytest.mark.parametrize("name", [m for m in SUBPACKAGES if m != "repro"])
def test_public_items_documented(name):
    module = importlib.import_module(name)
    for item in module.__all__:
        obj = getattr(module, item)
        if inspect.ismodule(obj):
            continue
        if inspect.isclass(obj) or inspect.isfunction(obj):
            assert (obj.__doc__ or "").strip(), f"{name}.{item} lacks a docstring"


@pytest.mark.parametrize("name", [m for m in SUBPACKAGES if m != "repro"])
def test_public_classes_have_documented_public_methods(name):
    module = importlib.import_module(name)
    for item in module.__all__:
        obj = getattr(module, item)
        if not inspect.isclass(obj):
            continue
        for meth_name, meth in inspect.getmembers(obj, inspect.isfunction):
            if meth_name.startswith("_"):
                continue
            if meth.__qualname__.split(".")[0] != obj.__name__:
                continue  # inherited
            assert (meth.__doc__ or "").strip(), (
                f"{name}.{item}.{meth_name} lacks a docstring"
            )


def test_version_exposed():
    import repro

    assert repro.__version__
