"""Tests for repro.datasets.scenarios."""

from datetime import datetime

import numpy as np
import pytest

from repro.datasets import DemandEvent, Scenario, SyntheticConfig, default_city
from repro.geo import Point


def small_config():
    return SyntheticConfig(trips_per_weekday=400, trips_per_weekend_day=300)


class TestDemandEvent:
    def test_window_validated(self):
        with pytest.raises(ValueError):
            DemandEvent(
                start=datetime(2017, 5, 10, 20),
                end=datetime(2017, 5, 10, 18),
                location=Point(0, 0),
            )

    def test_radius_validated(self):
        with pytest.raises(ValueError):
            DemandEvent(
                start=datetime(2017, 5, 10, 18), end=datetime(2017, 5, 10, 20),
                location=Point(0, 0), radius_m=0.0,
            )

    def test_kind_validated(self):
        with pytest.raises(ValueError):
            DemandEvent(
                start=datetime(2017, 5, 10, 18), end=datetime(2017, 5, 10, 20),
                location=Point(0, 0), kind="party",
            )

    def test_intensity_validated(self):
        with pytest.raises(ValueError):
            DemandEvent(
                start=datetime(2017, 5, 10, 18), end=datetime(2017, 5, 10, 20),
                location=Point(0, 0), intensity=1.5,
            )

    def test_active_at_window_semantics(self):
        e = DemandEvent(
            start=datetime(2017, 5, 10, 18), end=datetime(2017, 5, 10, 20),
            location=Point(0, 0),
        )
        assert e.active_at(datetime(2017, 5, 10, 18))
        assert e.active_at(datetime(2017, 5, 10, 19, 59))
        assert not e.active_at(datetime(2017, 5, 10, 20))
        assert not e.active_at(datetime(2017, 5, 10, 17, 59))


class TestScenario:
    def test_days_validated(self):
        scenario = Scenario(city=default_city(), config=small_config())
        with pytest.raises(ValueError):
            scenario.generate(datetime(2017, 5, 10), days=0)

    def test_no_events_matches_base_statistics(self):
        scenario = Scenario(city=default_city(), config=small_config())
        ds = scenario.generate(datetime(2017, 5, 10), days=1, seed=0)
        assert 300 <= len(ds) <= 500

    def test_surge_concentrates_in_window_only(self):
        city = default_city()
        venue = Point(2800, 2800)
        event = DemandEvent(
            start=datetime(2017, 5, 10, 18), end=datetime(2017, 5, 10, 21),
            location=venue, radius_m=200.0, kind="surge", intensity=0.6,
        )
        scenario = Scenario(city=city, config=small_config(), events=[event])
        ds = scenario.generate(datetime(2017, 5, 10), days=1, seed=1)

        def near_rate(records):
            if not records:
                return 0.0
            return sum(1 for r in records if r.end.distance_to(venue) < 300) / len(records)

        in_window = [r for r in ds if 18 <= r.start_time.hour < 21]
        out_window = [r for r in ds if r.start_time.hour < 17]
        assert near_rate(in_window) > 0.35
        assert near_rate(out_window) < 0.1

    def test_closure_empties_area(self):
        city = default_city()
        center = Point(1500, 1500)
        event = DemandEvent(
            start=datetime(2017, 5, 10, 0), end=datetime(2017, 5, 11, 0),
            location=center, radius_m=400.0, kind="closure",
        )
        scenario = Scenario(city=city, config=small_config(), events=[event])
        ds = scenario.generate(datetime(2017, 5, 10), days=1, seed=2)
        inside = [r for r in ds if r.end.distance_to(center) < 400.0]
        assert not inside

    def test_closure_pushes_to_boundary(self):
        city = default_city()
        center = Point(1500, 1500)
        event = DemandEvent(
            start=datetime(2017, 5, 10, 0), end=datetime(2017, 5, 11, 0),
            location=center, radius_m=400.0, kind="closure",
        )
        base = Scenario(city=city, config=small_config())
        with_closure = Scenario(city=city, config=small_config(), events=[event])
        ds_base = base.generate(datetime(2017, 5, 10), days=1, seed=3)
        ds_closed = with_closure.generate(datetime(2017, 5, 10), days=1, seed=3)
        # Same seed => same base trips; displaced ones land near the ring.
        assert len(ds_base) == len(ds_closed)
        moved = [
            (a, b)
            for a, b in zip(ds_base, ds_closed)
            if a.end != b.end
        ]
        assert moved
        for _, b in moved:
            assert 380.0 <= b.end.distance_to(center) <= 460.0

    def test_add_event_chains(self):
        scenario = Scenario(city=default_city(), config=small_config())
        out = scenario.add_event(
            DemandEvent(
                start=datetime(2017, 5, 10, 8), end=datetime(2017, 5, 10, 9),
                location=Point(100, 100),
            )
        )
        assert out is scenario
        assert len(scenario.events) == 1

    def test_reproducible(self):
        scenario = Scenario(city=default_city(), config=small_config())
        a = scenario.generate(datetime(2017, 5, 10), days=1, seed=9)
        b = scenario.generate(datetime(2017, 5, 10), days=1, seed=9)
        assert a.destinations() == b.destinations()
