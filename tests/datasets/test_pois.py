"""Tests for repro.datasets.pois."""

import numpy as np
import pytest

from repro.datasets import CityModel, POI, POICategory, default_city
from repro.datasets.pois import PARK, OFFICE, SUBWAY
from repro.geo import BoundingBox, Point


@pytest.fixture
def city():
    return default_city()


class TestPOICategory:
    def test_weekday_vs_weekend_weight(self):
        poi = POI(Point(100, 100), OFFICE)
        assert poi.weight(weekend=False) > poi.weight(weekend=True)
        park = POI(Point(100, 100), PARK)
        assert park.weight(weekend=True) > park.weight(weekend=False)


class TestCityModel:
    def test_poi_outside_region_rejected(self):
        box = BoundingBox.square(100.0)
        with pytest.raises(ValueError):
            CityModel(box=box, pois=[POI(Point(200, 200), SUBWAY)])

    def test_hourly_profile_normalised(self, city):
        for weekend in (False, True):
            profile = city.hourly_profile(weekend)
            assert profile.shape == (24,)
            assert profile.sum() == pytest.approx(1.0)
            assert (profile >= 0).all()

    def test_weekday_profile_has_commute_peaks(self, city):
        profile = city.hourly_profile(weekend=False)
        morning = profile[7:10].sum()
        midday = profile[11:14].sum()
        evening = profile[17:20].sum()
        assert morning > midday
        assert evening > midday

    def test_weekend_profile_single_broad_peak(self, city):
        profile = city.hourly_profile(weekend=True)
        afternoon = profile[12:18].sum()
        assert afternoon > 0.4

    def test_poi_weights_normalised(self, city):
        for weekend in (False, True):
            w = city.poi_weights(weekend)
            assert w.sum() == pytest.approx(1.0)
            assert (w >= 0).all()

    def test_poi_weights_empty_city_raises(self):
        empty = CityModel(box=BoundingBox.square(100.0), pois=[])
        with pytest.raises(ValueError):
            empty.poi_weights(False)

    def test_sample_destination_inside_region(self, city):
        rng = np.random.default_rng(0)
        for _ in range(200):
            assert city.box.contains(city.sample_destination(rng, weekend=False))

    def test_weekday_weekend_regimes_differ(self, city):
        rng = np.random.default_rng(1)
        wd = np.array([city.sample_destination(rng, False).as_tuple() for _ in range(600)])
        we = np.array([city.sample_destination(rng, True).as_tuple() for _ in range(600)])
        # Centroids of the two regimes should be visibly apart (>50 m).
        assert np.linalg.norm(wd.mean(axis=0) - we.mean(axis=0)) > 50.0


class TestDefaultCity:
    def test_deterministic(self):
        a = default_city(seed=7)
        b = default_city(seed=7)
        assert [p.location for p in a.pois] == [p.location for p in b.pois]

    def test_seed_changes_layout(self):
        a = default_city(seed=1)
        b = default_city(seed=2)
        assert [p.location for p in a.pois] != [p.location for p in b.pois]

    def test_field_is_3km_square(self):
        city = default_city()
        assert city.box.width == pytest.approx(3000.0)
        assert city.box.height == pytest.approx(3000.0)

    def test_has_multiple_categories(self):
        names = {p.category.name for p in default_city().pois}
        assert {"subway", "office", "residential", "park"} <= names
