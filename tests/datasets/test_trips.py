"""Tests for repro.datasets.trips."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.datasets import TripDataset, TripRecord
from repro.geo import BoundingBox, Point, UniformGrid


def make_record(i, hour=8, day=10, end=None):
    return TripRecord(
        order_id=i,
        user_id=i % 3,
        bike_id=i % 5,
        bike_type=1,
        start_time=datetime(2017, 5, day, hour, i % 60),
        start=Point(10.0 * i, 0.0),
        end=end or Point(10.0 * i, 100.0),
    )


@pytest.fixture
def dataset():
    return TripDataset([make_record(i, hour=8 + i % 3, day=10 + i % 4) for i in range(20)])


class TestTripRecord:
    def test_distance(self):
        r = make_record(0)
        assert r.distance == pytest.approx(100.0)

    def test_with_end(self):
        r = make_record(0).with_end(Point(3, 4))
        assert r.end == Point(3, 4)
        assert r.order_id == 0


class TestTripDataset:
    def test_sorted_by_time(self):
        late = make_record(0, hour=20)
        early = make_record(1, hour=6)
        ds = TripDataset([late, early])
        assert ds[0].start_time < ds[1].start_time

    def test_len_and_iter(self, dataset):
        assert len(dataset) == 20
        assert len(list(dataset)) == 20

    def test_span(self, dataset):
        first, last = dataset.span
        assert first <= last

    def test_span_empty_raises(self):
        with pytest.raises(ValueError):
            TripDataset([]).span

    def test_between(self, dataset):
        start = datetime(2017, 5, 11)
        end = datetime(2017, 5, 12)
        sub = dataset.between(start, end)
        assert all(start <= r.start_time < end for r in sub)

    def test_on_weekday(self, dataset):
        # 2017-05-10 was a Wednesday (weekday 2).
        wed = dataset.on_weekday(2)
        assert all(r.start_time.weekday() == 2 for r in wed)
        assert len(wed) > 0

    def test_on_weekday_range_check(self, dataset):
        with pytest.raises(ValueError):
            dataset.on_weekday(7)

    def test_in_hour(self, dataset):
        sub = dataset.in_hour(8)
        assert all(r.start_time.hour == 8 for r in sub)

    def test_in_hour_range_check(self, dataset):
        with pytest.raises(ValueError):
            dataset.in_hour(24)

    def test_destinations_order(self, dataset):
        dests = dataset.destinations()
        assert len(dests) == 20
        assert dests[0] == dataset[0].end

    def test_destination_array_shape(self, dataset):
        arr = dataset.destination_array()
        assert arr.shape == (20, 2)

    def test_destination_array_empty(self):
        assert TripDataset([]).destination_array().shape == (0, 2)

    def test_bounding_box_contains_everything(self, dataset):
        box = dataset.bounding_box()
        for r in dataset:
            assert box.contains(r.start)
            assert box.contains(r.end)

    def test_filter(self, dataset):
        sub = dataset.filter(lambda r: r.user_id == 0)
        assert all(r.user_id == 0 for r in sub)

    def test_split_by_day_partition(self, dataset):
        days = dataset.split_by_day()
        assert sum(len(d) for d in days.values()) == len(dataset)
        for midnight, ds in days.items():
            assert midnight.hour == 0
            assert all(r.start_time.date() == midnight.date() for r in ds)

    def test_sample(self, dataset):
        rng = np.random.default_rng(0)
        sub = dataset.sample(rng, 5)
        assert len(sub) == 5

    def test_sample_too_many_raises(self, dataset):
        with pytest.raises(ValueError):
            dataset.sample(np.random.default_rng(0), 100)


class TestDemandBinning:
    def test_demand_grid_counts_all(self, dataset):
        box = dataset.bounding_box(margin=10.0)
        grid = UniformGrid(box, cell_size=50.0)
        demand = dataset.demand_grid(grid)
        assert demand.total == len(dataset)

    def test_hourly_series_shape_and_mass(self):
        records = [make_record(i, hour=8) for i in range(5)]
        records += [make_record(i + 10, hour=9) for i in range(3)]
        ds = TripDataset(records)
        grid = UniformGrid(ds.bounding_box(margin=10.0), cell_size=100.0)
        series, stamps = ds.hourly_arrival_series(grid)
        assert series.shape[0] == len(stamps)
        assert series.sum() == len(ds)
        # Hour 0 of the series is 08:00; five trips land there.
        assert series[0].sum() == 5
        assert series[1].sum() == 3

    def test_hourly_series_fixed_window(self):
        ds = TripDataset([make_record(i, hour=8) for i in range(4)])
        grid = UniformGrid(ds.bounding_box(margin=10.0), cell_size=100.0)
        series, stamps = ds.hourly_arrival_series(
            grid, start=datetime(2017, 5, 10, 0), hours=24
        )
        assert series.shape[0] == 24
        assert stamps[0] == datetime(2017, 5, 10, 0)
        assert series[8].sum() == 4

    def test_hourly_series_empty_raises(self):
        ds = TripDataset([])
        grid = UniformGrid(BoundingBox.square(100.0), cell_size=50.0)
        with pytest.raises(ValueError):
            ds.hourly_arrival_series(grid)
