"""Tests for repro.datasets.statistics."""

from datetime import datetime

import numpy as np
import pytest

from repro.datasets import (
    SyntheticConfig,
    TripDataset,
    TripRecord,
    describe,
    mobike_like_dataset,
)
from repro.geo import BoundingBox, Point, UniformGrid


@pytest.fixture(scope="module")
def dataset():
    cfg = SyntheticConfig(trips_per_weekday=700, trips_per_weekend_day=500)
    return mobike_like_dataset(seed=5, days=7, config=cfg)


@pytest.fixture(scope="module")
def stats(dataset):
    grid = UniformGrid(dataset.bounding_box(margin=50.0), cell_size=150.0)
    return describe(dataset, grid)


class TestDescribe:
    def test_empty_rejected(self):
        grid = UniformGrid(BoundingBox.square(100.0), cell_size=50.0)
        with pytest.raises(ValueError):
            describe(TripDataset([]), grid)

    def test_counts(self, dataset, stats):
        assert stats.n_trips == len(dataset)
        assert stats.n_days == 7

    def test_volume_split_matches_config(self, stats):
        assert stats.trips_per_weekday > stats.trips_per_weekend_day

    def test_percentiles_ordered(self, stats):
        p = stats.trip_length_percentiles
        assert p[25] <= p[50] <= p[75] <= p[95]
        # Short-ride regime of [1]: median well under 3 miles.
        assert p[50] < 4800.0

    def test_hourly_profile_normalised(self, stats):
        assert sum(stats.hourly_profile) == pytest.approx(1.0)
        assert len(stats.hourly_profile) == 24

    def test_commute_peaks(self, stats):
        am, pm = stats.peak_hours
        assert 6 <= am <= 10
        assert 16 <= pm <= 20

    def test_concentration_bounds(self, stats):
        assert 0.0 < stats.top_cell_mass <= 1.0
        # POI clustering makes the top decile carry far more than 10%.
        assert stats.top_cell_mass > 0.15

    def test_to_text_contains_key_facts(self, stats):
        text = stats.to_text()
        assert "trips:" in text
        assert "peak hours" in text
        assert "p50=" in text

    def test_single_trip_dataset(self):
        ds = TripDataset([
            TripRecord(
                order_id=0, user_id=0, bike_id=0, bike_type=1,
                start_time=datetime(2017, 5, 13, 14),  # a Saturday
                start=Point(0, 0), end=Point(30, 40),
            )
        ])
        grid = UniformGrid(ds.bounding_box(margin=10.0), cell_size=50.0)
        s = describe(ds, grid)
        assert s.n_trips == 1
        assert s.trips_per_weekday == 0.0
        assert s.trips_per_weekend_day == 1.0
        assert s.trip_length_percentiles[50] == pytest.approx(50.0)
        assert s.top_cell_mass == 1.0
