"""Tests for repro.datasets.synthetic."""

from datetime import datetime

import numpy as np
import pytest

from repro.datasets import (
    SyntheticConfig,
    default_city,
    generate_day,
    generate_trips,
    mobike_like_dataset,
)
from repro.stats import ks2d_fast


class TestSyntheticConfig:
    def test_defaults_valid(self):
        SyntheticConfig()

    def test_bad_volumes_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(trips_per_weekday=0)
        with pytest.raises(ValueError):
            SyntheticConfig(trips_per_weekend_day=-1)

    def test_bad_probability_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(surge_probability=1.5)
        with pytest.raises(ValueError):
            SyntheticConfig(surge_fraction=-0.1)

    def test_bad_population_rejected(self):
        with pytest.raises(ValueError):
            SyntheticConfig(n_users=0)


class TestGenerateDay:
    def test_volume_near_expectation(self):
        rng = np.random.default_rng(0)
        city = default_city()
        recs = generate_day(rng, city, datetime(2017, 5, 10), 1000, SyntheticConfig())
        assert 850 <= len(recs) <= 1150  # Poisson(1000) within ~5 sigma

    def test_all_on_requested_day(self):
        rng = np.random.default_rng(1)
        city = default_city()
        day = datetime(2017, 5, 11)
        recs = generate_day(rng, city, day, 300, SyntheticConfig())
        assert all(r.start_time.date() == day.date() for r in recs)

    def test_endpoints_inside_region(self):
        rng = np.random.default_rng(2)
        city = default_city()
        recs = generate_day(rng, city, datetime(2017, 5, 10), 300, SyntheticConfig())
        for r in recs:
            assert city.box.contains(r.start)
            assert city.box.contains(r.end)

    def test_order_ids_offset(self):
        rng = np.random.default_rng(3)
        city = default_city()
        recs = generate_day(
            rng, city, datetime(2017, 5, 10), 50, SyntheticConfig(), order_base=1000
        )
        assert min(r.order_id for r in recs) == 1000

    def test_surge_concentrates_demand(self):
        rng = np.random.default_rng(4)
        city = default_city()
        center = city.box.center
        cfg = SyntheticConfig(surge_fraction=0.5)
        recs = generate_day(
            rng, city, datetime(2017, 5, 10), 500, cfg, surge_center=center
        )
        near = sum(1 for r in recs if r.end.distance_to(center) < 300.0)
        assert near / len(recs) > 0.4


class TestGenerateTrips:
    def test_nonpositive_days_rejected(self):
        with pytest.raises(ValueError):
            generate_trips(default_city(), datetime(2017, 5, 10), days=0)

    def test_reproducible(self):
        a = mobike_like_dataset(seed=5, days=2, config=SyntheticConfig(trips_per_weekday=100, trips_per_weekend_day=80))
        b = mobike_like_dataset(seed=5, days=2, config=SyntheticConfig(trips_per_weekday=100, trips_per_weekend_day=80))
        assert len(a) == len(b)
        assert a.destinations() == b.destinations()

    def test_weekend_volume_lower(self):
        cfg = SyntheticConfig(trips_per_weekday=500, trips_per_weekend_day=250)
        ds = mobike_like_dataset(seed=6, days=7, config=cfg)
        by_day = ds.split_by_day()
        weekday_sizes = [len(d) for day, d in by_day.items() if day.weekday() < 5]
        weekend_sizes = [len(d) for day, d in by_day.items() if day.weekday() >= 5]
        assert np.mean(weekday_sizes) > np.mean(weekend_sizes) * 1.5

    def test_trip_lengths_short_rides(self):
        cfg = SyntheticConfig(trips_per_weekday=400, trips_per_weekend_day=300, mean_trip_m=1500.0)
        ds = mobike_like_dataset(seed=7, days=1, config=cfg)
        lengths = np.array([r.distance for r in ds])
        # Clamping to the region shortens trips; the bulk should still be
        # a sub-3-mile (4.8 km) ride per [1].
        assert np.median(lengths) < 3000.0
        assert (lengths <= 4800.0).mean() > 0.95


class TestRegimeStructure:
    """The statistical properties Table IV and Fig. 8 rely on."""

    @pytest.fixture(scope="class")
    def two_weeks(self):
        cfg = SyntheticConfig(trips_per_weekday=700, trips_per_weekend_day=550)
        return mobike_like_dataset(seed=11, days=14, config=cfg)

    def test_weekday_weekday_more_similar_than_weekday_weekend(self, two_weeks):
        mon = two_weeks.on_weekday(0).destination_array()
        tue = two_weeks.on_weekday(1).destination_array()
        sat = two_weeks.on_weekday(5).destination_array()
        sim_wd = ks2d_fast(mon, tue).similarity
        sim_we = ks2d_fast(mon, sat).similarity
        assert sim_wd > sim_we

    def test_weekday_similarity_high(self, two_weeks):
        wed = two_weeks.on_weekday(2).destination_array()
        thu = two_weeks.on_weekday(3).destination_array()
        assert ks2d_fast(wed, thu).similarity > 85.0

    def test_weekend_pair_similar(self, two_weeks):
        sat = two_weeks.on_weekday(5).destination_array()
        sun = two_weeks.on_weekday(6).destination_array()
        assert ks2d_fast(sat, sun).similarity > 80.0

    def test_weekday_hourly_double_peak(self, two_weeks):
        counts = np.array(
            [len(two_weeks.on_weekday(2).in_hour(h)) for h in range(24)]
        )
        assert counts[7:10].sum() > counts[11:14].sum()
        assert counts[17:20].sum() > counts[11:14].sum()
