"""Tests for repro.datasets.mobike (CSV round-trip)."""

import csv
from datetime import datetime

import pytest

from repro.datasets import (
    MOBIKE_HEADER,
    SyntheticConfig,
    load_mobike_csv,
    mobike_like_dataset,
    save_mobike_csv,
)


@pytest.fixture
def small_dataset():
    cfg = SyntheticConfig(trips_per_weekday=60, trips_per_weekend_day=40)
    return mobike_like_dataset(seed=3, days=1, config=cfg)


class TestSaveLoad:
    def test_header_written(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        with open(path) as f:
            header = next(csv.reader(f))
        assert header == MOBIKE_HEADER

    def test_roundtrip_preserves_count_and_ids(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        assert len(loaded) == len(small_dataset)
        assert sorted(r.order_id for r in loaded) == sorted(
            r.order_id for r in small_dataset
        )

    def test_roundtrip_preserves_locations_within_geohash_cell(
        self, small_dataset, tmp_path
    ):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        orig = {r.order_id: r for r in small_dataset}
        for r in loaded:
            # Precision-7 geohash cells are ~76x153 m; centre-to-point
            # error is bounded by the half-diagonal (~86 m).
            assert r.end.distance_to(orig[r.order_id].end) < 120.0
            assert r.start.distance_to(orig[r.order_id].start) < 120.0

    def test_roundtrip_preserves_times(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        orig = {r.order_id: r for r in small_dataset}
        for r in loaded:
            assert r.start_time == orig[r.order_id].start_time

    def test_limit(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path, limit=10)
        assert len(loaded) == 10

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["orderid", "userid"])
            writer.writerow([1, 2])
        with pytest.raises(ValueError, match="missing required columns"):
            load_mobike_csv(path)

    def test_extra_columns_tolerated(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        # Append an extra column to every row.
        with open(path) as f:
            rows = list(csv.reader(f))
        rows[0].append("extra")
        for row in rows[1:]:
            row.append("x")
        with open(path, "w", newline="") as f:
            csv.writer(f).writerows(rows)
        loaded = load_mobike_csv(path)
        assert len(loaded) == len(small_dataset)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mobike_csv(tmp_path / "nope.csv")

    def test_alternate_time_format(self, tmp_path):
        path = tmp_path / "alt.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerow([1, 2, 3, 1, "2017-05-10 08:30", "wx4g0bm", "wx4g0bn"])
        loaded = load_mobike_csv(path)
        assert loaded[0].start_time.minute == 30

    def test_bad_time_rejected(self, tmp_path):
        path = tmp_path / "bad_time.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerow([1, 2, 3, 1, "10/05/17", "wx4g0bm", "wx4g0bn"])
        with pytest.raises(ValueError, match="starttime"):
            load_mobike_csv(path)


class TestTimeParsing:
    """ISO-8601 hardening of ``_parse_time``: real feeds mix the
    challenge export's space-separated format with T separators,
    fractional seconds, and explicit timezones."""

    def test_challenge_format_unchanged(self):
        from repro.datasets.mobike import _parse_time

        assert _parse_time("2017-05-10 08:30:15") == datetime(2017, 5, 10, 8, 30, 15)

    def test_iso_t_separator(self):
        from repro.datasets.mobike import _parse_time

        assert _parse_time("2017-05-10T08:30:15") == datetime(2017, 5, 10, 8, 30, 15)

    def test_fractional_seconds(self):
        from repro.datasets.mobike import _parse_time

        assert _parse_time("2017-05-10T08:30:15.250000") == datetime(
            2017, 5, 10, 8, 30, 15, 250000
        )

    def test_trailing_z_is_utc(self):
        from repro.datasets.mobike import _parse_time

        parsed = _parse_time("2017-05-10T08:30:15Z")
        assert parsed == datetime(2017, 5, 10, 8, 30, 15)
        assert parsed.tzinfo is None  # normalised onto the naive timeline

    def test_explicit_offset_converted_to_utc(self):
        from repro.datasets.mobike import _parse_time

        # Beijing local time: 8 hours ahead of UTC
        parsed = _parse_time("2017-05-10T08:30:15+08:00")
        assert parsed == datetime(2017, 5, 10, 0, 30, 15)
        assert parsed.tzinfo is None

    def test_unparseable_raises_with_the_cell_text(self):
        from repro.datasets.mobike import _parse_time

        with pytest.raises(ValueError, match="unparseable starttime"):
            _parse_time("10/05/17")

    def test_iso_rows_load_through_the_csv_path(self, tmp_path):
        path = tmp_path / "iso.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerow(
                [1, 2, 3, 1, "2017-05-10T08:30:15+08:00", "wx4g0bm", "wx4g0bn"]
            )
            writer.writerow(
                [2, 2, 4, 1, "2017-05-10T01:00:00Z", "wx4g0bm", "wx4g0bn"]
            )
        loaded = load_mobike_csv(path)
        assert loaded[0].start_time == datetime(2017, 5, 10, 0, 30, 15)
        assert loaded[1].start_time == datetime(2017, 5, 10, 1, 0, 0)

    def test_iso_garbage_quarantined_not_fatal(self, tmp_path):
        path = tmp_path / "mixed.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerow([1, 2, 3, 1, "2017-05-10T08:30:15", "wx4g0bm", "wx4g0bn"])
            writer.writerow([2, 2, 4, 1, "not-a-time", "wx4g0bm", "wx4g0bn"])
        from repro.datasets import QuarantineReport

        report = QuarantineReport()
        loaded = load_mobike_csv(path, on_error="quarantine", quarantine=report)
        assert len(loaded) == 1
        assert len(report) == 1
        assert report.rows[0].field == "starttime"


class TestVectorizedIngestion:
    """The batched loader must match the scalar row-by-row path exactly."""

    def test_projection_bit_identical_to_scalar_path(self, small_dataset, tmp_path):
        from repro.geo import LocalProjection, geohash
        from repro.datasets.mobike import BEIJING_CENTER

        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        proj = LocalProjection(*BEIJING_CENTER)
        with open(path) as f:
            rows = {int(r["orderid"]): r for r in csv.DictReader(f)}
        for rec in loaded:
            row = rows[rec.order_id]
            for field, col in (("start", "geohashed_start_loc"), ("end", "geohashed_end_loc")):
                lat, lon = geohash.decode(row[col])
                p = proj.to_plane(lat, lon)
                got = getattr(rec, field)
                assert (got.x, got.y) == (p.x, p.y)

    def test_geodesic_filled_and_consistent(self, small_dataset, tmp_path):
        from repro.geo import geohash, haversine_m
        from repro.datasets.mobike import BEIJING_CENTER

        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        with open(path) as f:
            rows = {int(r["orderid"]): r for r in csv.DictReader(f)}
        for rec in loaded:
            assert rec.geodesic_m is not None and rec.geodesic_m >= 0.0
            row = rows[rec.order_id]
            s_lat, s_lon = geohash.decode(row["geohashed_start_loc"])
            e_lat, e_lon = geohash.decode(row["geohashed_end_loc"])
            want = haversine_m(s_lat, s_lon, e_lat, e_lon)
            assert rec.geodesic_m == pytest.approx(want, rel=1e-12, abs=1e-9)
            # The equirectangular planar length agrees to sub-percent
            # over a city-scale trip.
            if rec.geodesic_m > 100.0:
                assert rec.distance == pytest.approx(rec.geodesic_m, rel=0.01)

    def test_synthetic_records_have_no_geodesic(self, small_dataset):
        assert all(r.geodesic_m is None for r in small_dataset)

    def test_empty_csv_loads_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.csv"
        with open(path, "w", newline="") as f:
            csv.writer(f).writerow(MOBIKE_HEADER)
        assert len(load_mobike_csv(path)) == 0


class TestQuarantine:
    """Malformed rows diverted instead of aborting a multi-million-row load."""

    def _write(self, path, rows):
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerows(rows)

    GOOD = [1, 2, 3, 1, "2017-05-10 08:00:00", "wx4g0bm", "wx4g0bn"]

    def _mixed_csv(self, tmp_path):
        path = tmp_path / "mixed.csv"
        self._write(
            path,
            [
                self.GOOD,
                ["oops", 2, 3, 1, "2017-05-10 08:00:00", "wx4g0bm", "wx4g0bn"],
                [2, 2, 3, 1, "2017-05-10 08:01:00", "wx4g0bm", "wx4g0bn"],
                [3, 2, 3, 1, "not a time", "wx4g0bm", "wx4g0bn"],
                [4, 2, 3, 1, "2017-05-10 08:02:00", "wx4!0bm", "wx4g0bn"],
                [5, 2, 3, 1, "2017-05-10 08:03:00"],  # short row
                [6, 2, 3, 1, "2017-05-10 08:04:00", "wx4g0bm", "wx4g0bn"],
            ],
        )
        return path

    def test_strict_mode_stays_default(self, tmp_path):
        path = self._mixed_csv(tmp_path)
        with pytest.raises(ValueError, match="row 2.*orderid"):
            load_mobike_csv(path)

    def test_quarantine_keeps_good_rows(self, tmp_path):
        from repro.datasets import QuarantineReport

        path = self._mixed_csv(tmp_path)
        report = QuarantineReport()
        loaded = load_mobike_csv(path, on_error="quarantine", quarantine=report)
        assert sorted(r.order_id for r in loaded) == [1, 2, 6]
        assert len(report) == 4

    def test_report_attributes_failures_to_fields(self, tmp_path):
        from repro.datasets import QuarantineReport

        path = self._mixed_csv(tmp_path)
        report = QuarantineReport()
        load_mobike_csv(path, on_error="quarantine", quarantine=report)
        by_row = {entry.row: entry for entry in report}
        assert by_row[2].field == "orderid"
        assert by_row[4].field == "starttime"
        assert by_row[5].field == "geohashed_start_loc"
        assert by_row[6].field == "geohashed_start_loc"  # short row: missing loc
        for entry in report:
            assert entry.reason

    def test_quarantine_without_explicit_report(self, tmp_path):
        path = self._mixed_csv(tmp_path)
        loaded = load_mobike_csv(path, on_error="quarantine")
        assert len(loaded) == 3

    def test_report_to_text(self, tmp_path):
        from repro.datasets import QuarantineReport

        path = self._mixed_csv(tmp_path)
        report = QuarantineReport()
        load_mobike_csv(path, on_error="quarantine", quarantine=report)
        text = report.to_text(limit=2)
        assert "4 row(s) quarantined" in text
        assert "and 2 more" in text

    def test_unknown_mode_rejected(self, tmp_path):
        path = self._mixed_csv(tmp_path)
        with pytest.raises(ValueError, match="on_error"):
            load_mobike_csv(path, on_error="ignore")

    def test_all_rows_bad_yields_empty_dataset(self, tmp_path):
        from repro.datasets import QuarantineReport

        path = tmp_path / "all_bad.csv"
        self._write(path, [["x", "y", "z", "w", "t", "g1", "g2"]] * 3)
        report = QuarantineReport()
        loaded = load_mobike_csv(path, on_error="quarantine", quarantine=report)
        assert len(loaded) == 0
        assert len(report) == 3

    def test_quarantined_rows_count_toward_limit(self, tmp_path):
        path = self._mixed_csv(tmp_path)
        loaded = load_mobike_csv(path, on_error="quarantine", limit=3)
        # Rows 1-3: good, bad, good.
        assert sorted(r.order_id for r in loaded) == [1, 2]


class TestAtomicSave:
    def test_no_tmp_siblings_left(self, small_dataset, tmp_path):
        import os

        save_mobike_csv(small_dataset, tmp_path / "trips.csv")
        assert [p for p in os.listdir(tmp_path) if ".tmp-" in p] == []

    def test_overwrite_is_clean(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        first = path.read_text()
        save_mobike_csv(small_dataset, path)
        assert path.read_text() == first


class TestColumnarLoad:
    """``as_block=True`` returns the same trips as the record path,
    already columnar and time-sorted."""

    def test_block_matches_record_path_exactly(self, small_dataset, tmp_path):
        import numpy as np

        from repro.core.tripblock import TripBlock

        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        dataset = load_mobike_csv(path)
        block = load_mobike_csv(path, as_block=True)
        assert isinstance(block, TripBlock)
        assert len(block) == len(dataset)
        assert block.to_trips() == dataset.records
        reference = TripBlock.from_trips(dataset.records)
        for name in TripBlock.__slots__:
            assert np.array_equal(
                getattr(block, name), getattr(reference, name), equal_nan=True
            ), name

    def test_block_is_time_sorted(self, small_dataset, tmp_path):
        import numpy as np

        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        block = load_mobike_csv(path, as_block=True)
        assert bool(np.all(block.start_us[1:] >= block.start_us[:-1]))

    def test_empty_csv_loads_empty_block(self, tmp_path):
        path = tmp_path / "empty.csv"
        with path.open("w", newline="") as fh:
            csv.writer(fh).writerow(MOBIKE_HEADER)
        block = load_mobike_csv(path, as_block=True)
        assert len(block) == 0

    def test_quarantine_composes_with_as_block(self, tmp_path):
        from repro.datasets import QuarantineReport

        rows = [
            ["1", "10", "100", "1", "2017-05-10 00:00", "wx4snhx", "wx4snhp"],
            ["2", "11", "101", "1", "not a time", "wx4snhx", "wx4snhp"],
            ["3", "12", "102", "1", "2017-05-10 00:05", "wx4snhp", "wx4snhx"],
        ]
        path = tmp_path / "mixed.csv"
        with path.open("w", newline="") as fh:
            writer = csv.writer(fh)
            writer.writerow(MOBIKE_HEADER)
            writer.writerows(rows)
        report = QuarantineReport()
        block = load_mobike_csv(
            path, as_block=True, on_error="quarantine", quarantine=report
        )
        assert sorted(block.order_id.tolist()) == [1, 3]
        assert len(report) == 1
