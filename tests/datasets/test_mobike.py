"""Tests for repro.datasets.mobike (CSV round-trip)."""

import csv

import pytest

from repro.datasets import (
    MOBIKE_HEADER,
    SyntheticConfig,
    load_mobike_csv,
    mobike_like_dataset,
    save_mobike_csv,
)


@pytest.fixture
def small_dataset():
    cfg = SyntheticConfig(trips_per_weekday=60, trips_per_weekend_day=40)
    return mobike_like_dataset(seed=3, days=1, config=cfg)


class TestSaveLoad:
    def test_header_written(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        with open(path) as f:
            header = next(csv.reader(f))
        assert header == MOBIKE_HEADER

    def test_roundtrip_preserves_count_and_ids(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        assert len(loaded) == len(small_dataset)
        assert sorted(r.order_id for r in loaded) == sorted(
            r.order_id for r in small_dataset
        )

    def test_roundtrip_preserves_locations_within_geohash_cell(
        self, small_dataset, tmp_path
    ):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        orig = {r.order_id: r for r in small_dataset}
        for r in loaded:
            # Precision-7 geohash cells are ~76x153 m; centre-to-point
            # error is bounded by the half-diagonal (~86 m).
            assert r.end.distance_to(orig[r.order_id].end) < 120.0
            assert r.start.distance_to(orig[r.order_id].start) < 120.0

    def test_roundtrip_preserves_times(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        orig = {r.order_id: r for r in small_dataset}
        for r in loaded:
            assert r.start_time == orig[r.order_id].start_time

    def test_limit(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path, limit=10)
        assert len(loaded) == 10

    def test_missing_column_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["orderid", "userid"])
            writer.writerow([1, 2])
        with pytest.raises(ValueError, match="missing required columns"):
            load_mobike_csv(path)

    def test_extra_columns_tolerated(self, small_dataset, tmp_path):
        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        # Append an extra column to every row.
        with open(path) as f:
            rows = list(csv.reader(f))
        rows[0].append("extra")
        for row in rows[1:]:
            row.append("x")
        with open(path, "w", newline="") as f:
            csv.writer(f).writerows(rows)
        loaded = load_mobike_csv(path)
        assert len(loaded) == len(small_dataset)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_mobike_csv(tmp_path / "nope.csv")

    def test_alternate_time_format(self, tmp_path):
        path = tmp_path / "alt.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerow([1, 2, 3, 1, "2017-05-10 08:30", "wx4g0bm", "wx4g0bn"])
        loaded = load_mobike_csv(path)
        assert loaded[0].start_time.minute == 30

    def test_bad_time_rejected(self, tmp_path):
        path = tmp_path / "bad_time.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(MOBIKE_HEADER)
            writer.writerow([1, 2, 3, 1, "10/05/17", "wx4g0bm", "wx4g0bn"])
        with pytest.raises(ValueError, match="starttime"):
            load_mobike_csv(path)


class TestVectorizedIngestion:
    """The batched loader must match the scalar row-by-row path exactly."""

    def test_projection_bit_identical_to_scalar_path(self, small_dataset, tmp_path):
        from repro.geo import LocalProjection, geohash
        from repro.datasets.mobike import BEIJING_CENTER

        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        proj = LocalProjection(*BEIJING_CENTER)
        with open(path) as f:
            rows = {int(r["orderid"]): r for r in csv.DictReader(f)}
        for rec in loaded:
            row = rows[rec.order_id]
            for field, col in (("start", "geohashed_start_loc"), ("end", "geohashed_end_loc")):
                lat, lon = geohash.decode(row[col])
                p = proj.to_plane(lat, lon)
                got = getattr(rec, field)
                assert (got.x, got.y) == (p.x, p.y)

    def test_geodesic_filled_and_consistent(self, small_dataset, tmp_path):
        from repro.geo import geohash, haversine_m
        from repro.datasets.mobike import BEIJING_CENTER

        path = tmp_path / "trips.csv"
        save_mobike_csv(small_dataset, path)
        loaded = load_mobike_csv(path)
        with open(path) as f:
            rows = {int(r["orderid"]): r for r in csv.DictReader(f)}
        for rec in loaded:
            assert rec.geodesic_m is not None and rec.geodesic_m >= 0.0
            row = rows[rec.order_id]
            s_lat, s_lon = geohash.decode(row["geohashed_start_loc"])
            e_lat, e_lon = geohash.decode(row["geohashed_end_loc"])
            want = haversine_m(s_lat, s_lon, e_lat, e_lon)
            assert rec.geodesic_m == pytest.approx(want, rel=1e-12, abs=1e-9)
            # The equirectangular planar length agrees to sub-percent
            # over a city-scale trip.
            if rec.geodesic_m > 100.0:
                assert rec.distance == pytest.approx(rec.geodesic_m, rel=0.01)

    def test_synthetic_records_have_no_geodesic(self, small_dataset):
        assert all(r.geodesic_m is None for r in small_dataset)

    def test_empty_csv_loads_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.csv"
        with open(path, "w", newline="") as f:
            csv.writer(f).writerow(MOBIKE_HEADER)
        assert len(load_mobike_csv(path)) == 0
