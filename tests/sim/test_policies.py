"""Tests for repro.sim.policies and the operator-policy integration."""

import numpy as np
import pytest

from repro.energy import Fleet
from repro.geo import Point
from repro.incentives import ChargingCostParams
from repro.sim import (
    BudgetCoveragePolicy,
    ChargingOperator,
    OperatorConfig,
    ThresholdPolicy,
    TopDensityPolicy,
)


def locations(n=6, spacing=1000.0):
    return [Point(i * spacing, 0.0) for i in range(n)]


@pytest.fixture
def low_map():
    return {0: [1, 2, 3], 2: [4], 4: [5, 6], 5: [7, 8, 9, 10]}


class TestThresholdPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            ThresholdPolicy(min_bikes=0)

    def test_threshold_one_takes_all(self, low_map):
        assert ThresholdPolicy(1).select(low_map, locations()) == [0, 2, 4, 5]

    def test_threshold_filters_sparse(self, low_map):
        assert ThresholdPolicy(2).select(low_map, locations()) == [0, 4, 5]
        assert ThresholdPolicy(4).select(low_map, locations()) == [5]


class TestTopDensityPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            TopDensityPolicy(max_sites=0)

    def test_picks_densest(self, low_map):
        assert TopDensityPolicy(2).select(low_map, locations()) == [0, 5]

    def test_more_sites_than_demand(self, low_map):
        assert TopDensityPolicy(99).select(low_map, locations()) == [0, 2, 4, 5]

    def test_tie_broken_by_station_id(self):
        low_map = {3: [1], 1: [2]}
        assert TopDensityPolicy(1).select(low_map, locations()) == [1]


class TestBudgetCoveragePolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            BudgetCoveragePolicy(budget_hours=0)
        with pytest.raises(ValueError):
            BudgetCoveragePolicy(travel_speed_kmh=0)
        with pytest.raises(ValueError):
            BudgetCoveragePolicy(service_time_h=-1)

    def test_tight_budget_takes_densest_first(self, low_map):
        policy = BudgetCoveragePolicy(
            budget_hours=0.3, travel_speed_kmh=12.0, service_time_h=0.25
        )
        # One service slot fits; the densest site (5) wins.
        assert policy.select(low_map, locations()) == [5]

    def test_generous_budget_takes_everything(self, low_map):
        policy = BudgetCoveragePolicy(budget_hours=100.0)
        assert policy.select(low_map, locations()) == [0, 2, 4, 5]

    def test_travel_charged_against_budget(self):
        # Two sites 1 km apart and a third 50 km away: the far site's
        # travel cost excludes it under a tight budget.
        locs = [Point(0, 0), Point(1000, 0), Point(50_000, 0)]
        low_map = {0: [1, 2], 1: [3, 4], 2: [5, 6, 7]}
        policy = BudgetCoveragePolicy(
            budget_hours=1.0, travel_speed_kmh=10.0, service_time_h=0.25
        )
        selected = policy.select(low_map, locs)
        assert 2 not in selected or selected == [2]


class TestOperatorIntegration:
    def make_fleet(self, per_station):
        n = len(per_station)
        f = Fleet(locations(n), n_bikes=sum(per_station) + n,
                  rng=np.random.default_rng(0))
        for b in f.bikes:
            b.battery.level = 0.9
        i = 0
        for st, count in enumerate(per_station):
            placed = 0
            for b in f.bikes:
                if placed >= count:
                    break
                if b.battery.level > 0.5:
                    b.station = st
                    b.battery.level = 0.1
                    placed += 1
        return f

    def test_policy_overrides_threshold(self):
        fleet = self.make_fleet([3, 1, 2, 1, 4, 0])
        op = ChargingOperator(
            ChargingCostParams(),
            OperatorConfig(working_hours=100.0),
            policy=TopDensityPolicy(max_sites=2),
        )
        report = op.service_period(fleet)
        assert report.stations_served == 2
        assert sorted(report.served_stations) == [0, 4]

    def test_no_policy_keeps_threshold_semantics(self):
        fleet = self.make_fleet([3, 1, 2])
        op = ChargingOperator(
            ChargingCostParams(),
            OperatorConfig(working_hours=100.0, min_bikes_to_visit=2),
        )
        report = op.service_period(fleet)
        assert sorted(report.served_stations) == [0, 2]

    def test_density_policy_charges_more_per_stop(self):
        """Under the same number of stops, density triage charges more
        bikes than naive threshold order would on sparse sites."""
        fleet_a = self.make_fleet([1, 1, 1, 5, 5, 1])
        fleet_b = self.make_fleet([1, 1, 1, 5, 5, 1])
        stops = 2
        dense = ChargingOperator(
            ChargingCostParams(), OperatorConfig(working_hours=100.0),
            policy=TopDensityPolicy(max_sites=stops),
        ).service_period(fleet_a)
        sparse_sites = ThresholdPolicy(1).select(
            fleet_b.low_energy_map(), fleet_b.stations
        )[:stops]

        class FixedPolicy:
            def select(self, low_map, locs):
                return sparse_sites

        sparse = ChargingOperator(
            ChargingCostParams(), OperatorConfig(working_hours=100.0),
            policy=FixedPolicy(),
        ).service_period(fleet_b)
        assert dense.bikes_charged > sparse.bikes_charged
