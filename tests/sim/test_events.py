"""Tests for repro.sim.events and the simulator's event emission."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    EsharingPlanner,
    constant_facility_cost,
    demand_points_from_stream,
    offline_placement,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import Point
from repro.sim import (
    EventLog,
    OfferMade,
    OperatorStop,
    PeriodClosed,
    PlacementDecided,
    StationOpened,
    SystemSimulator,
    TripExecuted,
    TripRequested,
    TripSkipped,
)
from repro.sim.events import load_jsonl


class TestEventLog:
    def test_emit_assigns_sequence(self):
        log = EventLog()
        e1 = log.emit(TripRequested(order_id=1))
        e2 = log.emit(TripRequested(order_id=2))
        assert e1.seq == 0
        assert e2.seq == 1
        assert len(log) == 2

    def test_of_type_filters_exactly(self):
        log = EventLog()
        log.emit(TripRequested(order_id=1))
        log.emit(TripSkipped(order_id=1))
        requested = log.of_type(TripRequested)
        assert len(requested) == 1
        assert requested[0].order_id == 1

    def test_where(self):
        log = EventLog()
        for i in range(5):
            log.emit(TripRequested(order_id=i))
        hits = log.where(lambda e: getattr(e, "order_id", -1) >= 3)
        assert len(hits) == 2

    def test_counts(self):
        log = EventLog()
        log.emit(TripRequested(order_id=1))
        log.emit(TripRequested(order_id=2))
        log.emit(PeriodClosed(period=0))
        assert log.counts() == {"TripRequested": 2, "PeriodClosed": 1}

    def test_clear(self):
        log = EventLog()
        log.emit(TripRequested(order_id=1))
        log.clear()
        assert len(log) == 0

    def test_jsonl_roundtrip(self):
        log = EventLog()
        log.emit(TripRequested(order_id=7, dest_x=1.5, dest_y=-2.0))
        log.emit(OfferMade(order_id=7, accepted=True, incentive=3.25))
        text = log.to_jsonl()
        loaded = load_jsonl(text)
        assert len(loaded) == 2
        assert loaded.of_type(TripRequested)[0].order_id == 7
        assert loaded.of_type(OfferMade)[0].incentive == 3.25

    def test_load_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            load_jsonl('{"kind": "Mystery", "seq": 0}')

    def test_save(self, tmp_path):
        log = EventLog()
        log.emit(PeriodClosed(period=0, total_cost=12.0))
        path = tmp_path / "events.jsonl"
        log.save(path)
        assert "PeriodClosed" in path.read_text()


class TestSimulatorEmission:
    @pytest.fixture
    def sim(self):
        rng = np.random.default_rng(0)
        centers = [Point(400, 400), Point(2600, 2600), Point(400, 2600)]
        historical = []
        for _ in range(300):
            c = centers[int(rng.integers(len(centers)))]
            off = rng.normal(0, 70, size=2)
            historical.append(Point(c.x + float(off[0]), c.y + float(off[1])))
        cost_fn = constant_facility_cost(10_000.0)
        offline = offline_placement(demand_points_from_stream(historical), cost_fn)
        planner = EsharingPlanner(
            offline.stations, cost_fn,
            np.asarray([(p.x, p.y) for p in historical]),
            np.random.default_rng(1),
        )
        fleet = Fleet(planner.stations, n_bikes=60, rng=np.random.default_rng(2))
        log = EventLog()
        sim = SystemSimulator(
            planner, fleet, rng=np.random.default_rng(3), event_log=log,
        )
        trips = [
            TripRecord(
                order_id=i, user_id=i, bike_id=0, bike_type=1,
                start_time=datetime(2017, 5, 10, 8) + timedelta(minutes=i),
                start=centers[i % 3], end=centers[(i + 1) % 3],
            )
            for i in range(40)
        ]
        return sim, log, trips

    def test_every_trip_requested_and_decided(self, sim):
        simulator, log, trips = sim
        simulator.run_period(trips)
        assert len(log.of_type(TripRequested)) == 40
        assert len(log.of_type(PlacementDecided)) == 40

    def test_executed_plus_skipped_covers_trips(self, sim):
        simulator, log, trips = sim
        report = simulator.run_period(trips)
        executed = log.of_type(TripExecuted)
        skipped = log.of_type(TripSkipped)
        assert len(executed) == report.trips_executed
        assert len(skipped) == report.trips_skipped_empty
        assert len(executed) + len(skipped) == 40

    def test_operator_stops_match_report(self, sim):
        simulator, log, trips = sim
        report = simulator.run_period(trips)
        stops = log.of_type(OperatorStop)
        assert len(stops) == report.service.stations_served
        assert sum(s.bikes_charged for s in stops) == report.service.bikes_charged
        positions = [s.position for s in stops]
        assert positions == list(range(1, len(stops) + 1))

    def test_station_opened_consistent_with_planner(self, sim):
        simulator, log, trips = sim
        simulator.run_period(trips)
        opened = log.of_type(StationOpened)
        assert len(opened) == len(simulator.planner.online_opened)

    def test_period_closed_once(self, sim):
        simulator, log, trips = sim
        report = simulator.run_period(trips)
        closed = log.of_type(PeriodClosed)
        assert len(closed) == 1
        assert closed[0].total_cost == pytest.approx(report.service.total_cost)

    def test_no_log_is_fine(self, sim):
        simulator, _, trips = sim
        simulator.event_log = None
        report = simulator.run_period(trips)
        assert report.trips_requested == 40
