"""Tests for repro.sim.rebalancing."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.energy import Fleet
from repro.geo import Point
from repro.sim import rebalance_fleet, target_distribution


def stations(n=5, spacing=1000.0):
    return [Point(i * spacing, 0.0) for i in range(n)]


def skewed_fleet(per_station, seed=0):
    f = Fleet(stations(len(per_station)), n_bikes=sum(per_station),
              rng=np.random.default_rng(seed))
    i = 0
    for st, count in enumerate(per_station):
        for _ in range(count):
            f.bikes[i].station = st
            i += 1
    return f


def counts(fleet):
    out = [0] * len(fleet.stations)
    for b in fleet.bikes:
        out[b.station] += 1
    return out


class TestTargetDistribution:
    def test_validation(self):
        with pytest.raises(ValueError):
            target_distribution(0, 10)
        with pytest.raises(ValueError):
            target_distribution(3, -1)
        with pytest.raises(ValueError):
            target_distribution(3, 10, demand_weights=[1.0, 2.0])
        with pytest.raises(ValueError):
            target_distribution(2, 10, demand_weights=[0.0, 0.0])

    def test_uniform_sums_exactly(self):
        tgt = target_distribution(3, 10)
        assert tgt.sum() == 10
        assert max(tgt) - min(tgt) <= 1

    def test_weighted_proportional(self):
        tgt = target_distribution(2, 30, demand_weights=[2.0, 1.0])
        assert tgt.tolist() == [20, 10]

    def test_largest_remainder_rounding(self):
        tgt = target_distribution(3, 10, demand_weights=[1.0, 1.0, 1.0])
        assert sorted(tgt.tolist()) == [3, 3, 4]

    @given(
        st.integers(1, 10), st.integers(0, 200),
    )
    @settings(max_examples=40, deadline=None)
    def test_always_sums_to_fleet(self, n_stations, n_bikes):
        assert target_distribution(n_stations, n_bikes).sum() == n_bikes


class TestRebalanceFleet:
    def test_already_balanced_noop(self):
        f = skewed_fleet([4, 4, 4, 4, 4])
        report = rebalance_fleet(f)
        assert report.bikes_moved == 0
        assert report.moves == []
        assert report.imbalance_before == 0.0

    def test_reaches_target_exactly(self):
        f = skewed_fleet([20, 0, 0, 0, 0])
        report = rebalance_fleet(f)
        assert counts(f) == [4, 4, 4, 4, 4]
        assert report.imbalance_after == 0.0
        assert report.imbalance_reduction == pytest.approx(1.0)
        assert report.bikes_moved == 16

    def test_mismatched_targets_rejected(self):
        f = skewed_fleet([5, 5])
        with pytest.raises(ValueError):
            rebalance_fleet(f, targets=[5, 5, 5])
        with pytest.raises(ValueError):
            rebalance_fleet(f, targets=[2, 2])

    def test_custom_targets(self):
        f = skewed_fleet([10, 0])
        rebalance_fleet(f, targets=[3, 7])
        assert counts(f) == [3, 7]

    def test_move_budget_respected(self):
        f = skewed_fleet([20, 0, 0, 0, 0])
        report = rebalance_fleet(f, max_moves=5)
        assert report.bikes_moved == 5
        assert report.imbalance_after < report.imbalance_before

    def test_moves_nearest_deficit_first(self):
        # Surplus at station 0; deficits at 1 (near) and 4 (far).
        f = skewed_fleet([10, 0, 4, 4, 0])
        report = rebalance_fleet(f, targets=[4, 3, 4, 4, 3])
        assert report.moves[0].source == 0
        assert report.moves[0].sink == 1

    def test_high_charge_bikes_move(self):
        f = skewed_fleet([6, 0])
        for i, b in enumerate(f.bikes):
            b.battery.level = 0.1 + 0.15 * i
        rebalance_fleet(f, targets=[3, 3])
        moved_levels = [b.battery.level for b in f.bikes if b.station == 1]
        stayed_levels = [b.battery.level for b in f.bikes if b.station == 0]
        assert min(moved_levels) > max(stayed_levels)

    def test_truck_distance_estimated(self):
        f = skewed_fleet([10, 0, 0, 0, 0])
        report = rebalance_fleet(f)
        # The tour spans stations 0..4 on a 1 km-spaced line: 4 km.
        assert report.truck_distance_km == pytest.approx(4.0)


class TestSimulatorIntegration:
    def test_rebalance_restores_service_rate(self):
        """A starved multi-day simulation recovers with overnight trucks."""
        from datetime import datetime, timedelta

        from repro.core import (
            EsharingPlanner, constant_facility_cost,
            demand_points_from_stream, offline_placement,
        )
        from repro.datasets import TripRecord
        from repro.sim import SystemSimulator

        rng = np.random.default_rng(0)
        centers = [Point(300, 300), Point(2700, 2700)]
        historical = []
        for _ in range(200):
            c = centers[int(rng.integers(2))]
            off = rng.normal(0, 60, size=2)
            historical.append(Point(c.x + float(off[0]), c.y + float(off[1])))
        cost_fn = constant_facility_cost(10_000.0)
        offline = offline_placement(demand_points_from_stream(historical), cost_fn)

        def one_way_trips(day):
            # Everyone rides A -> B: station A starves without trucks.
            return [
                TripRecord(
                    order_id=i, user_id=i, bike_id=0, bike_type=1,
                    start_time=day + timedelta(minutes=i),
                    start=centers[0], end=centers[1],
                )
                for i in range(40)
            ]

        def build():
            planner = EsharingPlanner(
                offline.stations, cost_fn,
                np.asarray([(p.x, p.y) for p in historical]),
                np.random.default_rng(1),
            )
            fleet = Fleet(planner.stations, n_bikes=30, rng=np.random.default_rng(2))
            return SystemSimulator(planner, fleet, rng=np.random.default_rng(3))

        days = [one_way_trips(datetime(2017, 5, 10 + d, 8)) for d in range(3)]
        starved = build().run_days(days)
        trucked = build().run_days(days, rebalance_between_days=True)
        served_starved = sum(r.trips_executed for r in starved)
        served_trucked = sum(r.trips_executed for r in trucked)
        assert served_trucked > served_starved
