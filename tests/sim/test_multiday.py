"""Tests for multi-day simulation and the adaptive-alpha integration."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    EsharingPlanner,
    constant_facility_cost,
    demand_points_from_stream,
    offline_placement,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import Point
from repro.incentives import (
    AdaptiveAlphaController,
    ChargingCostParams,
    IncentiveConfig,
    UserPopulation,
)
from repro.sim import OperatorConfig, SimulationSummary, SystemSimulator


def make_trips(rng, centers, n, day):
    trips = []
    for i in range(n):
        a = centers[int(rng.integers(len(centers)))]
        b = centers[int(rng.integers(len(centers)))]
        o1, o2 = rng.normal(0, 70, size=2), rng.normal(0, 70, size=2)
        trips.append(
            TripRecord(
                order_id=i, user_id=i, bike_id=0, bike_type=1,
                start_time=day + timedelta(minutes=i),
                start=Point(a.x + float(o1[0]), a.y + float(o1[1])),
                end=Point(b.x + float(o2[0]), b.y + float(o2[1])),
            )
        )
    return trips


@pytest.fixture
def setup():
    rng = np.random.default_rng(0)
    centers = [Point(400, 400), Point(2600, 400), Point(400, 2600), Point(2600, 2600)]
    historical = []
    for _ in range(400):
        c = centers[int(rng.integers(len(centers)))]
        off = rng.normal(0, 70, size=2)
        historical.append(Point(c.x + float(off[0]), c.y + float(off[1])))
    cost_fn = constant_facility_cost(10_000.0)
    offline = offline_placement(demand_points_from_stream(historical), cost_fn)
    hist_arr = np.asarray([(p.x, p.y) for p in historical])
    return centers, offline, hist_arr, cost_fn


def build_sim(setup, alpha_controller=None, alpha=0.5):
    centers, offline, hist_arr, cost_fn = setup
    planner = EsharingPlanner(
        offline.stations, cost_fn, hist_arr, np.random.default_rng(1)
    )
    fleet = Fleet(planner.stations, n_bikes=120, rng=np.random.default_rng(2))
    return SystemSimulator(
        planner, fleet,
        charging_params=ChargingCostParams(service_cost=20.0),
        incentive_config=IncentiveConfig(alpha=alpha),
        population=UserPopulation(walk_mean=600.0, reward_mean=1.0),
        operator_config=OperatorConfig(working_hours=10.0),
        rng=np.random.default_rng(3),
        alpha_controller=alpha_controller,
    ), centers


class TestRunDays:
    def test_one_report_per_day(self, setup):
        sim, centers = build_sim(setup)
        rng = np.random.default_rng(4)
        days = [
            make_trips(rng, centers, 80, datetime(2017, 5, 10 + d, 8))
            for d in range(3)
        ]
        reports = sim.run_days(days)
        assert len(reports) == 3
        assert len(sim.reports) == 3

    def test_summary_aggregates(self, setup):
        sim, centers = build_sim(setup)
        rng = np.random.default_rng(5)
        days = [
            make_trips(rng, centers, 60, datetime(2017, 5, 10 + d, 8))
            for d in range(2)
        ]
        sim.run_days(days)
        summary = sim.summary()
        assert isinstance(summary, SimulationSummary)
        assert summary.periods == 2
        assert summary.trips_requested == 120
        assert summary.total_cost == pytest.approx(sim.total_cost())
        assert 0.0 <= summary.service_rate <= 1.0
        assert summary.final_station_count == len(sim.fleet.stations)

    def test_summary_before_run_raises(self, setup):
        sim, _ = build_sim(setup)
        with pytest.raises(ValueError):
            sim.summary()

    def test_fleet_state_carries_over(self, setup):
        """Bikes charged on day 1 do not reappear low on day 2's census."""
        sim, centers = build_sim(setup)
        rng = np.random.default_rng(6)
        day1 = make_trips(rng, centers, 80, datetime(2017, 5, 10, 8))
        r1 = sim.run_period(day1)
        low_after_day1 = sim.fleet.low_energy_count()
        assert r1.low_energy_after == low_after_day1
        day2 = make_trips(rng, centers, 80, datetime(2017, 5, 11, 8))
        r2 = sim.run_period(day2)
        # Day 2's pre-tour census starts from day 1's end state (plus new
        # drained bikes) — it cannot exceed the fleet size.
        assert r2.service.bikes_low_before <= len(sim.fleet)


class TestAdaptiveAlphaIntegration:
    def test_controller_drives_alpha_over_days(self, setup):
        ctrl = AdaptiveAlphaController(
            alpha=0.1, window=10, target_acceptance=0.9, step=1.5, alpha_max=0.95
        )
        sim, centers = build_sim(setup, alpha_controller=ctrl, alpha=0.1)
        # A stingy population: low alpha gets declined, pushing alpha up.
        sim.mechanism.population = UserPopulation(
            walk_mean=600.0, reward_mean=30.0, reward_std=5.0
        )
        rng = np.random.default_rng(7)
        days = [
            make_trips(rng, centers, 120, datetime(2017, 5, 10 + d, 8))
            for d in range(2)
        ]
        sim.run_days(days)
        if sim.mechanism.offers_made >= ctrl.window:
            assert ctrl.alpha > 0.1
            assert ctrl.adjustments >= 1
