"""Tests for repro.sim.operator (the charging tour)."""

import numpy as np
import pytest

from repro.energy import Fleet
from repro.geo import Point
from repro.incentives import ChargingCostParams
from repro.sim import ChargingOperator, OperatorConfig


def line_stations(n=5, spacing=500.0):
    return [Point(i * spacing, 0.0) for i in range(n)]


def fleet_with_low_bikes(low_per_station, spacing=500.0, seed=0):
    """A fleet with a prescribed number of low bikes at each station."""
    n_stations = len(low_per_station)
    n_bikes = max(sum(low_per_station) + n_stations * 2, n_stations)
    f = Fleet(line_stations(n_stations, spacing), n_bikes=n_bikes,
              rng=np.random.default_rng(seed))
    for b in f.bikes:
        b.battery.level = 0.9
    i = 0
    for station, count in enumerate(low_per_station):
        placed = 0
        for b in f.bikes:
            if placed >= count:
                break
            if b.battery.level > 0.5:
                b.station = station
                b.battery.level = 0.1
                placed += 1
        i += count
    return f


class TestOperatorConfig:
    def test_defaults_valid(self):
        OperatorConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"working_hours": 0},
            {"travel_speed_kmh": 0},
            {"service_time_h": -1},
            {"min_bikes_to_visit": 0},
        ],
    )
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ValueError):
            OperatorConfig(**kwargs)


class TestServicePeriod:
    def test_nothing_to_do(self):
        f = fleet_with_low_bikes([0, 0, 0])
        op = ChargingOperator(ChargingCostParams())
        report = op.service_period(f)
        assert report.stations_served == 0
        assert report.total_cost == 0.0
        assert report.percent_charged == 100.0

    def test_serves_all_with_generous_shift(self):
        f = fleet_with_low_bikes([2, 0, 3, 0, 1])
        op = ChargingOperator(
            ChargingCostParams(), OperatorConfig(working_hours=100.0)
        )
        report = op.service_period(f)
        assert report.stations_served == 3
        assert report.bikes_charged == 6
        assert report.percent_charged == 100.0
        assert f.low_energy_count() == 0

    def test_cost_breakdown_matches_eq10(self):
        f = fleet_with_low_bikes([2, 0, 3])
        params = ChargingCostParams(service_cost=5.0, delay_cost=4.0, energy_cost=2.0)
        op = ChargingOperator(params, OperatorConfig(working_hours=100.0))
        report = op.service_period(f)
        n = report.stations_served
        assert n == 2
        assert report.service_cost == pytest.approx(n * 5.0)
        assert report.delay_cost == pytest.approx((n * n - n) / 2 * 4.0)
        assert report.energy_cost == pytest.approx(5 * 2.0)
        assert report.total_cost == pytest.approx(
            report.service_cost + report.delay_cost + report.energy_cost
        )

    def test_time_budget_limits_in_shift_coverage(self):
        # 6 stations, each needing service; the tour is the operator's
        # full responsibility (all served, full Eq. 10 cost) but only a
        # prefix fits in the 2 h shift, capping percent_charged.
        f = fleet_with_low_bikes([1, 1, 1, 1, 1, 1], spacing=2000.0)
        op = ChargingOperator(
            ChargingCostParams(),
            OperatorConfig(working_hours=2.0, travel_speed_kmh=10.0, service_time_h=0.5),
        )
        report = op.service_period(f)
        assert report.stations_served == 6
        assert report.bikes_charged == 6
        assert 0 < report.bikes_charged_in_shift < 6
        assert 0.0 < report.percent_charged < 100.0
        assert f.low_energy_count() == 0

    def test_skip_threshold_defers_sparse_stations(self):
        f = fleet_with_low_bikes([1, 4, 1])
        op = ChargingOperator(
            ChargingCostParams(),
            OperatorConfig(working_hours=100.0, min_bikes_to_visit=2),
        )
        report = op.service_period(f)
        assert report.served_stations == [1]
        assert report.bikes_charged == 4
        assert report.stations_needing_service == 3

    def test_moving_distance_accumulates(self):
        f = fleet_with_low_bikes([1, 0, 1, 0, 1], spacing=1000.0)
        op = ChargingOperator(ChargingCostParams(), OperatorConfig(working_hours=100.0))
        report = op.service_period(f)
        # Stations 0, 2, 4 on a line: optimal open tour is 4 km.
        assert report.moving_distance_km == pytest.approx(4.0)

    def test_incentives_folded_into_total(self):
        f = fleet_with_low_bikes([1])
        op = ChargingOperator(ChargingCostParams(), OperatorConfig(working_hours=10.0))
        report = op.service_period(f, incentives_paid=42.0)
        assert report.incentives_paid == 42.0
        assert report.total_cost == pytest.approx(
            report.service_cost + report.energy_cost + 42.0
        )

    def test_aggregated_fleet_cheaper_than_scattered(self):
        """The Tier-2 economics: same bikes, fewer sites => lower cost."""
        params = ChargingCostParams()
        cfg = OperatorConfig(working_hours=100.0)
        scattered = fleet_with_low_bikes([1, 1, 1, 1, 1, 1])
        aggregated = fleet_with_low_bikes([6, 0, 0, 0, 0, 0])
        cost_scattered = ChargingOperator(params, cfg).service_period(scattered).total_cost
        cost_aggregated = ChargingOperator(params, cfg).service_period(aggregated).total_cost
        assert cost_aggregated < cost_scattered

    def test_report_summary_format(self):
        f = fleet_with_low_bikes([2])
        op = ChargingOperator(ChargingCostParams(), OperatorConfig(working_hours=10.0))
        text = op.service_period(f).summary()
        assert "total=" in text and "charged=" in text
