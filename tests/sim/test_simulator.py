"""Tests for repro.sim.simulator (the end-to-end system)."""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    EsharingPlanner,
    constant_facility_cost,
    demand_points_from_stream,
    offline_placement,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import Point
from repro.incentives import ChargingCostParams, IncentiveConfig, UserPopulation
from repro.sim import OperatorConfig, SystemSimulator


def hotspot_trips(rng, centers, n, start=datetime(2017, 5, 10, 8)):
    trips = []
    for i in range(n):
        a = centers[int(rng.integers(len(centers)))]
        b = centers[int(rng.integers(len(centers)))]
        o1, o2 = rng.normal(0, 80, size=2), rng.normal(0, 80, size=2)
        trips.append(
            TripRecord(
                order_id=i, user_id=i, bike_id=0, bike_type=1,
                start_time=start + timedelta(minutes=i),
                start=Point(a.x + float(o1[0]), a.y + float(o1[1])),
                end=Point(b.x + float(o2[0]), b.y + float(o2[1])),
            )
        )
    return trips


@pytest.fixture
def system():
    rng = np.random.default_rng(0)
    centers = [Point(500, 500), Point(2500, 500), Point(1500, 2500), Point(2500, 2500)]
    historical_pts = []
    for _ in range(400):
        c = centers[int(rng.integers(len(centers)))]
        off = rng.normal(0, 80, size=2)
        historical_pts.append(Point(c.x + float(off[0]), c.y + float(off[1])))
    cost_fn = constant_facility_cost(10_000.0)
    offline = offline_placement(demand_points_from_stream(historical_pts), cost_fn)
    historical = np.asarray([(p.x, p.y) for p in historical_pts])
    planner = EsharingPlanner(
        offline.stations, cost_fn, historical, np.random.default_rng(1)
    )
    fleet = Fleet(planner.stations, n_bikes=120, rng=np.random.default_rng(2))
    sim = SystemSimulator(
        planner,
        fleet,
        charging_params=ChargingCostParams(),
        incentive_config=IncentiveConfig(alpha=0.5),
        population=UserPopulation(),
        operator_config=OperatorConfig(working_hours=50.0),
        rng=np.random.default_rng(3),
    )
    return sim, centers


class TestConstruction:
    def test_station_mismatch_rejected(self, system):
        sim, _ = system
        other_fleet = Fleet([Point(0, 0)], n_bikes=3)
        with pytest.raises(ValueError):
            SystemSimulator(sim.planner, other_fleet)


class TestRunPeriod:
    def test_trips_accounted(self, system):
        sim, centers = system
        trips = hotspot_trips(np.random.default_rng(4), centers, 100)
        report = sim.run_period(trips)
        assert report.trips_requested == 100
        assert report.trips_executed + report.trips_skipped_empty == 100
        assert report.trips_executed > 0

    def test_online_stations_join_fleet(self, system):
        sim, centers = system
        # Demand at a brand-new hotspot opens online stations; the fleet
        # must track them so later trips can route there.
        new_hotspot = [Point(100, 2900)]
        trips = hotspot_trips(np.random.default_rng(5), new_hotspot, 120)
        sim.run_period(trips)
        assert len(sim.fleet.stations) == len(sim.planner.stations)

    def test_report_recorded(self, system):
        sim, centers = system
        trips = hotspot_trips(np.random.default_rng(6), centers, 50)
        sim.run_period(trips)
        assert len(sim.reports) == 1
        assert sim.total_cost() == sim.reports[0].service.total_cost

    def test_incentives_flow_into_service_report(self, system):
        sim, centers = system
        trips = hotspot_trips(np.random.default_rng(7), centers, 200)
        report = sim.run_period(trips)
        assert report.service.incentives_paid == pytest.approx(report.incentives_paid)
        assert report.relocated_bikes == report.offers_accepted

    def test_operator_reduces_low_energy(self, system):
        sim, centers = system
        trips = hotspot_trips(np.random.default_rng(8), centers, 200)
        low_before = sim.fleet.low_energy_count()
        report = sim.run_period(trips)
        # With a generous shift the operator clears (almost) everything.
        assert report.low_energy_after <= max(low_before, report.service.bikes_low_before)
        assert report.service.percent_charged > 50.0


class TestIncentiveEffect:
    """The paper's Tier-2 claim at system level (Table VI shape)."""

    def _run(self, alpha, shift_hours=3.0, seed=0):
        rng = np.random.default_rng(10)
        centers = [
            Point(400, 400), Point(2600, 400), Point(400, 2600),
            Point(2600, 2600), Point(1500, 1500), Point(1500, 400),
        ]
        historical_pts = []
        for _ in range(500):
            c = centers[int(rng.integers(len(centers)))]
            off = rng.normal(0, 80, size=2)
            historical_pts.append(Point(c.x + float(off[0]), c.y + float(off[1])))
        cost_fn = constant_facility_cost(10_000.0)
        offline = offline_placement(demand_points_from_stream(historical_pts), cost_fn)
        historical = np.asarray([(p.x, p.y) for p in historical_pts])
        planner = EsharingPlanner(
            offline.stations, cost_fn, historical, np.random.default_rng(seed)
        )
        fleet = Fleet(planner.stations, n_bikes=150, rng=np.random.default_rng(seed + 1))
        sim = SystemSimulator(
            planner, fleet,
            charging_params=ChargingCostParams(service_cost=20.0),
            incentive_config=IncentiveConfig(alpha=alpha),
            population=UserPopulation(walk_mean=500.0, reward_mean=0.3),
            operator_config=OperatorConfig(
                working_hours=shift_hours, travel_speed_kmh=10.0, service_time_h=0.4
            ),
            rng=np.random.default_rng(seed + 2),
        )
        trips = hotspot_trips(np.random.default_rng(seed + 3), centers, 300)
        return sim.run_period(trips)

    def test_incentives_raise_percent_charged(self):
        no_inc = self._run(alpha=0.0)
        with_inc = self._run(alpha=0.7)
        assert with_inc.service.percent_charged >= no_inc.service.percent_charged

    def test_alpha_zero_pays_nothing(self):
        report = self._run(alpha=0.0)
        assert report.incentives_paid == 0.0
        assert report.offers_made == 0


class TestPhaseTimers:
    def test_timers_accumulate_and_surface_in_summary(self, system):
        sim, centers = system
        assert sim.timers.placement == 0.0 and sim.timers.incentives == 0.0
        trips = hotspot_trips(np.random.default_rng(5), centers, 120)
        sim.run_period(trips)
        assert sim.timers.placement > 0.0
        assert sim.timers.incentives > 0.0
        assert 0.0 <= sim.timers.ks <= sim.timers.placement
        assert sim.timers.ks == sim.planner.ks_seconds
        summary = sim.summary()
        assert summary.phase_seconds == sim.timers.snapshot()
        assert set(summary.phase_seconds) == {"placement", "ks", "incentives"}
