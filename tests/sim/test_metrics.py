"""Tests for repro.sim.metrics (event-log analytics)."""

import pytest

from repro.sim import (
    EventLog,
    OfferMade,
    OperatorStop,
    PlacementDecided,
    ServiceMetrics,
    StationOpened,
    TripExecuted,
    TripRequested,
    TripSkipped,
    analyze_log,
)
from repro.sim.metrics import analyze_log as analyze


def build_log():
    log = EventLog()
    # Three requests: two executed, one skipped.
    for i in range(3):
        log.emit(TripRequested(order_id=i))
    log.emit(PlacementDecided(order_id=0, station_index=0, walking_cost=100.0))
    log.emit(PlacementDecided(order_id=1, station_index=1, walking_cost=300.0))
    log.emit(PlacementDecided(order_id=2, station_index=0, opened_new=True))
    log.emit(StationOpened(station_index=2))
    log.emit(TripExecuted(order_id=0, bike_id=0, from_station=0, to_station=1))
    log.emit(TripExecuted(order_id=1, bike_id=1, from_station=0, to_station=1))
    log.emit(TripSkipped(order_id=2, origin_station=0))
    log.emit(OfferMade(order_id=0, accepted=True, incentive=2.0))
    log.emit(OfferMade(order_id=1, accepted=False))
    log.emit(OperatorStop(station=1, position=1, bikes_charged=3))
    log.emit(OperatorStop(station=0, position=2, bikes_charged=2))
    return log


class TestAnalyzeLog:
    def test_empty_log_rejected(self):
        with pytest.raises(ValueError):
            analyze_log(EventLog())

    def test_counts(self):
        m = analyze_log(build_log())
        assert m.trips_requested == 3
        assert m.service_rate == pytest.approx(2 / 3)
        assert m.stations_opened_online == 1
        assert m.operator_stops == 2
        assert m.bikes_charged == 5

    def test_walk_percentiles_exclude_openings(self):
        m = analyze_log(build_log())
        # Only the two assigned decisions (100, 300) count.
        assert m.walk_percentiles[50] == pytest.approx(200.0)
        assert m.walk_percentiles[25] == pytest.approx(150.0)

    def test_offer_funnel(self):
        m = analyze_log(build_log())
        assert m.offer_funnel == (2, 1)

    def test_station_load_normalised(self):
        m = analyze_log(build_log())
        assert m.station_load == {1: 1.0}
        assert m.load_concentration == pytest.approx(1.0)

    def test_to_text(self):
        text = analyze_log(build_log()).to_text()
        assert "served 67%" in text
        assert "2 offers -> 1 accepted" in text
        assert "5 bikes charged" in text


class TestEndToEnd:
    def test_metrics_from_pipeline_log(self):
        from repro.experiments import run_pipeline

        result = run_pipeline(seed=1, volume=600)
        log = result.extras["event_log"]
        m = analyze(log)
        report = result.extras["report"]
        assert m.trips_requested == report.trips_requested
        assert m.offer_funnel == (report.offers_made, report.offers_accepted)
        assert 0.0 <= m.service_rate <= 1.0
        assert m.bikes_charged == report.service.bikes_charged
