"""Bit-identical state round-trips for every mutable component.

Each test restores from ``state_dict`` output that has been pushed
through a JSON encode/decode (exactly what the snapshot file does), then
demands *identical* continued behaviour — same queries, same coin flips,
same responses — not just equal-looking state.
"""

import json

import numpy as np
import pytest

from repro.core import EsharingPlanner, PlacementService, constant_facility_cost
from repro.core.station_set import StationSet
from repro.energy import Fleet
from repro.geo import Point
from repro.stats.ks2d import LiveWindow

from .conftest import COST_VALUE, build_service, make_trips, scrub


def json_roundtrip(state):
    return json.loads(json.dumps(state, sort_keys=True, allow_nan=False))


class TestStationSetRoundtrip:
    def _populated(self, backend):
        store = StationSet(
            [Point(0, 0), Point(1000, 0), Point(0, 1000), Point(700, 700)],
            backend=backend,
        )
        store.add(Point(300, 250))
        store.remove(1)
        store.remove(3)
        return store

    @pytest.mark.parametrize("backend", ["linear", "grid"])
    def test_queries_identical_after_restore(self, backend):
        original = self._populated(backend)
        restored = StationSet.from_state(json_roundtrip(original.state_dict()))
        assert restored.ids() == original.ids()
        assert restored.locations() == original.locations()
        assert restored.total_assigned == original.total_assigned
        queries = [Point(10, 10), Point(650, 690), Point(999, 1), Point(300, 260)]
        for q in queries:
            assert restored.nearest(q) == original.nearest(q)
            assert restored.within(q, 800.0) == original.within(q, 800.0)
        assert restored.min_spacing() == original.min_spacing()
        assert restored.state_dict() == original.state_dict()

    def test_retired_ids_stay_resolvable(self):
        restored = StationSet.from_state(self._populated("linear").state_dict())
        assert not restored.is_active(1)
        assert restored.location(1) == Point(1000, 0)
        with pytest.raises(KeyError):
            restored.location(99)

    def test_ids_keep_monotone_after_restore(self):
        restored = StationSet.from_state(self._populated("linear").state_dict())
        assert restored.add(Point(1, 1)) == restored.total_assigned - 1
        assert restored.add(Point(2, 2)) == restored.total_assigned - 1

    def test_empty_set_roundtrip(self):
        store = StationSet([Point(5, 5)])
        store.remove(0)
        restored = StationSet.from_state(json_roundtrip(store.state_dict()))
        assert len(restored) == 0
        assert restored.total_assigned == 1
        with pytest.raises(ValueError):
            restored.nearest(Point(0, 0))

    def test_min_spacing_inf_encodes_as_none(self):
        state = StationSet([Point(0, 0)]).state_dict()
        assert state["min_spacing"] is None
        json.dumps(state, allow_nan=False)  # strict-JSON clean


class TestLiveWindowRoundtrip:
    def test_partially_filled(self):
        window = LiveWindow(10)
        for i in range(4):
            window.push(float(i), float(-i))
        restored = LiveWindow.from_state(json_roundtrip(window.state_dict()))
        np.testing.assert_array_equal(restored.array(), window.array())

    def test_wrapped_ring(self):
        window = LiveWindow(5)
        for i in range(13):  # wraps the ring twice
            window.push(float(i), float(i * 2))
        restored = LiveWindow.from_state(json_roundtrip(window.state_dict()))
        np.testing.assert_array_equal(restored.array(), window.array())
        # Continued pushes behave identically.
        window.push(99.0, 98.0)
        restored.push(99.0, 98.0)
        np.testing.assert_array_equal(restored.array(), window.array())


class TestFleetRoundtrip:
    def test_bit_identical_after_rides(self):
        service = build_service(seed=21)
        for trip in make_trips(25, seed=21):
            service.handle_trip(trip)
        fleet = service.fleet
        restored = Fleet.from_state(json_roundtrip(fleet.state_dict()))
        assert restored.state_dict() == fleet.state_dict()
        assert restored.stations == fleet.stations
        assert [b.battery.level for b in restored.bikes] == [
            b.battery.level for b in fleet.bikes
        ]


class TestPlannerContinuation:
    def test_restored_planner_makes_identical_decisions(self):
        service = build_service(seed=31)
        planner = service.planner
        stream = [t.end for t in make_trips(80, seed=31)]
        for dest in stream[:40]:
            planner.offer(dest)
        restored = EsharingPlanner.from_state(
            json_roundtrip(planner.state_dict()),
            constant_facility_cost(COST_VALUE),
        )
        for dest in stream[40:]:
            assert restored.offer(dest) == planner.offer(dest)
        a, b = planner.state_dict(), restored.state_dict()
        a["ks_seconds"] = b["ks_seconds"] = 0.0
        assert a == b

    def test_rng_stream_survives_restore(self):
        service = build_service(seed=41)
        planner = service.planner
        restored = EsharingPlanner.from_state(
            json_roundtrip(planner.state_dict()),
            constant_facility_cost(COST_VALUE),
        )
        # The next uniforms drawn by each planner must be the same bits.
        assert planner._rng.uniform() == restored._rng.uniform()
        assert planner._rng.integers(1 << 62) == restored._rng.integers(1 << 62)

    def test_state_without_history_drops_decisions_only(self):
        service = build_service(seed=51)
        planner = service.planner
        for dest in [t.end for t in make_trips(20, seed=51)]:
            planner.offer(dest)
        slim = planner.state_dict(include_history=False)
        assert slim["decisions"] is None
        restored = EsharingPlanner.from_state(
            json_roundtrip(slim), constant_facility_cost(COST_VALUE)
        )
        assert restored.decisions == []
        assert restored.walking == planner.walking
        assert restored.stations == planner.stations


class TestServiceRoundtrip:
    def test_bit_identical_continuation(self):
        trips = make_trips(120, seed=61)
        reference = build_service(seed=61)
        twin = build_service(seed=61)
        for t in trips[:60]:
            reference.handle_trip(t)
            twin.handle_trip(t)
        restored = PlacementService.from_state(
            json_roundtrip(twin.state_dict()),
            constant_facility_cost(COST_VALUE),
        )
        for t in trips[60:]:
            reference.handle_trip(t)
            restored.handle_trip(t)
        assert restored.responses == reference.responses
        assert scrub(restored.state_dict()) == scrub(reference.state_dict())
        restored.consistency_check()

    def test_rack_subscription_rewired_on_restore(self):
        """A station opened *after* restore must still grow a fleet rack."""
        service = build_service(seed=71)
        restored = PlacementService.from_state(
            json_roundtrip(service.state_dict()),
            constant_facility_cost(COST_VALUE),
        )
        before = len(restored.fleet.stations)
        new_id = restored.planner.station_set.add(Point(512.0, 1024.0))
        assert len(restored.fleet.stations) == before + 1
        assert restored.fleet.stations[new_id] == Point(512.0, 1024.0)
