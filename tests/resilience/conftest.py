"""Shared builders for the resilience suite.

Everything is seeded and deterministic: the same (seed, n) always yields
the same trip stream and the same service, which is what lets the parity
tests demand bit-identical recovery rather than approximate agreement.
"""

from datetime import datetime, timedelta

import numpy as np
import pytest

from repro.core import (
    EsharingConfig,
    EsharingPlanner,
    PlacementService,
    constant_facility_cost,
)
from repro.datasets import TripRecord
from repro.energy import Fleet
from repro.geo import Point

COST_VALUE = 8000.0


def make_trips(n, seed=0, shift_at=None, shift=(6000.0, 6000.0)):
    """A deterministic trip stream; destinations jump by ``shift`` from
    index ``shift_at`` on (to force a KS regime change mid-stream)."""
    rng = np.random.default_rng(seed)
    t0 = datetime(2017, 5, 10)
    records = []
    for i in range(n):
        sx, sy = rng.uniform(0.0, 2000.0, 2)
        ex, ey = rng.uniform(0.0, 2000.0, 2)
        if shift_at is not None and i >= shift_at:
            ex += shift[0]
            ey += shift[1]
        records.append(
            TripRecord(
                order_id=i, user_id=i % 40, bike_id=i % 60, bike_type=1,
                start_time=t0 + timedelta(seconds=30 * i),
                start=Point(sx, sy), end=Point(ex, ey),
            )
        )
    return records


def build_service(seed=0, n_bikes=80, beta=1.0):
    """A fresh PlacementService over a 3x3 anchor grid (9 stations)."""
    rng = np.random.default_rng(seed + 100)
    anchors = [
        Point(float(x), float(y)) for x in (0, 1000, 2000) for y in (0, 1000, 2000)
    ]
    historical = rng.uniform(0.0, 2000.0, size=(300, 2))
    planner = EsharingPlanner(
        anchors,
        constant_facility_cost(COST_VALUE),
        historical,
        np.random.default_rng(seed + 1),
        EsharingConfig(beta=beta),
    )
    fleet = Fleet(
        planner.stations, n_bikes=n_bikes, rng=np.random.default_rng(seed + 2)
    )
    return PlacementService(planner, fleet)


def scrub(state):
    """Zero the one wall-clock field excluded from parity comparisons."""
    state["planner"]["ks_seconds"] = 0.0
    return state


@pytest.fixture
def trips():
    return make_trips(60, seed=7)


@pytest.fixture
def service():
    return build_service(seed=7)
