"""Tests for the fault-injection harness itself."""

import numpy as np
import pytest

from repro.core import EsharingConfig, EsharingPlanner, constant_facility_cost
from repro.energy import Fleet
from repro.geo import Point
from repro.resilience import (
    ChaosConfig,
    FaultInjector,
    InjectedCrash,
    SnapshotError,
    SnapshotStore,
    simulate_period_crash,
)
from repro.resilience.chaos import crashing_stream
from repro.sim import SystemSimulator

from .conftest import COST_VALUE, make_trips


class TestChaosConfig:
    def test_defaults_are_quiet(self):
        config = ChaosConfig()
        assert config.p_drop == config.p_duplicate == config.p_swap == 0.0

    @pytest.mark.parametrize(
        "field", ["p_duplicate", "p_drop", "p_swap", "torn_write_rate"]
    )
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_validated(self, field, value):
        with pytest.raises(ValueError):
            ChaosConfig(**{field: value})


class TestCrashingStream:
    def test_crashes_after_n(self):
        trips = make_trips(10, seed=1)
        seen = []
        with pytest.raises(InjectedCrash):
            for t in crashing_stream(trips, crash_after=4):
                seen.append(t)
        assert seen == trips[:4]

    def test_crashes_even_at_stream_end(self):
        with pytest.raises(InjectedCrash):
            list(crashing_stream(make_trips(3, seed=1), crash_after=99))

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            list(crashing_stream([], crash_after=-1))


class TestMutateTrips:
    def test_deterministic_per_seed(self):
        trips = make_trips(60, seed=2)
        config = ChaosConfig(seed=5, p_duplicate=0.2, p_drop=0.2, p_swap=0.2)
        a = FaultInjector(config).mutate_trips(trips)
        b = FaultInjector(config).mutate_trips(trips)
        assert a == b
        c = FaultInjector(ChaosConfig(seed=6, p_duplicate=0.2, p_drop=0.2,
                                      p_swap=0.2)).mutate_trips(trips)
        assert a != c

    def test_zero_rates_are_identity(self):
        trips = make_trips(20, seed=3)
        assert FaultInjector().mutate_trips(trips) == trips

    def test_duplicate_rate_one_doubles(self):
        trips = make_trips(15, seed=4)
        out = FaultInjector(ChaosConfig(p_duplicate=1.0)).mutate_trips(trips)
        assert len(out) == 2 * len(trips)
        assert out[0] == out[1] == trips[0]

    def test_drop_rate_one_empties(self):
        trips = make_trips(15, seed=4)
        assert FaultInjector(ChaosConfig(p_drop=1.0)).mutate_trips(trips) == []


class TestTornWrites:
    def test_torn_write_fails_checksum(self, tmp_path):
        injector = FaultInjector(ChaosConfig(seed=0, torn_write_rate=1.0))
        store = SnapshotStore(tmp_path, durable=False, write_bytes=injector.write_bytes)
        store.save({"state": list(range(100))}, seq=1)
        assert injector.torn_writes == 1
        with pytest.raises(SnapshotError):
            store.load_latest()

    def test_zero_rate_delegates_to_atomic_writer(self, tmp_path):
        injector = FaultInjector(ChaosConfig(seed=0, torn_write_rate=0.0))
        store = SnapshotStore(tmp_path, durable=False, write_bytes=injector.write_bytes)
        store.save({"ok": True}, seq=1)
        assert injector.torn_writes == 0
        assert store.load_latest().payload == {"ok": True}

    def test_torn_newest_falls_back_to_good(self, tmp_path):
        good = SnapshotStore(tmp_path, durable=False)
        good.save({"gen": 1}, seq=1)
        injector = FaultInjector(ChaosConfig(seed=0, torn_write_rate=1.0))
        torn = SnapshotStore(tmp_path, durable=False, write_bytes=injector.write_bytes)
        torn.save({"gen": 2}, seq=2)
        assert good.load_latest().payload == {"gen": 1}

    def test_corrupt_file_modes(self, tmp_path):
        victim = tmp_path / "f.bin"
        victim.write_bytes(b"0123456789")
        FaultInjector.corrupt_file(victim, mode="truncate")
        assert victim.read_bytes() == b"01234"
        victim.write_bytes(b"0123456789")
        FaultInjector.corrupt_file(victim, mode="flip")
        data = victim.read_bytes()
        assert len(data) == 10 and data != b"0123456789"
        with pytest.raises(ValueError):
            FaultInjector.corrupt_file(victim, mode="nope")
        victim.write_bytes(b"")
        with pytest.raises(ValueError):
            FaultInjector.corrupt_file(victim)


class TestSimulatePeriodCrash:
    def _build(self, seed):
        rng = np.random.default_rng(seed + 100)
        anchors = [
            Point(float(x), float(y)) for x in (0, 1000, 2000) for y in (0, 1000, 2000)
        ]
        historical = rng.uniform(0.0, 2000.0, size=(200, 2))
        planner = EsharingPlanner(
            anchors,
            constant_facility_cost(COST_VALUE),
            historical,
            np.random.default_rng(seed + 1),
            EsharingConfig(beta=1.0),
        )
        fleet = Fleet(
            planner.stations, n_bikes=60, rng=np.random.default_rng(seed + 2)
        )
        return planner, fleet

    def test_recovered_period_is_consistent(self):
        planner, fleet = self._build(seed=9)
        injector = FaultInjector(
            ChaosConfig(seed=9, p_duplicate=0.1, p_drop=0.1, p_swap=0.1)
        )
        trips = injector.mutate_trips(make_trips(120, seed=9))
        simulator, report = simulate_period_crash(
            lambda p, f: SystemSimulator(p, f, rng=np.random.default_rng(99)),
            planner,
            fleet,
            constant_facility_cost(COST_VALUE),
            trips,
            crash_after=len(trips) // 2,
        )
        # The re-run period saw the whole stream, crash notwithstanding,
        # and the recovered simulator's invariants hold.
        assert report.trips_requested == len(trips)
        simulator.consistency_check()
