"""Tests for repro.resilience.scrub (the storage integrity scrubber)."""

import json
import shutil
from pathlib import Path

from repro.resilience import (
    CheckpointingService,
    FaultFS,
    TripJournal,
    constant_cost_spec,
    repair_journal_tail,
    scrub_checkpoint_dir,
    scrub_journal,
    scrub_snapshots,
    scrub_tree,
)

from .conftest import COST_VALUE, build_service, make_trips, scrub


def _checkpoint_dir(tmp_path, n=40, seed=7, checkpoint_every=15):
    """A real checkpoint directory: genesis + periodic snapshots + WAL."""
    service = CheckpointingService(
        build_service(seed=seed), tmp_path / "ckpt",
        checkpoint_every=checkpoint_every, durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )
    for trip in make_trips(n, seed=seed):
        service.handle_trip(trip)
    service.checkpoint()
    service.close()
    return tmp_path / "ckpt"


def _recovered_state(directory):
    service = CheckpointingService.recover(directory, durable=False)
    state = scrub(service.service.state_dict())
    service.close()
    return state


class TestScrubJournal:
    def test_clean_journal_untouched(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        journal = directory / "journal.jsonl"
        before = journal.read_bytes()
        assert scrub_journal(journal) == []
        assert journal.read_bytes() == before

    def test_missing_journal_is_fine(self, tmp_path):
        assert scrub_journal(tmp_path / "absent.jsonl") == []

    def test_torn_tail_repaired_to_replayable_prefix(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        journal = directory / "journal.jsonl"
        intact = journal.read_bytes()
        with open(journal, "ab") as f:
            f.write(b"0123456789abcdef {torn mid-append")
        findings = scrub_journal(journal, repair=True, durable=False)
        assert [(f.kind, f.action) for f in findings] == [
            ("journal_torn_tail", "repaired")
        ]
        assert journal.read_bytes() == intact
        TripJournal(journal, durable=False).scan()  # replayable again

    def test_check_mode_reports_without_writing(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        journal = directory / "journal.jsonl"
        with open(journal, "ab") as f:
            f.write(b"torn")
        damaged = journal.read_bytes()
        findings = scrub_journal(journal, repair=False)
        assert [(f.kind, f.action) for f in findings] == [
            ("journal_torn_tail", "found")
        ]
        assert journal.read_bytes() == damaged

    def test_midfile_damage_refused(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        journal = directory / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        lines[1] = b"0123456789abcdef {damaged}\n"
        journal.write_bytes(b"".join(lines))
        before = journal.read_bytes()
        findings = scrub_journal(journal, repair=True, durable=False)
        assert [(f.kind, f.action) for f in findings] == [
            ("journal_midfile", "refused")
        ]
        assert journal.read_bytes() == before  # refusals never write

    def test_seq_jump_refused(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        journal = directory / "journal.jsonl"
        lines = journal.read_bytes().splitlines(keepends=True)
        del lines[1]  # drop a mid-file record: seqs jump
        journal.write_bytes(b"".join(lines))
        findings = scrub_journal(journal, repair=True, durable=False)
        assert [(f.kind, f.action) for f in findings] == [
            ("journal_seq_jump", "refused")
        ]

    def test_repair_journal_tail_alias(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        journal = directory / "journal.jsonl"
        with open(journal, "ab") as f:
            f.write(b"torn")
        findings = repair_journal_tail(journal, durable=False)
        assert findings and findings[0].action == "repaired"


class TestScrubSnapshots:
    def test_bitrot_snapshot_demoted_and_recovery_falls_back(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        expected = _recovered_state(directory)
        snapshots = sorted(directory.glob("snapshot-*.json"))
        assert len(snapshots) >= 2
        FaultFS.bitrot(snapshots[-1], seed=3)
        findings = scrub_snapshots(directory, repair=True, durable=False)
        assert [(f.kind, f.action) for f in findings] == [
            ("snapshot_corrupt", "demoted")
        ]
        demoted = snapshots[-1].with_name(snapshots[-1].name + ".corrupt")
        assert demoted.exists() and not snapshots[-1].exists()
        # Previous good snapshot + journal tail reproduce the exact state.
        assert _recovered_state(directory) == expected

    def test_check_mode_leaves_corrupt_snapshot(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        snapshots = sorted(directory.glob("snapshot-*.json"))
        FaultFS.bitrot(snapshots[-1], seed=3)
        findings = scrub_snapshots(directory, repair=False)
        assert [(f.kind, f.action) for f in findings] == [
            ("snapshot_corrupt", "found")
        ]
        assert snapshots[-1].exists()

    def test_all_snapshots_corrupt_refused(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        for path in directory.glob("snapshot-*.json"):
            FaultFS.bitrot(path, seed=3)
        findings = scrub_snapshots(directory, repair=True, durable=False)
        kinds = [f.kind for f in findings]
        assert "no_usable_snapshot" in kinds
        assert findings[-1].action == "refused"


class TestScrubCheckpointDir:
    def test_clean_directory_clean_report(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        report = scrub_checkpoint_dir(directory, durable=False, record=False)
        assert report.clean
        assert report.snapshots_checked >= 2
        assert report.journals_checked == 1

    def test_orphan_tmp_removed(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        orphan = directory / "snapshot-0000000099.json.tmp-abc123"
        orphan.write_text("half written")
        report = scrub_checkpoint_dir(directory, durable=False, record=False)
        assert not orphan.exists()
        assert [(f.kind, f.action) for f in report.findings] == [
            ("orphan_tmp", "removed")
        ]

    def test_damaged_log_lines_dropped(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        logs = directory / "logs"
        logs.mkdir()
        log = logs / "incidents.jsonl"
        log.write_text('{"seq": 1}\nnot json at all\n{"seq": 2}\n{"torn')
        report = scrub_checkpoint_dir(directory, durable=False, record=False)
        assert any(
            f.kind == "log_damaged_lines" and f.action == "repaired"
            for f in report.findings
        )
        rows = [json.loads(l) for l in log.read_text().splitlines()]
        assert rows == [{"seq": 1}, {"seq": 2}]

    def test_record_appends_scrub_log(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        (directory / "x.tmp-1").write_text("orphan")
        scrub_checkpoint_dir(directory, durable=False, record=True)
        rows = [
            json.loads(l)
            for l in (directory / "logs" / "scrub.jsonl").read_text().splitlines()
        ]
        assert rows[0]["repaired"] == 1
        assert rows[1]["kind"] == "orphan_tmp"

    def test_check_mode_writes_nothing(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        (directory / "x.tmp-1").write_text("orphan")
        report = scrub_checkpoint_dir(directory, repair=False, record=True)
        assert report.found == 1
        assert (directory / "x.tmp-1").exists()
        assert not (directory / "logs" / "scrub.jsonl").exists()


class TestScrubTree:
    def _fleet_root(self, tmp_path):
        root = tmp_path / "fleet"
        root.mkdir()
        (root / "shardplan.json").write_text('{"plan": {}, "build": {}}')
        for sid in range(2):
            sdir = root / f"shard-{sid:03d}"
            sdir.mkdir()
            src = _checkpoint_dir(tmp_path / f"seed-{sid}", seed=sid)
            for path in src.iterdir():
                (sdir / path.name).write_bytes(path.read_bytes())
        return root

    def test_plain_directory_delegates(self, tmp_path):
        directory = _checkpoint_dir(tmp_path)
        report = scrub_tree(directory, durable=False, record=False)
        assert report.clean and report.journals_checked == 1

    def test_fleet_root_scrubs_every_shard(self, tmp_path):
        root = self._fleet_root(tmp_path)
        with open(root / "shard-001" / "journal.jsonl", "ab") as f:
            f.write(b"torn tail bytes")
        report = scrub_tree(root, durable=False, record=False)
        assert report.journals_checked == 2
        assert [(f.kind, f.action) for f in report.findings] == [
            ("journal_torn_tail", "repaired")
        ]
        assert report.findings[0].path.startswith("shard-001")

    def test_unreadable_manifest_refused(self, tmp_path):
        root = self._fleet_root(tmp_path)
        (root / "shardplan.json").write_text("{torn manifes")
        report = scrub_tree(root, durable=False, record=False)
        assert any(
            f.kind == "manifest_unreadable" and f.action == "refused"
            for f in report.findings
        )

    def test_committed_fixture_round_trips(self, tmp_path):
        """The CI fixture tree stays valid: check finds all three planted
        damages, repair fixes them, and every shard recovers."""
        fixture = Path(__file__).parents[1] / "fixtures" / "scrub-fleet"
        root = tmp_path / "scrub-fleet"
        shutil.copytree(fixture, root)
        found = scrub_tree(root, repair=False, durable=False, record=False)
        assert {f.kind for f in found.findings} == {
            "snapshot_corrupt", "journal_torn_tail", "orphan_tmp"
        }
        repaired = scrub_tree(root, repair=True, durable=False, record=False)
        assert repaired.repaired == 3 and not repaired.refused
        assert scrub_tree(root, repair=False, durable=False, record=False).clean
        for sdir in sorted(root.glob("shard-*")):
            CheckpointingService.recover(sdir, durable=False).close()

    def test_unreadable_halo_removed(self, tmp_path):
        root = self._fleet_root(tmp_path)
        (root / "halo.json").write_text("{torn halo")
        report = scrub_tree(root, durable=False, record=False)
        assert any(
            f.kind == "halo_unreadable" and f.action == "removed"
            for f in report.findings
        )
        assert not (root / "halo.json").exists()
