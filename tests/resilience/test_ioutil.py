"""Tests for repro.ioutil (atomic writes, checksums, fault seam, rotation)."""

import os

import pytest

from repro.ioutil import (
    atomic_write_bytes,
    atomic_write_text,
    checksum_hex,
    rotate_file,
)
from repro.resilience.faultfs import FaultFS, FaultFSConfig


class TestChecksum:
    def test_stable(self):
        assert checksum_hex(b"abc") == checksum_hex(b"abc")
        assert checksum_hex(b"abc") != checksum_hex(b"abd")

    def test_is_sha256_hex(self):
        digest = checksum_hex(b"")
        assert len(digest) == 64
        int(digest, 16)  # valid hex


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        returned = atomic_write_bytes(target, b"payload", durable=False)
        assert returned == target
        assert target.read_bytes() == b"payload"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"old", durable=False)
        atomic_write_bytes(target, b"new", durable=False)
        assert target.read_bytes() == b"new"

    def test_no_tmp_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"x", durable=False)
        atomic_write_text(tmp_path / "b.txt", "y", durable=False)
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"good", durable=False)
        # Writing "to" a path whose parent is a file must fail ...
        bogus = target / "child.bin"
        with pytest.raises(OSError):
            atomic_write_bytes(bogus, b"bad", durable=False)
        # ... without touching the existing file or leaving tmp litter.
        assert target.read_bytes() == b"good"
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []

    def test_durable_mode_also_writes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"synced", durable=True)
        assert target.read_bytes() == b"synced"

    def test_text_roundtrip(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "héllo\n", durable=False)
        assert target.read_text(encoding="utf-8") == "héllo\n"


class TestAtomicWriteUnderFaults:
    """The PR-8 invariant: an injected write/fsync failure never leaves
    an orphan tmp file, and the destination holds the old bytes or the
    new bytes — never a prefix of the new ones."""

    def _assert_old_or_new(self, tmp_path, target, expected_old):
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []
        if target.exists():
            assert target.read_bytes() == expected_old

    @pytest.mark.parametrize("had_old", [True, False])
    def test_enospc_mid_write(self, tmp_path, had_old):
        target = tmp_path / "current.bin"
        if had_old:
            atomic_write_bytes(target, b"old bytes", durable=False)
        fs = FaultFS(FaultFSConfig(p_enospc=1.0))
        with fs.inject():
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"new bytes", durable=True)
        assert fs.counters.enospc == 1
        self._assert_old_or_new(tmp_path, target, b"old bytes")
        assert target.exists() == had_old

    @pytest.mark.parametrize("had_old", [True, False])
    def test_torn_write(self, tmp_path, had_old):
        target = tmp_path / "current.bin"
        if had_old:
            atomic_write_bytes(target, b"old bytes", durable=False)
        fs = FaultFS(FaultFSConfig(p_torn=1.0))
        with fs.inject():
            with pytest.raises(OSError):
                atomic_write_bytes(target, b"new bytes longer", durable=True)
        assert fs.counters.torn == 1
        # The torn prefix landed in the tmp file only — which must be
        # gone; the destination never sees a prefix.
        self._assert_old_or_new(tmp_path, target, b"old bytes")

    @pytest.mark.parametrize("had_old", [True, False])
    def test_fsync_failure(self, tmp_path, had_old):
        target = tmp_path / "current.txt"
        if had_old:
            atomic_write_text(target, "old", durable=False)
        fs = FaultFS(FaultFSConfig(p_fsync=1.0))
        with fs.inject():
            with pytest.raises(OSError):
                atomic_write_text(target, "new", durable=True)
        assert fs.counters.fsync == 1
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []
        if had_old:
            assert target.read_text() == "old"

    def test_budgeted_faults_then_success(self, tmp_path):
        target = tmp_path / "current.bin"
        fs = FaultFS(FaultFSConfig(p_enospc=1.0, max_faults=2))
        with fs.inject():
            for _ in range(2):
                with pytest.raises(OSError):
                    atomic_write_bytes(target, b"payload", durable=True)
            atomic_write_bytes(target, b"payload", durable=True)
        assert target.read_bytes() == b"payload"
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []


class TestRotateFile:
    def test_under_threshold_keeps_file(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("row\n")
        assert rotate_file(path, max_bytes=100, durable=False) is False
        assert path.read_text() == "row\n"
        assert not (tmp_path / "log.1.jsonl").exists()

    def test_over_threshold_rotates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("x" * 64)
        assert rotate_file(path, max_bytes=32, durable=False) is True
        assert not path.exists()
        assert (tmp_path / "log.1.jsonl").read_text() == "x" * 64

    def test_pending_bytes_counted(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text("x" * 20)
        assert rotate_file(path, 32, pending_bytes=20, durable=False) is True
        assert (tmp_path / "log.1.jsonl").exists()

    def test_rotation_replaces_previous_generation(self, tmp_path):
        path = tmp_path / "log.jsonl"
        (tmp_path / "log.1.jsonl").write_text("ancient")
        path.write_text("y" * 64)
        rotate_file(path, max_bytes=32, durable=False)
        assert (tmp_path / "log.1.jsonl").read_text() == "y" * 64

    def test_missing_or_empty_never_rotates(self, tmp_path):
        path = tmp_path / "log.jsonl"
        assert rotate_file(path, max_bytes=1, durable=False) is False
        path.write_text("")
        assert rotate_file(path, max_bytes=1, durable=False) is False

    def test_max_bytes_validated(self, tmp_path):
        with pytest.raises(ValueError):
            rotate_file(tmp_path / "log.jsonl", max_bytes=0)
