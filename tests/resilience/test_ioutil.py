"""Tests for repro.ioutil (atomic writes, checksums)."""

import os

import pytest

from repro.ioutil import atomic_write_bytes, atomic_write_text, checksum_hex


class TestChecksum:
    def test_stable(self):
        assert checksum_hex(b"abc") == checksum_hex(b"abc")
        assert checksum_hex(b"abc") != checksum_hex(b"abd")

    def test_is_sha256_hex(self):
        digest = checksum_hex(b"")
        assert len(digest) == 64
        int(digest, 16)  # valid hex


class TestAtomicWrite:
    def test_writes_content(self, tmp_path):
        target = tmp_path / "out.bin"
        returned = atomic_write_bytes(target, b"payload", durable=False)
        assert returned == target
        assert target.read_bytes() == b"payload"

    def test_overwrites_atomically(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"old", durable=False)
        atomic_write_bytes(target, b"new", durable=False)
        assert target.read_bytes() == b"new"

    def test_no_tmp_left_behind(self, tmp_path):
        atomic_write_bytes(tmp_path / "a.bin", b"x", durable=False)
        atomic_write_text(tmp_path / "b.txt", "y", durable=False)
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []

    def test_failure_leaves_target_untouched(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"good", durable=False)
        # Writing "to" a path whose parent is a file must fail ...
        bogus = target / "child.bin"
        with pytest.raises(OSError):
            atomic_write_bytes(bogus, b"bad", durable=False)
        # ... without touching the existing file or leaving tmp litter.
        assert target.read_bytes() == b"good"
        leftovers = [p for p in os.listdir(tmp_path) if ".tmp-" in p]
        assert leftovers == []

    def test_durable_mode_also_writes(self, tmp_path):
        target = tmp_path / "out.bin"
        atomic_write_bytes(target, b"synced", durable=True)
        assert target.read_bytes() == b"synced"

    def test_text_roundtrip(self, tmp_path):
        target = tmp_path / "out.txt"
        atomic_write_text(target, "héllo\n", durable=False)
        assert target.read_text(encoding="utf-8") == "héllo\n"
