"""Crash-recovery parity: snapshot + journal replay vs the uninterrupted run.

The centerpiece is the kill-at-every-trip test: a 500-trip stream whose
destinations shift distribution mid-way (so the periodic KS test fires
*and* switches the penalty type), recovered from disk after **every**
trip and compared bit-for-bit against an uninterrupted twin.
"""

import pytest

from repro.core import constant_facility_cost
from repro.geo import Point
from repro.resilience import (
    CheckpointingService,
    FaultInjector,
    SnapshotVersionError,
    constant_cost_spec,
    encode_snapshot,
)
from repro.resilience.snapshot import SNAPSHOT_VERSION

from .conftest import COST_VALUE, build_service, make_trips, scrub

SPEC = constant_cost_spec(COST_VALUE)


def make_wrapped(directory, seed, checkpoint_every=25, **kwargs):
    return CheckpointingService(
        build_service(seed=seed),
        directory,
        checkpoint_every=checkpoint_every,
        durable=False,
        facility_cost_spec=SPEC,
        **kwargs,
    )


class TestKillAtEveryTrip:
    def test_bit_identical_recovery_after_every_trip(self, tmp_path):
        """Crash after trip k, for every k in a 500-trip stream."""
        n = 500
        trips = make_trips(n, seed=11, shift_at=n // 2)
        reference = build_service(seed=11)
        wrapped = make_wrapped(tmp_path / "run", seed=11)
        for k, trip in enumerate(trips, start=1):
            wrapped.handle_trip(trip)
            reference.handle_trip(trip)
            # The directory right now is exactly what a crash immediately
            # after trip k leaves behind: recover from it and compare.
            recovered = CheckpointingService.recover(tmp_path / "run", durable=False)
            assert recovered.applied_seq == k
            assert recovered.service.responses == reference.responses, (
                f"response stream diverged after crash at trip {k}"
            )
            assert scrub(recovered.service.state_dict()) == scrub(
                reference.state_dict()
            ), f"state diverged after crash at trip {k}"
            recovered.consistency_check()
            recovered.close()
        wrapped.close()
        # The stream must actually have exercised the hard cases: the
        # periodic KS checkpoint fired, and the distribution shift made
        # it switch penalty type mid-stream.
        planner = reference.planner
        assert planner.similarity_history, "no KS checkpoint fired"
        names = {d.penalty_name for d in planner.decisions}
        assert len(names) >= 2, f"penalty never switched (saw {names})"

    def test_recovered_run_continues_bit_identically(self, tmp_path):
        """Crash once, recover, finish — end state equals the reference."""
        trips = make_trips(200, seed=12, shift_at=100)
        reference = build_service(seed=12)
        for t in trips:
            reference.handle_trip(t)
        wrapped = make_wrapped(tmp_path / "run", seed=12)
        for t in trips[:137]:  # not on a checkpoint boundary
            wrapped.handle_trip(t)
        wrapped.close()
        recovered = CheckpointingService.recover(tmp_path / "run", durable=False)
        for t in trips[137:]:
            recovered.handle_trip(t)
        recovered.consistency_check()
        assert recovered.service.responses == reference.responses
        assert scrub(recovered.service.state_dict()) == scrub(reference.state_dict())
        recovered.close()


class TestTornSnapshotFallback:
    def test_falls_back_to_previous_good_generation(self, tmp_path):
        trips = make_trips(120, seed=13)
        reference = build_service(seed=13)
        for t in trips:
            reference.handle_trip(t)
        wrapped = make_wrapped(tmp_path / "run", seed=13, keep=10)
        for t in trips[:110]:
            wrapped.handle_trip(t)
        wrapped.close()
        # Tear the newest snapshot (seq 100); recovery must fall back to
        # seq 75 and replay a longer journal tail — same final state.
        newest = wrapped.store.list()[-1][1]
        FaultInjector.corrupt_file(newest, mode="truncate")
        recovered = CheckpointingService.recover(tmp_path / "run", durable=False)
        assert recovered.last_recovery.snapshot_seq == 75
        assert recovered.last_recovery.replayed == 35
        for t in trips[110:]:
            recovered.handle_trip(t)
        recovered.consistency_check()
        assert recovered.service.responses == reference.responses
        assert scrub(recovered.service.state_dict()) == scrub(reference.state_dict())
        recovered.close()


class TestDegenerateRecovery:
    def test_empty_journal_restore(self, tmp_path):
        """Crash before the first trip: the genesis snapshot carries it."""
        wrapped = make_wrapped(tmp_path / "run", seed=14)
        wrapped.close()
        recovered = CheckpointingService.recover(tmp_path / "run", durable=False)
        assert recovered.applied_seq == 0
        assert recovered.last_recovery.replayed == 0
        assert recovered.service.responses == []
        reference = build_service(seed=14)
        for t in make_trips(30, seed=14):
            recovered.handle_trip(t)
            reference.handle_trip(t)
        assert recovered.service.responses == reference.responses
        recovered.close()

    def test_all_offline_stations_retired_restore(self, tmp_path):
        """Every original anchor retired: the state must still round-trip
        and a post-restore trip is refused identically."""
        service = build_service(seed=15)
        for sid in list(service.active_station_ids):
            service.planner.remove_station(sid)
            service.retired.append(sid)
        service.consistency_check()
        from repro.core import PlacementService
        from repro.resilience import decode_snapshot

        payload = decode_snapshot(encode_snapshot(service.state_dict()))
        restored = PlacementService.from_state(
            payload, constant_facility_cost(COST_VALUE)
        )
        restored.consistency_check()
        assert restored.active_station_ids == []
        assert restored.retired == service.retired
        trip = make_trips(1, seed=15)[0]
        assert restored.handle_trip(trip).served is False
        assert service.handle_trip(trip).served is False
        assert restored.responses == service.responses

    def test_double_restore_is_idempotent(self, tmp_path):
        wrapped = make_wrapped(tmp_path / "run", seed=16)
        for t in make_trips(40, seed=16):
            wrapped.handle_trip(t)
        wrapped.close()
        first = CheckpointingService.recover(tmp_path / "run", durable=False)
        second = CheckpointingService.recover(tmp_path / "run", durable=False)
        assert first.applied_seq == second.applied_seq == 40
        assert first.service.responses == second.service.responses
        assert scrub(first.service.state_dict()) == scrub(
            second.service.state_dict()
        )
        # Recovery is read-only: a third recover still sees the same disk.
        first.close()
        second.close()
        third = CheckpointingService.recover(tmp_path / "run", durable=False)
        assert third.applied_seq == 40
        third.close()

    def test_version_mismatch_refused_not_skipped(self, tmp_path):
        wrapped = make_wrapped(tmp_path / "run", seed=17)
        for t in make_trips(30, seed=17):
            wrapped.handle_trip(t)
        wrapped.close()
        # Plant a *newer-format* snapshot on top of the good ones.  Even
        # though falling back would "work", recovery must refuse loudly.
        future = wrapped.store.path_for(999)
        future.write_bytes(
            encode_snapshot({"who": "knows"}, version=SNAPSHOT_VERSION + 1)
        )
        with pytest.raises(SnapshotVersionError) as err:
            CheckpointingService.recover(tmp_path / "run", durable=False)
        assert "refusing" in str(err.value)

    def test_recover_without_cost_spec_needs_callable(self, tmp_path):
        wrapped = CheckpointingService(
            build_service(seed=18), tmp_path / "run",
            checkpoint_every=25, durable=False,  # note: no facility_cost_spec
        )
        for t in make_trips(10, seed=18):
            wrapped.handle_trip(t)
        wrapped.close()
        with pytest.raises(ValueError, match="facility_cost"):
            CheckpointingService.recover(tmp_path / "run", durable=False)
        recovered = CheckpointingService.recover(
            tmp_path / "run",
            facility_cost=constant_facility_cost(COST_VALUE),
            durable=False,
        )
        assert recovered.applied_seq == 10
        recovered.close()


class TestDedup:
    def test_duplicates_screened_before_journal(self, tmp_path):
        trips = make_trips(30, seed=19)
        noisy = []
        for i, t in enumerate(trips):
            noisy.append(t)
            if i % 3 == 0:
                noisy.append(t)  # immediate redelivery
        reference = build_service(seed=19)
        for t in trips:
            reference.handle_trip(t)
        wrapped = make_wrapped(tmp_path / "run", seed=19)
        responses = [wrapped.handle_trip(t) for t in noisy]
        assert responses.count(None) == len(noisy) - len(trips)
        assert wrapped.service.responses == reference.responses
        # Only unique trips reached the journal.
        assert wrapped.journal.next_seq == len(trips) + 1
        wrapped.close()

    def test_dedup_survives_recovery(self, tmp_path):
        trips = make_trips(40, seed=20)
        wrapped = make_wrapped(tmp_path / "run", seed=20)
        for t in trips[:20]:
            wrapped.handle_trip(t)
        wrapped.close()
        recovered = CheckpointingService.recover(tmp_path / "run", durable=False)
        # An at-least-once upstream redelivers everything after a crash.
        responses = [recovered.handle_trip(t) for t in trips]
        assert all(r is None for r in responses[:20])
        assert all(r is not None for r in responses[20:])
        reference = build_service(seed=20)
        for t in trips:
            reference.handle_trip(t)
        assert recovered.service.responses == reference.responses
        recovered.close()


class TestConstructionGuards:
    def test_checkpoint_every_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            make_wrapped(tmp_path / "run", seed=1, checkpoint_every=0)

    def test_preserved_service_refused(self, tmp_path):
        service = build_service(seed=2)
        service.handle_trip(make_trips(1, seed=2)[0])
        with pytest.raises(ValueError, match="already handled"):
            CheckpointingService(
                service, tmp_path / "run", durable=False
            )

    def test_populated_directory_refused(self, tmp_path):
        make_wrapped(tmp_path / "run", seed=3).close()
        with pytest.raises(ValueError, match="recover"):
            make_wrapped(tmp_path / "run", seed=3)
