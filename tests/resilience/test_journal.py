"""Tests for the write-ahead trip journal."""

import pytest

from repro.resilience import JournalCorruptError, TripJournal

from .conftest import make_trips


@pytest.fixture
def journal_path(tmp_path):
    return tmp_path / "journal.jsonl"


class TestAppendReplay:
    def test_roundtrip_exact_trips(self, journal_path):
        trips = make_trips(10, seed=3)
        journal = TripJournal(journal_path, durable=False)
        seqs = [journal.append(t) for t in trips]
        journal.close()
        assert seqs == list(range(1, 11))
        entries = TripJournal(journal_path, durable=False).scan()
        assert [e.seq for e in entries] == seqs
        # TripRecord is a dataclass: full-field equality, datetimes and
        # float coordinates included.
        assert [e.trip for e in entries] == trips

    def test_replay_after_seq(self, journal_path):
        trips = make_trips(6, seed=4)
        journal = TripJournal(journal_path, durable=False)
        for t in trips:
            journal.append(t)
        tail = journal.replay(after_seq=4)
        assert [e.seq for e in tail] == [5, 6]
        assert [e.trip for e in tail] == trips[4:]

    def test_sequence_continues_after_reopen(self, journal_path):
        trips = make_trips(5, seed=5)
        first = TripJournal(journal_path, durable=False)
        for t in trips[:3]:
            first.append(t)
        first.close()
        second = TripJournal(journal_path, durable=False)
        assert second.next_seq == 4
        assert [second.append(t) for t in trips[3:]] == [4, 5]
        assert [e.seq for e in second.scan()] == [1, 2, 3, 4, 5]

    def test_missing_file_is_empty(self, journal_path):
        journal = TripJournal(journal_path, durable=False)
        assert journal.scan() == []
        assert journal.next_seq == 1

    def test_durable_appends(self, journal_path):
        journal = TripJournal(journal_path, durable=True)
        journal.append(make_trips(1)[0])
        journal.close()
        assert len(TripJournal(journal_path).scan()) == 1


class TestDamage:
    def _write(self, path, n):
        journal = TripJournal(path, durable=False)
        for t in make_trips(n, seed=6):
            journal.append(t)
        journal.close()

    def test_torn_tail_dropped_silently(self, journal_path):
        self._write(journal_path, 4)
        lines = journal_path.read_text().splitlines(keepends=True)
        torn = lines[-1][: len(lines[-1]) // 2]
        journal_path.write_text("".join(lines[:-1]) + torn)
        entries = TripJournal(journal_path, durable=False).scan()
        assert [e.seq for e in entries] == [1, 2, 3]

    def test_append_resumes_past_torn_tail(self, journal_path):
        self._write(journal_path, 4)
        lines = journal_path.read_text().splitlines(keepends=True)
        journal_path.write_text("".join(lines[:-1]) + lines[-1][:10])
        journal = TripJournal(journal_path, durable=False)
        # The torn record 4 is gone; the next append re-uses its seq.
        assert journal.next_seq == 4

    def test_midfile_damage_raises(self, journal_path):
        self._write(journal_path, 5)
        lines = journal_path.read_text().splitlines(keepends=True)
        lines[2] = lines[2][: len(lines[2]) // 2] + "\n"
        journal_path.write_text("".join(lines))
        with pytest.raises(JournalCorruptError):
            TripJournal(journal_path, durable=False)

    def test_sequence_jump_raises(self, journal_path):
        self._write(journal_path, 4)
        lines = journal_path.read_text().splitlines(keepends=True)
        del lines[1]  # a whole intact record vanished: seq 1 -> 3
        journal_path.write_text("".join(lines))
        with pytest.raises(JournalCorruptError):
            TripJournal(journal_path, durable=False)

    def test_blank_lines_tolerated(self, journal_path):
        self._write(journal_path, 2)
        journal_path.write_text(journal_path.read_text() + "\n\n")
        assert len(TripJournal(journal_path, durable=False).scan()) == 2
