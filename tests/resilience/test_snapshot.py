"""Tests for the snapshot file format and the rotating store."""

import json
import math

import pytest

from repro.resilience import (
    SNAPSHOT_VERSION,
    SnapshotCorruptError,
    SnapshotError,
    SnapshotStore,
    SnapshotVersionError,
    decode_snapshot,
    encode_snapshot,
)
from repro.resilience.chaos import FaultInjector


class TestEncodeDecode:
    def test_roundtrip(self):
        payload = {"a": [1, 2.5, "x"], "b": {"nested": None}}
        assert decode_snapshot(encode_snapshot(payload)) == payload

    def test_float_bits_survive(self):
        value = 0.1 + 0.2  # not representable exactly; repr round-trips
        out = decode_snapshot(encode_snapshot({"v": value}))
        assert out["v"] == value

    def test_nan_rejected_at_encode(self):
        with pytest.raises(ValueError):
            encode_snapshot({"v": math.nan})
        with pytest.raises(ValueError):
            encode_snapshot({"v": math.inf})

    def test_truncation_is_corrupt(self):
        data = encode_snapshot({"k": list(range(50))})
        for cut in (0, 5, len(data) // 2, len(data) - 2):
            with pytest.raises(SnapshotCorruptError):
                decode_snapshot(data[:cut])

    def test_bitflip_is_corrupt(self):
        data = bytearray(encode_snapshot({"k": "0123456789"}))
        mid = len(data) - 5  # inside the payload line
        data[mid] ^= 0xFF
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(bytes(data))

    def test_foreign_file_is_corrupt(self):
        with pytest.raises(SnapshotCorruptError):
            decode_snapshot(b'{"some": "json"}\n{"other": 1}\n')

    def test_version_mismatch_refused(self):
        data = encode_snapshot({"k": 1}, version=SNAPSHOT_VERSION + 1)
        with pytest.raises(SnapshotVersionError) as err:
            decode_snapshot(data)
        # The message must tell the operator what to do.
        assert "refusing" in str(err.value)

    def test_header_is_plain_json(self):
        head = encode_snapshot({}).split(b"\n")[0]
        header = json.loads(head)
        assert header["format"] == "esharing-snapshot"
        assert header["version"] == SNAPSHOT_VERSION


class TestSnapshotStore:
    def test_save_load(self, tmp_path):
        store = SnapshotStore(tmp_path, durable=False)
        store.save({"state": 1}, seq=10)
        snap = store.load_latest()
        assert snap.seq == 10
        assert snap.payload == {"state": 1}
        assert snap.path is not None

    def test_keeps_only_last_generations(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2, durable=False)
        for seq in (1, 2, 3, 4):
            store.save({"seq": seq}, seq=seq)
        assert [seq for seq, _ in store.list()] == [3, 4]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            SnapshotStore(tmp_path, keep=0)

    def test_negative_seq_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path, durable=False)
        with pytest.raises(ValueError):
            store.save({}, seq=-1)

    def test_empty_store_raises(self, tmp_path):
        with pytest.raises(SnapshotError):
            SnapshotStore(tmp_path, durable=False).load_latest()

    def test_torn_newest_falls_back(self, tmp_path):
        store = SnapshotStore(tmp_path, durable=False)
        store.save({"gen": "old"}, seq=1)
        path = store.save({"gen": "new"}, seq=2)
        FaultInjector.corrupt_file(path, mode="truncate")
        snap = store.load_latest()
        assert snap.seq == 1
        assert snap.payload == {"gen": "old"}

    def test_all_torn_raises_with_detail(self, tmp_path):
        store = SnapshotStore(tmp_path, durable=False)
        for seq in (1, 2):
            FaultInjector.corrupt_file(store.save({"s": seq}, seq=seq))
        with pytest.raises(SnapshotError) as err:
            store.load_latest()
        assert "skipped corrupt" in str(err.value)

    def test_version_mismatch_not_skipped(self, tmp_path):
        """A valid-but-newer snapshot must refuse, not fall back."""
        store = SnapshotStore(tmp_path, durable=False)
        store.save({"gen": "old"}, seq=1)
        newer = store.path_for(2)
        newer.write_bytes(encode_snapshot({"gen": "future"}, version=SNAPSHOT_VERSION + 1))
        with pytest.raises(SnapshotVersionError):
            store.load_latest()

    def test_unrelated_files_ignored(self, tmp_path):
        store = SnapshotStore(tmp_path, durable=False)
        (tmp_path / "journal.jsonl").write_text("not a snapshot\n")
        (tmp_path / "snapshot-0000000001.json.tmp-ab").write_text("partial")
        store.save({"ok": True}, seq=1)
        assert store.load_latest().payload == {"ok": True}
