"""Group-commit WAL: one fsync per block, scalar semantics preserved.

``TripJournal.append_block`` and ``CheckpointingService.handle_block``
must be byte- and state-identical to their per-trip counterparts — the
whole point of the columnar hot path is that batching the WAL write
changes *when* durability is paid for, never *what* is recorded.  The
one semantic shift (a mid-block apply failure leaves the block's tail
already journaled) is pinned down here via ``BlockApplyError`` and the
recovery replay.
"""

from datetime import datetime, timedelta

import pytest

from repro.core.tripblock import TripBlock
from repro.datasets.trips import TripRecord
from repro.errors import BlockApplyError
from repro.geo.points import Point
from repro.resilience import CheckpointingService, constant_cost_spec
from repro.resilience.journal import TripJournal

from .conftest import COST_VALUE, build_service, make_trips, scrub

CHECKPOINT_EVERY = 10


def build(tmp_path, name, seed=7):
    return CheckpointingService(
        build_service(seed=seed),
        tmp_path / name,
        checkpoint_every=CHECKPOINT_EVERY,
        durable=False,
        facility_cost_spec=constant_cost_spec(COST_VALUE),
    )


class TestAppendBlock:
    def test_byte_identical_to_per_trip_appends(self, tmp_path):
        trips = make_trips(37, seed=3)
        scalar = TripJournal(tmp_path / "scalar.jsonl", durable=False)
        scalar_seqs = [scalar.append(t) for t in trips]
        scalar.close()

        blocked = TripJournal(tmp_path / "blocked.jsonl", durable=False)
        blocked_seqs = []
        for lo in range(0, len(trips), 8):
            blocked_seqs.extend(blocked.append_block(trips[lo : lo + 8]))
        blocked.close()

        assert blocked_seqs == scalar_seqs
        assert (
            (tmp_path / "blocked.jsonl").read_bytes()
            == (tmp_path / "scalar.jsonl").read_bytes()
        )

    def test_empty_block_is_a_no_op(self, tmp_path):
        journal = TripJournal(tmp_path / "j.jsonl", durable=False)
        assert journal.append_block([]) == []
        assert journal.next_seq == 1
        journal.append_block(make_trips(2, seed=1))
        assert journal.next_seq == 3
        journal.close()

    def test_sequence_continues_across_block_and_scalar(self, tmp_path):
        trips = make_trips(7, seed=2)
        journal = TripJournal(tmp_path / "j.jsonl", durable=False)
        assert journal.append(trips[0]) == 1
        assert journal.append_block(trips[1:4]) == [2, 3, 4]
        assert journal.append(trips[4]) == 5
        journal.close()
        reopened = TripJournal(tmp_path / "j.jsonl", durable=False)
        assert reopened.next_seq == 6
        assert [e.seq for e in reopened.scan()] == [1, 2, 3, 4, 5]

    def test_torn_tail_of_a_group_commit_is_tolerated(self, tmp_path):
        """A crash mid-group-write leaves an intact prefix plus at most
        one torn final line — exactly the scalar torn-tail contract."""
        trips = make_trips(12, seed=4)
        path = tmp_path / "j.jsonl"
        journal = TripJournal(path, durable=False)
        journal.append_block(trips)
        journal.close()
        blob = path.read_bytes()
        lines = blob.splitlines(keepends=True)
        # tear the last record in half, as an interrupted write would
        path.write_bytes(b"".join(lines[:-1]) + lines[-1][: len(lines[-1]) // 2])
        survivor = TripJournal(path, durable=False)
        entries = survivor.scan()
        assert [e.seq for e in entries] == list(range(1, len(trips)))
        assert survivor.next_seq == len(trips)  # torn seq 12 is reusable
        survivor.close()


def adversarial_trips(start_us_offsets):
    """Trips whose floats stress ``repr`` round-tripping: shortest-repr
    decimals, denormals, negative zero, huge/tiny magnitudes, and every
    None/value combination of the optional fields."""
    values = [
        (0.1 + 0.2, 1e-17),
        (-0.0, 123456789.123456789),
        (5e-324, 1e307),
        (1.0 / 3.0, 1e-300),
        (2.0, 7.0),
    ]
    trips = []
    for i, offset_us in enumerate(start_us_offsets):
        x, y = values[i % len(values)]
        trips.append(
            TripRecord(
                order_id=i,
                user_id=100 + i,
                bike_id=200 + i,
                bike_type=i % 2,
                start_time=datetime(2017, 5, 10) + timedelta(microseconds=offset_us),
                start=Point(x, y),
                end=Point(y, x),
                geodesic_m=None if i % 3 == 0 else x * 7.0,
                battery=None if i % 2 == 0 else 0.1 + 0.2,
            )
        )
    return trips


class TestBlockNativeEncoding:
    @pytest.mark.parametrize(
        "offsets",
        [
            list(range(0, 10_000_000, 1_000_000)),  # whole seconds
            list(range(0, 10_000_000, 999_999)),  # sub-second components
        ],
        ids=["vectorized-iso", "per-row-iso"],
    )
    def test_columnar_bytes_match_record_path(self, tmp_path, offsets):
        trips = adversarial_trips(offsets)
        block = TripBlock.from_trips(trips)
        scalar = TripJournal(tmp_path / "scalar.jsonl", durable=False)
        for t in trips:
            scalar.append(t)
        scalar.close()
        blocked = TripJournal(tmp_path / "blocked.jsonl", durable=False)
        assert blocked.append_block(block) == list(range(1, len(trips) + 1))
        blocked.close()
        assert (
            (tmp_path / "blocked.jsonl").read_bytes()
            == (tmp_path / "scalar.jsonl").read_bytes()
        )
        # and the journal replays to the identical trips
        assert [e.trip for e in TripJournal(
            tmp_path / "blocked.jsonl", durable=False
        ).scan()] == trips

    def test_non_finite_raises_like_scalar(self, tmp_path):
        trips = adversarial_trips([0, 1_000_000])
        bad = trips[1].with_end(Point(float("inf"), 0.0))
        block = TripBlock.from_trips([trips[0], bad])
        scalar = TripJournal(tmp_path / "scalar.jsonl", durable=False)
        scalar.append(trips[0])
        with pytest.raises(ValueError):
            scalar.append(bad)
        scalar.close()
        blocked = TripJournal(tmp_path / "blocked.jsonl", durable=False)
        with pytest.raises(ValueError):
            blocked.append_block(block)
        blocked.close()


class TestHandleBlock:
    def test_parity_with_scalar_service(self, tmp_path):
        trips = make_trips(55, seed=7)
        # interleave duplicates, including within one block
        stream = trips[:20] + trips[10:30] + trips[25:]
        scalar = build(tmp_path, "scalar")
        want = scalar.serve(stream)

        blocked = build(tmp_path, "blocked")
        got = []
        for lo in range(0, len(stream), 16):
            got.extend(blocked.handle_block(stream[lo : lo + 16]))

        assert got == want  # None markers for duplicates line up too
        assert blocked.service.responses == scalar.service.responses
        assert blocked.applied_seq == scalar.applied_seq
        assert scrub(blocked.service.state_dict()) == scrub(
            scalar.service.state_dict()
        )
        assert (
            (blocked.directory / "journal.jsonl").read_bytes()
            == (scalar.directory / "journal.jsonl").read_bytes()
        )
        blocked.close()
        scalar.close()

    def test_intra_block_duplicate_journaled_once(self, tmp_path):
        trips = make_trips(4, seed=8)
        block = [trips[0], trips[1], trips[1], trips[2]]
        service = build(tmp_path, "dup")
        responses = service.handle_block(block)
        assert responses[2] is None
        assert [r is not None for r in responses] == [True, True, False, True]
        assert service.journal.next_seq == 4  # three fresh trips journaled
        service.close()

    def test_mid_block_failure_surfaces_block_apply_error(self, tmp_path):
        trips = make_trips(30, seed=9)
        service = build(tmp_path, "faulty")
        service.handle_block(trips[:10])

        planner = service.service.planner
        real_offer = planner.offer
        calls = {"n": 0}

        def poisoned_offer(point):
            calls["n"] += 1
            if calls["n"] == 6:  # fails on the 6th trip of the block
                raise RuntimeError("injected planner corruption")
            return real_offer(point)

        planner.offer = poisoned_offer
        block = trips[10:25] + trips[20:22]  # two trailing duplicates
        with pytest.raises(BlockApplyError) as excinfo:
            service.handle_block(block)
        err = excinfo.value
        assert err.index == 5
        assert len(err.outcomes) == 5
        assert all(r is not None for r in err.outcomes)
        assert isinstance(err.cause, RuntimeError)
        # remainder classification: positions 5..16 of the block; the
        # two tail entries are duplicates of already-fresh positions
        assert len(err.remaining_fresh) == len(block) - err.index
        assert err.remaining_fresh[:1] == [True]  # the failing trip itself
        assert err.remaining_fresh[-2:] == [False, False]
        # group commit journaled the whole fresh chunk before applying
        assert service.journal.next_seq == 26
        service.close()

        # ...so recovery replays the journaled tail with a healed
        # planner and converges on the scalar no-fault state.
        healed = CheckpointingService.recover(
            tmp_path / "faulty",
            facility_cost=None,
            checkpoint_every=CHECKPOINT_EVERY,
            durable=False,
        )
        reference = build(tmp_path, "reference")
        reference.serve(trips[:25])
        assert healed.service.responses == reference.service.responses
        assert scrub(healed.service.state_dict()) == scrub(
            reference.service.state_dict()
        )
        healed.close()
        reference.close()
