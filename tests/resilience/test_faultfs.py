"""Tests for repro.resilience.faultfs (seeded disk-fault injection)."""

import errno

import pytest

from repro.ioutil import atomic_write_bytes, fs_write, install_fs_seam
from repro.resilience.faultfs import FaultFS, FaultFSConfig


def _write(fs, path, data):
    """Drive the seam protocol directly against a real file handle."""
    mode = "ab" if isinstance(data, bytes) else "a"
    with open(path, mode) as fh:
        fs.write(fh, data, path)


class TestConfig:
    @pytest.mark.parametrize("field", ["p_enospc", "p_torn", "p_fsync"])
    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_rates_validated(self, field, value):
        with pytest.raises(ValueError):
            FaultFSConfig(**{field: value})

    def test_max_faults_positive(self):
        with pytest.raises(ValueError):
            FaultFSConfig(max_faults=0)

    def test_defaults_are_passthrough(self, tmp_path):
        fs = FaultFS()
        _write(fs, tmp_path / "f.txt", "hello")
        assert (tmp_path / "f.txt").read_text() == "hello"
        assert fs.counters.faults == 0


class TestInjection:
    def test_enospc_writes_nothing(self, tmp_path):
        fs = FaultFS(FaultFSConfig(p_enospc=1.0))
        path = tmp_path / "f.txt"
        with pytest.raises(OSError) as exc:
            _write(fs, path, "payload")
        assert exc.value.errno == errno.ENOSPC
        assert path.read_text() == ""
        assert fs.counters.enospc == 1

    def test_torn_write_is_strict_prefix(self, tmp_path):
        fs = FaultFS(FaultFSConfig(p_torn=1.0))
        path = tmp_path / "f.txt"
        with pytest.raises(OSError) as exc:
            _write(fs, path, "0123456789")
        assert exc.value.errno == errno.EIO
        landed = path.read_text()
        assert 0 < len(landed) < 10
        assert "0123456789".startswith(landed)
        assert fs.counters.torn == 1

    def test_fsync_failure_after_data_landed(self, tmp_path):
        fs = FaultFS(FaultFSConfig(p_fsync=1.0))
        path = tmp_path / "f.txt"
        with open(path, "a") as fh:
            fs.write(fh, "data", path)
            fh.flush()
            with pytest.raises(OSError):
                fs.fsync(fh.fileno(), path)
        assert path.read_text() == "data"
        assert fs.counters.fsync == 1

    def test_match_filter_scopes_faults(self, tmp_path):
        fs = FaultFS(FaultFSConfig(p_enospc=1.0, match="journal"))
        _write(fs, tmp_path / "snapshot.json", "safe")
        with pytest.raises(OSError):
            _write(fs, tmp_path / "journal.jsonl", "boom")
        assert (tmp_path / "snapshot.json").read_text() == "safe"

    def test_budget_caps_total_faults(self, tmp_path):
        fs = FaultFS(FaultFSConfig(p_enospc=1.0, max_faults=2))
        path = tmp_path / "f.txt"
        failures = 0
        for _ in range(5):
            try:
                _write(fs, path, "x")
            except OSError:
                failures += 1
        assert failures == 2
        assert path.read_text() == "xxx"  # writes after the budget land

    def test_deterministic_schedule(self, tmp_path):
        def run(tag):
            fs = FaultFS(FaultFSConfig(seed=42, p_torn=0.5))
            outcomes = []
            for i in range(20):
                try:
                    _write(fs, tmp_path / f"{tag}-{i}", "abcdefgh")
                except OSError:
                    outcomes.append(i)
            return outcomes

        assert run("a") == run("b")

    def test_zero_rate_consumes_no_draws(self, tmp_path):
        """A zero-rate category (and poison markers) must not shift the
        torn-write schedule — the chaos-harness decoupling rule."""

        def torn_schedule(tag, **extra):
            fs = FaultFS(FaultFSConfig(seed=3, p_torn=0.3, **extra))
            torn = []
            for i in range(30):
                try:
                    _write(fs, tmp_path / f"{tag}-{i}", "abcdefgh")
                except OSError as exc:
                    if exc.errno == errno.EIO:
                        torn.append(i)
            return torn

        baseline = torn_schedule("plain")
        assert torn_schedule("zeros", p_enospc=0.0, p_fsync=0.0) == baseline
        # Poison markers are draw-free, so an (unmatched) marker leaves
        # the schedule alone too.
        assert torn_schedule("marked", poison_markers=("nope",)) == baseline
        assert baseline  # the schedule actually fired


class TestPoisonMarkers:
    def test_marker_always_fails(self, tmp_path):
        fs = FaultFS(FaultFSConfig(poison_markers=('"order_id":7,',)))
        path = tmp_path / "journal.jsonl"
        for _ in range(3):
            with pytest.raises(OSError):
                _write(fs, path, '{"order_id":7,"x":1}\n')
        _write(fs, path, '{"order_id":70,"x":1}\n')  # not the marker
        assert path.read_text() == '{"order_id":70,"x":1}\n'
        assert fs.counters.poisoned == 3

    def test_marker_exempt_from_budget(self, tmp_path):
        fs = FaultFS(FaultFSConfig(poison_markers=("bad",), max_faults=1))
        path = tmp_path / "f.txt"
        with pytest.raises(OSError):
            _write(fs, path, "bad record")
        with pytest.raises(OSError):
            _write(fs, path, "bad record")  # still fails past the budget

    def test_marker_checks_bytes_payloads(self, tmp_path):
        fs = FaultFS(FaultFSConfig(poison_markers=("bad",)))
        with pytest.raises(OSError):
            _write(fs, tmp_path / "f.bin", b"a bad byte payload")


class TestSeamScoping:
    def test_inject_installs_and_restores(self, tmp_path):
        fs = FaultFS(FaultFSConfig(p_enospc=1.0))
        with fs.inject():
            with pytest.raises(OSError):
                atomic_write_bytes(tmp_path / "f.bin", b"x", durable=False)
        # Seam restored: the same write now succeeds.
        atomic_write_bytes(tmp_path / "f.bin", b"x", durable=False)
        assert (tmp_path / "f.bin").read_bytes() == b"x"

    def test_inject_restores_on_exception(self, tmp_path):
        fs = FaultFS()
        with pytest.raises(RuntimeError):
            with fs.inject():
                raise RuntimeError("boom")
        path = tmp_path / "f.txt"
        with open(path, "a") as fh:
            fs_write(fh, "plain", path)  # passthrough again
        assert path.read_text() == "plain"

    def test_install_returns_previous(self):
        fs = FaultFS()
        previous = install_fs_seam(fs)
        try:
            assert install_fs_seam(previous) is fs
        finally:
            install_fs_seam(None)


class TestBitrot:
    def test_flips_exactly_one_bit(self, tmp_path):
        path = tmp_path / "f.bin"
        original = bytes(range(64))
        path.write_bytes(original)
        offset = FaultFS.bitrot(path, seed=5)
        mutated = path.read_bytes()
        assert len(mutated) == len(original)
        diff = [i for i in range(len(original)) if mutated[i] != original[i]]
        assert diff == [offset]
        xor = mutated[offset] ^ original[offset]
        assert xor and (xor & (xor - 1)) == 0  # single bit

    def test_deterministic(self, tmp_path):
        a, b = tmp_path / "a.bin", tmp_path / "b.bin"
        a.write_bytes(b"same content")
        b.write_bytes(b"same content")
        assert FaultFS.bitrot(a, seed=9) == FaultFS.bitrot(b, seed=9)
        assert a.read_bytes() == b.read_bytes()

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.bin"
        path.write_bytes(b"")
        with pytest.raises(ValueError):
            FaultFS.bitrot(path)
