"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_with_options(self):
        args = build_parser().parse_args(["run", "fig5", "--seed", "3", "--csv", "x.csv"])
        assert args.experiment == "fig5"
        assert args.seed == 3
        assert args.csv == "x.csv"


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "finished in" in out

    def test_run_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig7a.csv"
        assert main(["run", "fig7a", "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("m,")
        assert len(lines) > 2

    def test_run_respects_seed(self, capsys):
        assert main(["run", "thm1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "seed=5" in out


class TestScrubCommand:
    def test_missing_directory_is_usage_error(self, tmp_path, capsys):
        assert main(["scrub", "--dir", str(tmp_path / "absent")]) == 2
        assert "no such directory" in capsys.readouterr().err

    def test_clean_directory_exits_zero(self, tmp_path, capsys):
        assert main(["scrub", "--dir", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_check_mode_reports_damage_without_repairing(self, tmp_path, capsys):
        orphan = tmp_path / "snapshot-1.json.tmp-abc"
        orphan.write_text("half written")
        assert main(["scrub", "--dir", str(tmp_path), "--check"]) == 4
        assert orphan.exists()
        assert "orphan_tmp" in capsys.readouterr().out

    def test_repair_mode_fixes_and_exits_zero(self, tmp_path, capsys):
        orphan = tmp_path / "snapshot-1.json.tmp-abc"
        orphan.write_text("half written")
        assert main(["scrub", "--dir", str(tmp_path)]) == 0
        assert not orphan.exists()
        assert main(["scrub", "--dir", str(tmp_path), "--check"]) == 0


class TestIncidentsCommand:
    def _logs(self, tmp_path):
        logs = tmp_path / "guard-logs"
        logs.mkdir()
        return logs

    def test_no_logs_is_usage_error(self, tmp_path, capsys):
        assert main(["incidents", "--dir", str(tmp_path)]) == 2
        assert "no guard logs" in capsys.readouterr().err

    def test_torn_trailing_line_skipped_with_warning(self, tmp_path, capsys):
        logs = self._logs(tmp_path)
        (logs / "incidents.jsonl").write_text(
            '{"seq": 1, "kind": "late", "detail": "d"}\n{"torn'
        )
        assert main(["incidents", "--dir", str(tmp_path)]) == 0
        captured = capsys.readouterr()
        assert "incidents.jsonl: 1 row(s)" in captured.out
        assert "skipped 1 torn line(s)" in captured.err

    def test_rotated_predecessor_read_first(self, tmp_path, capsys):
        logs = self._logs(tmp_path)
        (logs / "incidents.1.jsonl").write_text(
            '{"seq": 1, "kind": "old", "detail": "a"}\n'
        )
        (logs / "incidents.jsonl").write_text(
            '{"seq": 2, "kind": "new", "detail": "b"}\n'
        )
        assert main(["incidents", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "incidents.jsonl: 2 row(s) (+ rotated)" in out
        assert out.index("kind=old") < out.index("kind=new")


class TestServeArgumentHardening:
    def test_zero_shards_is_usage_error(self, tmp_path, capsys):
        assert main(["serve", "--dir", str(tmp_path), "--shards", "0"]) == 2
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_non_positive_block_size_is_usage_error(self, tmp_path, capsys):
        assert main(["serve", "--dir", str(tmp_path), "--block-size", "0"]) == 2
        assert "--block-size must be >= 1" in capsys.readouterr().err

    def test_block_size_checked_before_sharded_dispatch(self, tmp_path, capsys):
        args = ["serve", "--dir", str(tmp_path), "--shards", "2", "--block-size", "-4"]
        assert main(args) == 2
        assert "--block-size must be >= 1" in capsys.readouterr().err

    def test_unknown_scenario_is_usage_error(self, tmp_path, capsys):
        args = ["serve", "--dir", str(tmp_path), "--scenario", "tsunami"]
        assert main(args) == 2
        err = capsys.readouterr().err
        assert "unknown scenario 'tsunami'" in err
        assert "stadium" in err  # the one-liner lists the known names

    def test_named_scenario_feeds_the_serve_path(self, tmp_path, capsys):
        args = [
            "serve", "--dir", str(tmp_path / "ckpt"),
            "--scenario", "baseline", "--trips", "40", "--guard",
        ]
        assert main(args) == 0
        out = capsys.readouterr().out
        assert "guarded run:" in out
        assert "final health healthy" in out


class TestIncidentsKindFilter:
    def _logs(self, tmp_path):
        logs = tmp_path / "guard-logs"
        logs.mkdir()
        (logs / "incidents.jsonl").write_text(
            '{"seq": 1, "kind": "backpressure", "detail": "raised"}\n'
            '{"seq": 2, "kind": "ladder", "detail": "rung 0 -> 1"}\n'
            '{"seq": 3, "kind": "breaker", "detail": "ks open"}\n'
        )
        (logs / "deadletter.jsonl").write_text(
            '{"seq": 4, "rule": "overload_shed", "reason": "queue full"}\n'
            '{"seq": 5, "rule": "out_of_bounds", "reason": "nan"}\n'
        )
        return logs

    def test_kind_filters_incident_rows(self, tmp_path, capsys):
        self._logs(tmp_path)
        assert main(["incidents", "--dir", str(tmp_path), "--kind", "ladder"]) == 0
        out = capsys.readouterr().out
        assert "incidents.jsonl: 1 row(s) matching 'ladder' (of 3)" in out
        assert "rung 0 -> 1" in out
        assert "ks open" not in out

    def test_kind_matches_dead_letter_rules_too(self, tmp_path, capsys):
        self._logs(tmp_path)
        assert main(["incidents", "--dir", str(tmp_path), "--kind", "shed"]) == 0
        out = capsys.readouterr().out
        assert "deadletter.jsonl: 1 row(s) matching 'shed' (of 2)" in out
        assert "overload_shed" in out
        assert "out_of_bounds" not in out

    def test_no_filter_shows_everything(self, tmp_path, capsys):
        self._logs(tmp_path)
        assert main(["incidents", "--dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "incidents.jsonl: 3 row(s)" in out
        assert "deadletter.jsonl: 2 row(s)" in out


class TestStatsCommand:
    def test_synthetic_stats(self, capsys):
        from repro.cli import main

        assert main(["stats", "--days", "3", "--volume", "300"]) == 0
        out = capsys.readouterr().out
        assert "workload: synthetic" in out
        assert "peak hours" in out

    def test_mobike_stats(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets import SyntheticConfig, mobike_like_dataset, save_mobike_csv

        ds = mobike_like_dataset(
            seed=1, days=2,
            config=SyntheticConfig(trips_per_weekday=80, trips_per_weekend_day=60),
        )
        path = tmp_path / "trips.csv"
        save_mobike_csv(ds, path)
        assert main(["stats", "--mobike", str(path)]) == 0
        out = capsys.readouterr().out
        assert str(path) in out
        assert "trips:" in out
