"""Tests for repro.cli."""

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_list_parses(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_parses_with_options(self):
        args = build_parser().parse_args(["run", "fig5", "--seed", "3", "--csv", "x.csv"])
        assert args.experiment == "fig5"
        assert args.seed == 3
        assert args.csv == "x.csv"


class TestMain:
    def test_list_prints_all_experiments(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment_errors(self, capsys):
        assert main(["run", "nope"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_cheap_experiment(self, capsys):
        assert main(["run", "fig5"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 5" in out
        assert "finished in" in out

    def test_run_with_csv(self, tmp_path, capsys):
        csv_path = tmp_path / "fig7a.csv"
        assert main(["run", "fig7a", "--csv", str(csv_path)]) == 0
        lines = csv_path.read_text().strip().splitlines()
        assert lines[0].startswith("m,")
        assert len(lines) > 2

    def test_run_respects_seed(self, capsys):
        assert main(["run", "thm1", "--seed", "5"]) == 0
        out = capsys.readouterr().out
        assert "seed=5" in out


class TestStatsCommand:
    def test_synthetic_stats(self, capsys):
        from repro.cli import main

        assert main(["stats", "--days", "3", "--volume", "300"]) == 0
        out = capsys.readouterr().out
        assert "workload: synthetic" in out
        assert "peak hours" in out

    def test_mobike_stats(self, tmp_path, capsys):
        from repro.cli import main
        from repro.datasets import SyntheticConfig, mobike_like_dataset, save_mobike_csv

        ds = mobike_like_dataset(
            seed=1, days=2,
            config=SyntheticConfig(trips_per_weekday=80, trips_per_weekend_day=60),
        )
        path = tmp_path / "trips.csv"
        save_mobike_csv(ds, path)
        assert main(["stats", "--mobike", str(path)]) == 0
        out = capsys.readouterr().out
        assert str(path) in out
        assert "trips:" in out
