"""Tests for repro.routing.tsp."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geo import Point
from repro.routing import Tour, held_karp, nearest_neighbor_tour, solve_tsp, two_opt


def line_points(n, spacing=10.0):
    return [Point(i * spacing, 0.0) for i in range(n)]


def random_points(seed, n, extent=1000.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, extent, size=(n, 2))]


class TestTour:
    def test_position_of(self):
        t = Tour((2, 0, 1), 5.0)
        assert t.position_of(2) == 1
        assert t.position_of(1) == 3

    def test_position_of_missing_raises(self):
        with pytest.raises(ValueError):
            Tour((0, 1), 1.0).position_of(5)

    def test_n_sites(self):
        assert Tour((0, 1, 2), 2.0).n_sites == 3


class TestNearestNeighbor:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            nearest_neighbor_tour([])

    def test_bad_start_rejected(self):
        with pytest.raises(ValueError):
            nearest_neighbor_tour(line_points(3), start=5)

    def test_single_point(self):
        t = nearest_neighbor_tour([Point(0, 0)])
        assert t.order == (0,)
        assert t.length == 0.0

    def test_line_is_optimal_from_end(self):
        pts = line_points(5)
        t = nearest_neighbor_tour(pts, start=0)
        assert t.order == (0, 1, 2, 3, 4)
        assert t.length == pytest.approx(40.0)

    def test_visits_every_site_once(self):
        pts = random_points(0, 20)
        t = nearest_neighbor_tour(pts)
        assert sorted(t.order) == list(range(20))


class TestTwoOpt:
    def test_improves_crossing_tour(self):
        # A square visited in crossing order: 2-opt should uncross it.
        pts = [Point(0, 0), Point(10, 10), Point(10, 0), Point(0, 10)]
        bad = Tour((0, 1, 2, 3), None)  # type: ignore[arg-type]
        bad = Tour((0, 1, 2, 3), 10 * (2**0.5) * 2 + 10)
        improved = two_opt(bad, pts)
        assert improved.length < bad.length

    def test_short_tour_unchanged(self):
        pts = line_points(3)
        t = nearest_neighbor_tour(pts)
        assert two_opt(t, pts).order == t.order

    def test_never_worse(self):
        pts = random_points(1, 30)
        t = nearest_neighbor_tour(pts)
        assert two_opt(t, pts).length <= t.length + 1e-9


class TestSolveTsp:
    def test_matches_held_karp_on_small_instances(self):
        # solve_tsp may start anywhere, so compare to the best exact open
        # tour over all start sites.
        for seed in range(5):
            pts = random_points(seed, 8)
            heuristic = solve_tsp(pts)
            exact = min(
                (held_karp(pts, start=s) for s in range(len(pts))),
                key=lambda t: t.length,
            )
            assert heuristic.length <= exact.length * 1.10 + 1e-9
            assert heuristic.length >= exact.length - 1e-9

    def test_permutation_valid(self):
        pts = random_points(9, 40)
        t = solve_tsp(pts)
        assert sorted(t.order) == list(range(40))

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=10, deadline=None)
    def test_length_matches_order(self, seed):
        pts = random_points(seed, 12)
        t = solve_tsp(pts)
        manual = sum(
            pts[t.order[i]].distance_to(pts[t.order[i + 1]])
            for i in range(len(t.order) - 1)
        )
        assert t.length == pytest.approx(manual)


class TestHeldKarp:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            held_karp([])

    def test_too_large_rejected(self):
        with pytest.raises(ValueError):
            held_karp(line_points(16))

    def test_single_point(self):
        t = held_karp([Point(0, 0)])
        assert t.order == (0,)

    def test_line_optimal(self):
        t = held_karp(line_points(6), start=0)
        assert t.length == pytest.approx(50.0)
        assert t.order == (0, 1, 2, 3, 4, 5)

    def test_starts_at_start(self):
        pts = random_points(2, 7)
        t = held_karp(pts, start=3)
        assert t.order[0] == 3

    def test_beats_or_ties_nearest_neighbor(self):
        for seed in range(4):
            pts = random_points(seed + 50, 9)
            assert held_karp(pts).length <= nearest_neighbor_tour(pts).length + 1e-9
