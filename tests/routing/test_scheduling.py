"""Tests for repro.routing.scheduling (multi-operator tours)."""

import numpy as np
import pytest

from repro.geo import Point
from repro.incentives import ChargingCostParams
from repro.routing import plan_multi_operator


def random_sites(seed, n, extent=3000.0):
    rng = np.random.default_rng(seed)
    return [Point(float(x), float(y)) for x, y in rng.uniform(0, extent, (n, 2))]


@pytest.fixture
def params():
    return ChargingCostParams(service_cost=60.0, delay_cost=5.0)


class TestValidation:
    def test_operators_positive(self, params):
        with pytest.raises(ValueError):
            plan_multi_operator(random_sites(0, 5), 0, params)

    def test_no_sites_empty_plan(self, params):
        plan = plan_multi_operator([], 3, params)
        assert plan.schedules == []
        assert plan.infrastructure_cost == 0.0
        assert plan.makespan_sites == 0


class TestSingleOperator:
    def test_matches_eq10(self, params):
        sites = random_sites(1, 8)
        plan = plan_multi_operator(sites, 1, params)
        assert plan.n_operators == 1
        n = 8
        assert plan.service_cost == pytest.approx(n * 60.0)
        assert plan.delay_cost == pytest.approx((n * n - n) / 2 * 5.0)

    def test_all_sites_covered_once(self, params):
        sites = random_sites(2, 10)
        plan = plan_multi_operator(sites, 1, params)
        assert sorted(plan.schedules[0].sites) == list(range(10))


class TestMultipleOperators:
    def test_partition_is_exact(self, params):
        sites = random_sites(3, 15)
        plan = plan_multi_operator(sites, 4, params)
        covered = sorted(i for s in plan.schedules for i in s.sites)
        assert covered == list(range(15))

    def test_more_operators_cut_delay_cost(self, params):
        sites = random_sites(4, 20)
        delays = [
            plan_multi_operator(sites, k, params, np.random.default_rng(0)).delay_cost
            for k in (1, 2, 4)
        ]
        assert delays[0] > delays[1] > delays[2]

    def test_service_cost_unchanged_by_k(self, params):
        sites = random_sites(5, 20)
        costs = {
            k: plan_multi_operator(sites, k, params, np.random.default_rng(0)).service_cost
            for k in (1, 2, 5)
        }
        assert len(set(costs.values())) == 1

    def test_makespan_shrinks_with_k(self, params):
        sites = random_sites(6, 24)
        m1 = plan_multi_operator(sites, 1, params).makespan_sites
        m4 = plan_multi_operator(sites, 4, params).makespan_sites
        assert m4 < m1
        assert m4 >= int(np.ceil(24 / 4))

    def test_clusters_balanced(self, params):
        sites = random_sites(7, 20)
        plan = plan_multi_operator(sites, 4, params, np.random.default_rng(1))
        sizes = [s.n_sites for s in plan.schedules]
        assert max(sizes) - min(sizes) <= 2

    def test_more_operators_than_sites(self, params):
        sites = random_sites(8, 3)
        plan = plan_multi_operator(sites, 10, params)
        covered = sorted(i for s in plan.schedules for i in s.sites)
        assert covered == [0, 1, 2]
        assert plan.n_operators <= 3

    def test_clustering_keeps_tours_local(self, params):
        """Two far-apart clusters should be split between two operators,
        keeping each tour inside one cluster."""
        left = [Point(float(i * 50), 0.0) for i in range(5)]
        right = [Point(float(10_000 + i * 50), 0.0) for i in range(5)]
        plan = plan_multi_operator(left + right, 2, params, np.random.default_rng(2))
        assert plan.n_operators == 2
        for schedule in plan.schedules:
            xs = [left[i].x if i < 5 else right[i - 5].x for i in schedule.sites]
            assert max(xs) - min(xs) < 5000.0
        # Total travel far below the single-operator plan which must
        # cross the gap.
        single = plan_multi_operator(left + right, 1, params)
        assert plan.total_travel_m < single.total_travel_m
