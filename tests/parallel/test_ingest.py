"""Tests for sharded Mobike CSV ingest (repro.parallel.ingest +
load_mobike_csv(workers=N)) — the serial loader is the oracle."""

import csv

import pytest

from repro.datasets import (
    MOBIKE_HEADER,
    QuarantineReport,
    SyntheticConfig,
    load_mobike_csv,
    mobike_like_dataset,
    save_mobike_csv,
)
from repro.parallel import chunk_byte_ranges

GOOD = [1, 2, 3, 1, "2017-05-10 08:00:00", "wx4g0bm", "wx4g0bn"]


def _write(path, rows):
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(MOBIKE_HEADER)
        writer.writerows(rows)


@pytest.fixture
def csv_path(tmp_path):
    """A few hundred rows with malformed ones scattered across shards."""
    cfg = SyntheticConfig(trips_per_weekday=150, trips_per_weekend_day=150)
    dataset = mobike_like_dataset(seed=7, days=2, config=cfg)
    path = tmp_path / "trips.csv"
    save_mobike_csv(dataset, path)
    lines = path.read_text().splitlines(keepends=True)
    # Damage rows near the start, middle and end so every shard of a
    # 2- or 4-way split sees at least one quarantine candidate.
    for row in (3, len(lines) // 3, len(lines) // 2, len(lines) - 2):
        parts = lines[row].split(",")
        parts[4] = "not-a-time"
        lines[row] = ",".join(parts)
    path.write_text("".join(lines))
    return path


class TestChunkByteRanges:
    def test_covers_file_exactly(self, csv_path):
        size = csv_path.stat().st_size
        header_end = len(csv_path.read_bytes().split(b"\n", 1)[0]) + 1
        ranges = chunk_byte_ranges(csv_path, 4, data_start=header_end)
        assert ranges[0][0] == header_end
        assert ranges[-1][1] == size
        for (_, end_a), (start_b, _) in zip(ranges, ranges[1:]):
            assert end_a == start_b

    def test_ranges_are_line_aligned(self, csv_path):
        data = csv_path.read_bytes()
        header_end = len(data.split(b"\n", 1)[0]) + 1
        for start, _ in chunk_byte_ranges(csv_path, 4, data_start=header_end):
            assert start == header_end or data[start - 1] == ord("\n")

    def test_more_chunks_than_lines(self, tmp_path):
        path = tmp_path / "tiny.csv"
        _write(path, [GOOD])
        header_end = len(path.read_bytes().split(b"\n", 1)[0]) + 1
        ranges = chunk_byte_ranges(path, 16, data_start=header_end)
        assert ranges[0][0] == header_end
        assert ranges[-1][1] == path.stat().st_size

    def test_invalid_chunk_count(self, csv_path):
        with pytest.raises(ValueError):
            chunk_byte_ranges(csv_path, 0)


class TestShardedParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_records_and_quarantine_identical(self, csv_path, workers):
        serial_report = QuarantineReport()
        serial = load_mobike_csv(
            csv_path, on_error="quarantine", quarantine=serial_report
        )
        sharded_report = QuarantineReport()
        sharded = load_mobike_csv(
            csv_path, on_error="quarantine", quarantine=sharded_report,
            workers=workers,
        )
        assert list(sharded) == list(serial)
        assert sharded_report.rows == serial_report.rows

    def test_clean_file_identical(self, tmp_path):
        cfg = SyntheticConfig(trips_per_weekday=80, trips_per_weekend_day=80)
        dataset = mobike_like_dataset(seed=9, days=1, config=cfg)
        path = tmp_path / "clean.csv"
        save_mobike_csv(dataset, path)
        assert list(load_mobike_csv(path, workers=3)) == list(load_mobike_csv(path))

    def test_strict_mode_raises_earliest_row(self, csv_path):
        with pytest.raises(ValueError) as serial_exc:
            load_mobike_csv(csv_path)
        with pytest.raises(ValueError) as sharded_exc:
            load_mobike_csv(csv_path, workers=4)
        # Same row, same field, same message — even though a later chunk
        # may hit its own malformed row first in wall-clock time.
        assert str(sharded_exc.value) == str(serial_exc.value)

    def test_limit_forces_serial_path(self, csv_path):
        # limit semantics are row-sequential; sharding is bypassed.
        a = load_mobike_csv(csv_path, on_error="quarantine", limit=20, workers=4)
        b = load_mobike_csv(csv_path, on_error="quarantine", limit=20)
        assert list(a) == list(b)

    def test_workers_one_is_serial(self, csv_path):
        a = load_mobike_csv(csv_path, on_error="quarantine", workers=1)
        b = load_mobike_csv(csv_path, on_error="quarantine")
        assert list(a) == list(b)

    def test_missing_column_rejected_before_forking(self, tmp_path):
        path = tmp_path / "bad.csv"
        with open(path, "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["orderid", "userid"])
            writer.writerow([1, 2])
        with pytest.raises(ValueError, match="missing required columns"):
            load_mobike_csv(path, workers=4)

    def test_empty_csv(self, tmp_path):
        path = tmp_path / "empty.csv"
        with open(path, "w", newline="") as f:
            csv.writer(f).writerow(MOBIKE_HEADER)
        assert len(load_mobike_csv(path, workers=4)) == 0
