"""Fan-out parity for sweep cells: serial == 2 workers == 4 workers."""

import pytest

from repro.experiments import run_pipeline_sweep
from repro.parallel import ParallelRunner, TaskSpec, spawn_seeds
from repro.parallel.cells import experiment_cell, offline_cell
from repro.sim.metrics import PhaseTimers


def _offline_tasks(n_cells, n_demands):
    return [
        TaskSpec(offline_cell, kwargs={"seed": ss, "n_demands": n_demands})
        for ss in spawn_seeds(0, n_cells)
    ]


class TestPlacementParity:
    @pytest.mark.parametrize("workers", [2, 4])
    def test_digests_match_serial(self, workers):
        tasks = _offline_tasks(n_cells=4, n_demands=120)
        serial = ParallelRunner(1).run(tasks)
        pooled = ParallelRunner(workers).run(tasks)
        assert [c["digest"] for c in pooled] == [c["digest"] for c in serial]

    def test_summary_scalars_match_serial(self):
        tasks = _offline_tasks(n_cells=3, n_demands=100)
        serial = ParallelRunner(1).run(tasks)
        pooled = ParallelRunner(2).run(tasks)
        for s, p in zip(serial, pooled):
            # Everything except the in-worker wall time is bit-identical.
            assert {k: v for k, v in s.items() if k != "seconds"} == {
                k: v for k, v in p.items() if k != "seconds"
            }


class TestExperimentCell:
    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError, match="unknown experiment"):
            experiment_cell("tableXX", seed=0)

    def test_cell_matches_direct_run(self):
        from repro.experiments import EXPERIMENTS

        cell = experiment_cell("fig7a", seed=1)
        direct = EXPERIMENTS["fig7a"](seed=1)
        assert cell["rows"] == [list(r) for r in direct.rows]
        assert cell["headers"] == list(direct.headers)


class TestPipelineSweep:
    def test_parallel_matches_serial(self):
        serial = run_pipeline_sweep(seeds=(0, 1), volume=150, workers=1)
        pooled = run_pipeline_sweep(seeds=(0, 1), volume=150, workers=2)
        assert pooled.rows == serial.rows
        assert [c["digest"] for c in pooled.extras["cells"]] == [
            c["digest"] for c in serial.extras["cells"]
        ]

    def test_phase_timers_survive_fanout(self):
        """Worker-side phase time must land in the merged summary, not
        vanish with the worker process."""
        result = run_pipeline_sweep(seeds=(0, 1), volume=150, workers=2)
        merged = result.extras["phase_seconds"]
        assert set(merged) == {"placement", "ks", "incentives"}
        assert sum(merged.values()) > 0.0
        per_cell = [c["phase_seconds"] for c in result.extras["cells"]]
        for phase in merged:
            assert merged[phase] == pytest.approx(
                sum(cell[phase] for cell in per_cell)
            )


class TestPhaseTimersMerge:
    def test_merge_adds_counters(self):
        a = PhaseTimers(placement=1.0, ks=0.5, incentives=0.25)
        a.merge({"placement": 2.0, "ks": 0.5, "incentives": 0.75})
        assert a.snapshot() == {"placement": 3.0, "ks": 1.0, "incentives": 1.0}

    def test_merge_accepts_timers(self):
        a = PhaseTimers(placement=1.0)
        a.merge(PhaseTimers(placement=0.5, ks=0.25))
        assert a.placement == 1.5
        assert a.ks == 0.25

    def test_merge_returns_self_for_chaining(self):
        a = PhaseTimers()
        assert a.merge({"placement": 1.0}).merge({"ks": 1.0}) is a

    def test_unknown_phase_rejected(self):
        with pytest.raises(ValueError, match="unknown phase"):
            PhaseTimers().merge({"warp_drive": 1.0})

    def test_from_snapshot_roundtrip(self):
        a = PhaseTimers(placement=1.0, ks=2.0, incentives=3.0)
        assert PhaseTimers.from_snapshot(a.snapshot()).snapshot() == a.snapshot()

    def test_simulator_merge_worker_timers(self):
        import numpy as np

        from repro.core import EsharingConfig, EsharingPlanner, constant_facility_cost
        from repro.energy import Fleet
        from repro.geo import Point
        from repro.sim import SystemSimulator

        rng = np.random.default_rng(0)
        anchors = [Point(float(x), float(y)) for x, y in rng.uniform(0, 2000, (6, 2))]
        planner = EsharingPlanner(
            anchors, constant_facility_cost(5_000.0),
            rng.uniform(0, 2000, (200, 2)), np.random.default_rng(1),
            EsharingConfig(),
        )
        fleet = Fleet(planner.stations, n_bikes=12, rng=np.random.default_rng(2))
        sim = SystemSimulator(planner, fleet)
        before = sim.timers.snapshot()
        sim.merge_worker_timers(
            {"placement": 1.0, "ks": 2.0, "incentives": 3.0},
            {"placement": 0.5, "ks": 0.0, "incentives": 0.5},
        )
        after = sim.timers.snapshot()
        assert after["placement"] == pytest.approx(before["placement"] + 1.5)
        assert after["ks"] == pytest.approx(before["ks"] + 2.0)
        assert after["incentives"] == pytest.approx(before["incentives"] + 3.5)
