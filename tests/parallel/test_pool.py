"""Tests for repro.parallel.pool — the deterministic fan-out/fan-in."""

import os
import time

import numpy as np
import pytest

from repro.errors import WorkerCrashError
from repro.parallel import ParallelRunner, TaskSpec, spawn_seeds, usable_cores


# Worker callables must live at module level so they pickle by name.
def _square(x):
    return x * x


def _slow_identity(x, delay):
    time.sleep(delay)
    return x


def _draw(seed):
    return float(np.random.default_rng(seed).uniform())


def _boom(msg):
    raise ValueError(msg)


def _die():
    os._exit(13)


def _hang():
    time.sleep(60.0)


class TestUsableCores:
    def test_positive(self):
        assert usable_cores() >= 1

    def test_bounded_by_cpu_count(self):
        assert usable_cores() <= (os.cpu_count() or 1)


class TestSpawnSeeds:
    def test_deterministic(self):
        a = spawn_seeds(7, 5)
        b = spawn_seeds(7, 5)
        assert [s.generate_state(4).tolist() for s in a] == [
            s.generate_state(4).tolist() for s in b
        ]

    def test_children_independent(self):
        draws = [_draw(s) for s in spawn_seeds(0, 8)]
        assert len(set(draws)) == 8

    def test_prefix_stable(self):
        """Task i's seed does not depend on how many siblings follow it."""
        short = spawn_seeds(3, 2)
        long = spawn_seeds(3, 6)
        for a, b in zip(short, long):
            assert a.generate_state(2).tolist() == b.generate_state(2).tolist()

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn_seeds(0, -1)


class TestTaskSpec:
    def test_run_in_process(self):
        assert TaskSpec(_square, args=(4,)).run() == 16

    def test_kwargs(self):
        assert TaskSpec(_slow_identity, kwargs={"x": 3, "delay": 0.0}).run() == 3

    def test_non_taskspec_rejected(self):
        with pytest.raises(TypeError):
            ParallelRunner(1).run([_square])


class TestCanonicalOrder:
    def test_serial_matches_pool(self):
        tasks = [TaskSpec(_square, args=(i,)) for i in range(10)]
        assert ParallelRunner(1).run(tasks) == ParallelRunner(2).run(tasks)

    def test_results_in_task_order_not_completion_order(self):
        # The first task sleeps longest: completion order is reversed,
        # the result list must not be.
        args = [(i, 0.3 - 0.1 * i) for i in range(3)]
        out = ParallelRunner(3).map(_slow_identity, args)
        assert out == [0, 1, 2]

    def test_map_labels_validated(self):
        with pytest.raises(ValueError):
            ParallelRunner(1).map(_square, [(1,), (2,)], labels=["only-one"])

    def test_seeded_draws_worker_count_invariant(self):
        seeds = spawn_seeds(11, 6)
        reference = [_draw(s) for s in seeds]
        for workers in (2, 4):
            assert ParallelRunner(workers).map(_draw, [(s,) for s in seeds]) == reference

    def test_empty_task_list(self):
        assert ParallelRunner(2).run([]) == []


class TestFailures:
    def test_task_exception_propagates_serial(self):
        with pytest.raises(ValueError, match="bad cell"):
            ParallelRunner(1).run([TaskSpec(_boom, args=("bad cell",))])

    def test_task_exception_propagates_pooled(self):
        tasks = [TaskSpec(_square, args=(1,)), TaskSpec(_boom, args=("bad cell",))]
        with pytest.raises(ValueError, match="bad cell"):
            ParallelRunner(2).run(tasks)

    def test_earliest_failure_wins(self):
        # Both tasks raise; the error from the first in task order
        # surfaces regardless of which worker finishes first.
        tasks = [
            TaskSpec(_boom, args=("first",), label="a"),
            TaskSpec(_boom, args=("second",), label="b"),
        ]
        with pytest.raises(ValueError, match="first"):
            ParallelRunner(2).run(tasks)

    def test_worker_crash_is_typed(self):
        tasks = [TaskSpec(_die, label="kamikaze")]
        with pytest.raises(WorkerCrashError, match="kamikaze"):
            ParallelRunner(2).run(tasks)

    def test_hung_task_times_out(self):
        runner = ParallelRunner(2, task_timeout=0.5)
        with pytest.raises(WorkerCrashError, match="exceeded"):
            runner.run([TaskSpec(_hang, label="wedged")])

    def test_invalid_workers_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(-1)

    def test_invalid_timeout_rejected(self):
        with pytest.raises(ValueError):
            ParallelRunner(2, task_timeout=0.0)

    def test_workers_none_uses_affinity(self):
        assert ParallelRunner(None).workers == usable_cores()
