"""Tests for repro.parallel.shared — shared-memory NumPy arrays."""

import numpy as np
import pytest

from repro.parallel import (
    ParallelRunner,
    SharedNDArray,
    attach_readonly,
)
from repro.parallel.cells import replay_cell


def _checksum(handle):
    return float(attach_readonly(handle).sum())


class TestRoundTrip:
    def test_bytes_survive(self):
        src = np.random.default_rng(0).uniform(size=(100, 2))
        with SharedNDArray.create(src) as shared:
            np.testing.assert_array_equal(shared.array(), src)

    def test_handle_reopens_same_data(self):
        src = np.arange(12, dtype=np.int64).reshape(3, 4)
        with SharedNDArray.create(src) as shared:
            reopened = shared.handle().open()
            try:
                np.testing.assert_array_equal(reopened.array(), src)
            finally:
                reopened.close()

    def test_view_is_readonly(self):
        with SharedNDArray.create(np.zeros(4)) as shared:
            view = shared.array()
            with pytest.raises(ValueError):
                view[0] = 1.0

    def test_attach_readonly_is_a_copy(self):
        src = np.ones(8)
        shared = SharedNDArray.create(src)
        copy = attach_readonly(shared.handle())
        shared.unlink()
        # The copy outlives the shared block.
        np.testing.assert_array_equal(copy, src)

    def test_handle_preserves_dtype_and_shape(self):
        src = np.zeros((2, 3), dtype=np.float32)
        with SharedNDArray.create(src) as shared:
            h = shared.handle()
            assert h.shape == (2, 3)
            assert np.dtype(h.dtype) == np.float32


class TestAcrossProcesses:
    def test_workers_read_shared_block(self):
        src = np.random.default_rng(1).uniform(size=(500, 2))
        with SharedNDArray.create(src) as shared:
            sums = ParallelRunner(2).map(_checksum, [(shared.handle(),)] * 3)
        assert sums == [pytest.approx(src.sum())] * 3

    def test_replay_cell_shared_equals_local(self):
        """A cell fed the historical sample via shared memory is
        bit-identical to one drawing the same sample locally."""
        anchor_rng = np.random.default_rng(0)
        anchor_rng.uniform(0, 8_000.0, size=(30, 2))  # skip the anchor draw
        hist = anchor_rng.uniform(0, 8_000.0, size=(5_000, 2))
        local = replay_cell(5, 400, n_anchors=30)
        with SharedNDArray.create(hist) as shared:
            via_shared = replay_cell(5, 400, n_anchors=30, historical=shared.handle())
        assert via_shared["digest"] == local["digest"]
