"""Tests for repro.incentives.adaptive (the Section IV-C Remarks loop)."""

import numpy as np
import pytest

from repro.energy import Fleet
from repro.geo import Point
from repro.incentives import (
    AdaptiveAlphaController,
    ChargingCostParams,
    IncentiveConfig,
    IncentiveMechanism,
    UserPopulation,
)


class TestControllerValidation:
    def test_bad_target(self):
        with pytest.raises(ValueError):
            AdaptiveAlphaController(target_acceptance=0.0)
        with pytest.raises(ValueError):
            AdaptiveAlphaController(target_acceptance=1.0)

    def test_bad_band(self):
        with pytest.raises(ValueError):
            AdaptiveAlphaController(alpha=0.5, alpha_min=0.6)
        with pytest.raises(ValueError):
            AdaptiveAlphaController(alpha=0.9, alpha_max=0.8)

    def test_bad_window_and_step(self):
        with pytest.raises(ValueError):
            AdaptiveAlphaController(window=0)
        with pytest.raises(ValueError):
            AdaptiveAlphaController(step=1.0)


class TestControllerDynamics:
    def test_raises_alpha_when_no_one_accepts(self):
        ctrl = AdaptiveAlphaController(alpha=0.2, window=10, target_acceptance=0.5)
        for _ in range(10):
            ctrl.observe(False)
        assert ctrl.alpha > 0.2
        assert ctrl.adjustments == 1

    def test_lowers_alpha_when_everyone_accepts(self):
        ctrl = AdaptiveAlphaController(alpha=0.8, window=10, target_acceptance=0.5)
        for _ in range(10):
            ctrl.observe(True)
        assert ctrl.alpha < 0.8

    def test_clamped_to_band(self):
        ctrl = AdaptiveAlphaController(
            alpha=0.9, alpha_max=0.95, window=5, step=2.0
        )
        for _ in range(50):
            ctrl.observe(False)
        assert ctrl.alpha == pytest.approx(0.95)
        ctrl2 = AdaptiveAlphaController(alpha=0.1, alpha_min=0.05, window=5, step=2.0)
        for _ in range(50):
            ctrl2.observe(True)
        assert ctrl2.alpha == pytest.approx(0.05)

    def test_no_adjustment_mid_window(self):
        ctrl = AdaptiveAlphaController(alpha=0.4, window=10)
        for _ in range(9):
            ctrl.observe(False)
        assert ctrl.alpha == 0.4
        assert ctrl.adjustments == 0

    def test_converges_near_target(self):
        """Against a fixed acceptance curve, alpha settles where the
        acceptance probability crosses the target."""
        rng = np.random.default_rng(0)
        ctrl = AdaptiveAlphaController(
            alpha=0.1, window=50, target_acceptance=0.5, step=1.15
        )
        # Acceptance probability grows linearly with alpha: p = alpha.
        for _ in range(4000):
            accepted = bool(rng.uniform() < ctrl.alpha)
            ctrl.observe(accepted)
        assert 0.3 <= ctrl.alpha <= 0.75


class TestMechanismIntegration:
    @pytest.fixture
    def fleet(self):
        stations = [Point(500.0 * i, 500.0 * (i % 3)) for i in range(9)]
        f = Fleet(stations, n_bikes=90, rng=np.random.default_rng(0))
        for b in f.bikes:
            b.battery.level = 0.9
        for b in f.bikes[:20]:
            b.battery.level = 0.1
        return f

    def test_controller_overrides_config_alpha(self, fleet):
        ctrl = AdaptiveAlphaController(alpha=0.77)
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(),
            config=IncentiveConfig(alpha=0.1),
            alpha_controller=ctrl,
        )
        assert mech.alpha == 0.77

    def test_offers_feed_controller(self, fleet):
        ctrl = AdaptiveAlphaController(alpha=0.3, window=5)
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(),
            config=IncentiveConfig(alpha=0.3),
            population=UserPopulation(walk_mean=1.0, walk_std=0.0,
                                      reward_mean=1e9, reward_std=0.0),
            rng=np.random.default_rng(1),
            alpha_controller=ctrl,
        )
        rng = np.random.default_rng(2)
        made = 0
        while made < 5:
            origin = int(rng.integers(9))
            dest = int(rng.integers(9))
            if origin == dest:
                continue
            out = mech.offer_ride(origin, dest, fleet.stations[dest])
            if out.offered:
                made += 1
        # Five straight declines complete a window and raise alpha.
        assert ctrl.alpha > 0.3
