"""Tests for repro.incentives.user_model (Eq. 13)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.incentives import UserPopulation, UserPreferences, accepts_offer


class TestUserPreferences:
    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            UserPreferences(max_walk_m=-1, min_reward=0)
        with pytest.raises(ValueError):
            UserPreferences(max_walk_m=100, min_reward=-0.1)


class TestAcceptsOffer:
    def test_accepts_when_both_conditions_hold(self):
        prefs = UserPreferences(max_walk_m=200, min_reward=0.5)
        assert accepts_offer(prefs, extra_walk_m=100, incentive=1.0)

    def test_rejects_long_walk(self):
        prefs = UserPreferences(max_walk_m=200, min_reward=0.5)
        assert not accepts_offer(prefs, extra_walk_m=300, incentive=5.0)

    def test_rejects_small_reward(self):
        prefs = UserPreferences(max_walk_m=200, min_reward=0.5)
        assert not accepts_offer(prefs, extra_walk_m=50, incentive=0.4)

    def test_walk_boundary_strict(self):
        """Eq. 13 uses a strict inequality on the walk."""
        prefs = UserPreferences(max_walk_m=200, min_reward=0.5)
        assert not accepts_offer(prefs, extra_walk_m=200, incentive=1.0)

    def test_reward_boundary_inclusive(self):
        """Eq. 13 uses v_u* <= v."""
        prefs = UserPreferences(max_walk_m=200, min_reward=0.5)
        assert accepts_offer(prefs, extra_walk_m=0, incentive=0.5)

    def test_negative_walk_rejected(self):
        prefs = UserPreferences(max_walk_m=200, min_reward=0.5)
        with pytest.raises(ValueError):
            accepts_offer(prefs, extra_walk_m=-1, incentive=1.0)

    @given(
        walk=st.floats(0, 1000),
        reward=st.floats(0, 5),
        incentive=st.floats(0, 5),
    )
    def test_monotone_in_incentive(self, walk, reward, incentive):
        prefs = UserPreferences(max_walk_m=walk, min_reward=reward)
        if accepts_offer(prefs, 10.0, incentive) and walk > 10.0:
            assert accepts_offer(prefs, 10.0, incentive + 1.0)


class TestUserPopulation:
    def test_defaults_valid(self):
        UserPopulation()

    def test_bad_params_rejected(self):
        with pytest.raises(ValueError):
            UserPopulation(walk_mean=0)
        with pytest.raises(ValueError):
            UserPopulation(walk_std=-1)

    def test_sample_nonnegative(self):
        rng = np.random.default_rng(0)
        pop = UserPopulation(walk_mean=10, walk_std=100, reward_mean=0.1, reward_std=2)
        for _ in range(200):
            prefs = pop.sample(rng)
            assert prefs.max_walk_m >= 0
            assert prefs.min_reward >= 0

    def test_sample_centered_on_means(self):
        rng = np.random.default_rng(1)
        pop = UserPopulation(walk_mean=250, walk_std=10, reward_mean=0.6, reward_std=0.01)
        walks = [pop.sample(rng).max_walk_m for _ in range(300)]
        assert np.mean(walks) == pytest.approx(250, rel=0.05)

    def test_rush_hour_less_cooperative_than_weekend(self):
        """Section IV-C: rush hour => small c_u, high v_u*."""
        rush = UserPopulation.rush_hour()
        weekend = UserPopulation.weekend()
        assert rush.walk_mean < weekend.walk_mean
        assert rush.reward_mean > weekend.reward_mean

    def test_rush_hour_accepts_less_often(self):
        rng = np.random.default_rng(2)
        offer_walk, offer_v = 150.0, 0.6

        def rate(pop):
            hits = sum(
                accepts_offer(pop.sample(rng), offer_walk, offer_v) for _ in range(500)
            )
            return hits / 500

        assert rate(UserPopulation.rush_hour()) < rate(UserPopulation.weekend())
