"""Tests for repro.incentives.charging_cost (Eqs. 10-12, Fig. 7)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.incentives import (
    ChargingCostParams,
    per_bike_cost,
    saving_ratio,
    saving_ratio_vec,
    tour_charging_cost,
)


class TestParams:
    def test_defaults_match_paper(self):
        # Section V: unit delay cost $5, unit energy cost $2.
        p = ChargingCostParams()
        assert p.delay_cost == 5.0
        assert p.energy_cost == 2.0

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            ChargingCostParams(service_cost=-1)
        with pytest.raises(ValueError):
            ChargingCostParams(delay_cost=-1)
        with pytest.raises(ValueError):
            ChargingCostParams(energy_cost=-1)


class TestTourCost:
    def test_empty_tour_zero(self):
        assert tour_charging_cost(ChargingCostParams(), []) == 0.0

    def test_eq10_formula(self):
        p = ChargingCostParams(service_cost=5.0, delay_cost=3.0, energy_cost=2.0)
        # n=3 stations, l=6 bikes: C = 3*5 + 6*2 + (9-3)/2*3 = 15+12+9 = 36.
        assert tour_charging_cost(p, [1, 2, 3]) == pytest.approx(36.0)

    def test_single_station_no_delay(self):
        p = ChargingCostParams(service_cost=5.0, delay_cost=100.0, energy_cost=1.0)
        assert tour_charging_cost(p, [4]) == pytest.approx(5.0 + 4.0)

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            tour_charging_cost(ChargingCostParams(), [1, -1])

    def test_order_invariant(self):
        p = ChargingCostParams()
        assert tour_charging_cost(p, [1, 5, 2]) == tour_charging_cost(p, [5, 2, 1])

    @given(st.lists(st.integers(0, 20), min_size=1, max_size=30))
    def test_aggregation_never_costs_more(self, counts):
        """Putting all bikes at one station is always cheapest (Eq. 11 >= 0)."""
        p = ChargingCostParams()
        spread = tour_charging_cost(p, counts)
        merged = tour_charging_cost(p, [sum(counts)])
        assert merged <= spread + 1e-9


class TestPerBikeCost:
    def test_formula(self):
        p = ChargingCostParams(service_cost=6.0, delay_cost=4.0, energy_cost=2.0)
        # b + q/l + t*d/l with l=3, t=2: 2 + 2 + 8/3.
        assert per_bike_cost(p, l_i=3, position=2) == pytest.approx(2 + 2 + 8 / 3)

    def test_decreases_with_more_bikes(self):
        p = ChargingCostParams()
        assert per_bike_cost(p, 10, 1) < per_bike_cost(p, 2, 1)

    def test_invalid_inputs(self):
        p = ChargingCostParams()
        with pytest.raises(ValueError):
            per_bike_cost(p, 0, 1)
        with pytest.raises(ValueError):
            per_bike_cost(p, 1, 0)


class TestSavingRatio:
    def test_no_aggregation_no_saving(self):
        assert saving_ratio(ChargingCostParams(), n=10, m=10) == pytest.approx(0.0)

    def test_bounds(self):
        p = ChargingCostParams()
        for n in (2, 5, 20):
            for m in range(1, n + 1):
                r = saving_ratio(p, n, m)
                assert 0.0 <= r < 1.0

    def test_monotone_in_m(self):
        p = ChargingCostParams()
        ratios = [saving_ratio(p, 20, m) for m in range(1, 21)]
        assert all(a >= b - 1e-12 for a, b in zip(ratios, ratios[1:]))

    def test_paper_magnitude(self):
        """Fig. 7(a): m/n ~ 0.65 brings about 50% saving (delay-dominated)."""
        p = ChargingCostParams(service_cost=1.0, delay_cost=5.0)
        r = saving_ratio(p, n=20, m=13)
        assert 0.4 <= r <= 0.7

    def test_quadratic_in_delay_dominated_regime(self):
        """For q=0 the saving is exactly 1 - m(m-1)/(n(n-1))."""
        p = ChargingCostParams(service_cost=0.0, delay_cost=5.0)
        assert saving_ratio(p, 10, 5) == pytest.approx(1 - (5 * 4) / (10 * 9))

    def test_linear_in_service_dominated_regime(self):
        """For d=0 the saving is exactly 1 - m/n."""
        p = ChargingCostParams(service_cost=7.0, delay_cost=0.0)
        assert saving_ratio(p, 10, 4) == pytest.approx(0.6)

    def test_invalid_m_rejected(self):
        with pytest.raises(ValueError):
            saving_ratio(ChargingCostParams(), n=5, m=0)
        with pytest.raises(ValueError):
            saving_ratio(ChargingCostParams(), n=5, m=6)

    def test_zero_costs_zero_saving(self):
        p = ChargingCostParams(service_cost=0.0, delay_cost=0.0)
        assert saving_ratio(p, 10, 2) == 0.0


class TestSavingRatioVec:
    """The broadcast Eq. 11 must match the scalar formula bit for bit."""

    def test_matches_scalar_elementwise(self):
        p = ChargingCostParams()
        n = 20
        ms = np.arange(1, n + 1)
        vec = saving_ratio_vec(p, n, ms)
        for m, r in zip(ms, vec):
            assert float(r) == saving_ratio(p, n, int(m))

    def test_broadcasts_over_n_and_m(self):
        p = ChargingCostParams(service_cost=3.0, delay_cost=2.0)
        ns = np.array([5, 10, 40])
        ms = np.array([2, 4, 13])
        vec = saving_ratio_vec(p, ns, ms)
        for n, m, r in zip(ns, ms, vec):
            assert float(r) == saving_ratio(p, int(n), int(m))

    def test_scalar_inputs_give_scalar_shape(self):
        p = ChargingCostParams()
        assert np.shape(saving_ratio_vec(p, 10, 5)) == ()
        assert float(saving_ratio_vec(p, 10, 5)) == saving_ratio(p, 10, 5)

    def test_zero_costs_zero_saving(self):
        p = ChargingCostParams(service_cost=0.0, delay_cost=0.0)
        assert np.all(saving_ratio_vec(p, 10, np.arange(1, 11)) == 0.0)

    def test_invalid_m_rejected(self):
        p = ChargingCostParams()
        with pytest.raises(ValueError):
            saving_ratio_vec(p, 5, np.array([0, 1]))
        with pytest.raises(ValueError):
            saving_ratio_vec(p, 5, np.array([1, 6]))

    @given(
        st.integers(2, 60),
        st.floats(0.0, 50.0, allow_nan=False),
        st.floats(0.0, 50.0, allow_nan=False),
    )
    def test_property_parity(self, n, q, d):
        p = ChargingCostParams(service_cost=q, delay_cost=d)
        ms = np.arange(1, n + 1)
        vec = saving_ratio_vec(p, n, ms)
        for m, r in zip(ms, vec):
            assert float(r) == saving_ratio(p, n, int(m))
