"""Tests for repro.incentives.mechanism (Algorithm 3)."""

import numpy as np
import pytest

from repro.energy import Fleet
from repro.geo import Point
from repro.incentives import (
    ChargingCostParams,
    IncentiveConfig,
    IncentiveMechanism,
    UserPopulation,
)


def grid_stations(nx=3, ny=3, spacing=400.0):
    return [Point(i * spacing, j * spacing) for j in range(ny) for i in range(nx)]


def eager_population():
    """Riders who accept essentially any offer (deterministic tests)."""
    return UserPopulation(walk_mean=1e6, walk_std=1.0, reward_mean=0.0, reward_std=0.0)


def reluctant_population():
    return UserPopulation(walk_mean=1.0, walk_std=0.0, reward_mean=1e9, reward_std=0.0)


@pytest.fixture
def fleet():
    f = Fleet(grid_stations(), n_bikes=90, rng=np.random.default_rng(0))
    # Deterministic energy layout: two low bikes at station 0, one at 4.
    for b in f.bikes:
        b.battery.level = 0.9
    f.bikes[0].battery.level = 0.10
    f.bikes[9].battery.level = 0.12
    f.bikes[4].battery.level = 0.15
    # bikes 0 and 9 sit at stations 0 and 0 (round robin: bike i at i%9).
    f.bikes[9].station = 0
    return f


class TestConfig:
    def test_defaults_valid(self):
        IncentiveConfig()

    def test_alpha_range(self):
        with pytest.raises(ValueError):
            IncentiveConfig(alpha=-0.1)
        with pytest.raises(ValueError):
            IncentiveConfig(alpha=1.1)

    def test_margin_validated(self):
        with pytest.raises(ValueError):
            IncentiveConfig(battery_margin=0.5)

    def test_slack_validated(self):
        with pytest.raises(ValueError):
            IncentiveConfig(mileage_slack=-0.1)


class TestIncentiveValue:
    def test_zero_when_no_low_bikes(self, fleet):
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        assert mech.incentive_for(8) == 0.0

    def test_formula(self, fleet):
        params = ChargingCostParams(service_cost=5.0, delay_cost=5.0)
        mech = IncentiveMechanism(fleet, params, config=IncentiveConfig(alpha=0.4))
        # Station 0 holds 2 low bikes and is first in the service order.
        t = mech.service_position(0)
        expected = 0.4 * (5.0 + t * 5.0) / 2
        assert mech.incentive_for(0) == pytest.approx(expected)

    def test_budget_never_exceeded_per_station(self, fleet):
        """v * |L_i| = alpha * (q + t*d) < q + t*d (Eq. 12)."""
        params = ChargingCostParams()
        for alpha in (0.2, 0.5, 0.9):
            mech = IncentiveMechanism(fleet, params, config=IncentiveConfig(alpha=alpha))
            low = fleet.low_energy_map()
            for station, bikes in low.items():
                v = mech.incentive_for(station)
                t = mech.service_position(station)
                budget = params.service_cost + t * params.delay_cost
                assert v * len(bikes) <= budget + 1e-9

    def test_service_position_ordering(self, fleet):
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        needing = fleet.stations_needing_service()
        positions = [mech.service_position(s) for s in needing]
        assert positions == list(range(1, len(needing) + 1))
        # A healthy station queues after all needing ones.
        assert mech.service_position(8) == len(needing) + 1


class TestAggregationSite:
    def test_mileage_equivalence(self, fleet):
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        k = mech.choose_aggregation_site(0, 8)  # diagonal trip
        assert k is not None
        trip = fleet.stations[0].distance_to(fleet.stations[8])
        leg = fleet.stations[0].distance_to(fleet.stations[k])
        assert abs(leg - trip) <= mech.config.mileage_slack * trip

    def test_excludes_origin_and_destination(self, fleet):
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        k = mech.choose_aggregation_site(0, 8)
        assert k not in (0, 8)

    def test_zero_length_trip_no_site(self, fleet):
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        assert mech.choose_aggregation_site(0, 0) is None

    def test_prefers_site_with_more_low_bikes(self, fleet):
        # Make station 7 hold a low bike; for the 0 -> 8 diagonal the
        # mileage-equivalent candidates are {2, 5, 6, 7}, so consolidation
        # should pick 7 over the empty alternatives.
        bike = fleet.bikes_at(7)[0]
        bike.battery.level = 0.11
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        assert mech.choose_aggregation_site(0, 8) == 7

    def test_explicit_target_preferred(self, fleet):
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), aggregation_targets={0: 2}
        )
        # Target 2 is at distance 800 on the x-axis; trip 0 -> 8 is ~1131.
        # Slack 0.35 * 1131 = 396 > |800 - 1131|, so 2 qualifies and wins.
        assert mech.choose_aggregation_site(0, 8) == 2


class TestOfferRide:
    def test_alpha_zero_never_offers(self, fleet):
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), config=IncentiveConfig(alpha=0.0),
            population=eager_population(),
        )
        out = mech.offer_ride(0, 8, fleet.stations[8])
        assert not out.offered
        assert mech.total_incentives_paid == 0.0

    def test_no_low_bikes_no_offer(self, fleet):
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), population=eager_population()
        )
        out = mech.offer_ride(8, 0, fleet.stations[0])
        assert not out.offered
        assert out.reason == "no low-energy bikes"

    def test_accepted_offer_moves_bike_and_pays(self, fleet):
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), population=eager_population(),
            rng=np.random.default_rng(1),
        )
        low_before = set(fleet.low_energy_map().get(0, []))
        out = mech.offer_ride(0, 8, fleet.stations[8])
        assert out.accepted
        assert out.bike_id in low_before
        assert fleet.bikes[out.bike_id].station == out.aggregation_station
        assert mech.total_incentives_paid == pytest.approx(out.incentive_paid)
        assert mech.acceptance_rate == 1.0

    def test_declined_offer_keeps_fleet(self, fleet):
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), population=reluctant_population(),
            rng=np.random.default_rng(2),
        )
        before = [b.station for b in fleet.bikes]
        out = mech.offer_ride(0, 8, fleet.stations[8])
        assert out.offered and not out.accepted
        assert [b.station for b in fleet.bikes] == before
        assert mech.total_incentives_paid == 0.0

    def test_dead_battery_blocks_relocation(self, fleet):
        for bike_id in (0, 9):
            fleet.bikes[bike_id].battery.level = 0.001
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), population=eager_population()
        )
        out = mech.offer_ride(0, 8, fleet.stations[8])
        assert not out.offered
        assert "battery" in out.reason

    def test_repeated_offers_drain_station(self, fleet):
        """Algorithm 3 keeps querying riders until L_i empties."""
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), population=eager_population(),
            rng=np.random.default_rng(3),
        )
        for _ in range(5):
            mech.offer_ride(0, 8, fleet.stations[8])
        assert fleet.low_energy_map().get(0, []) == []

    def test_aggregation_reduces_service_sites(self, fleet):
        # Trip 0 -> 2 is 800 m; the centre station 4 (565.7 m) is within
        # the mileage slack, so both low bikes at 0 consolidate onto the
        # already-low station 4: service sites drop from {0, 4} to {4}.
        sites_before = len(fleet.stations_needing_service())
        assert sites_before == 2
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), population=eager_population(),
            rng=np.random.default_rng(4),
            aggregation_targets={0: 4},
        )
        mech.offer_ride(0, 2, fleet.stations[2])
        mech.offer_ride(0, 2, fleet.stations[2])
        assert fleet.stations_needing_service() == [4]


class TestAggregationSiteParity:
    """The batched candidate scan must equal the scalar reference on
    every (origin, destination) pair, across randomized fleets."""

    def _assert_parity(self, mech, n_stations):
        for origin in range(n_stations):
            for destination in range(n_stations):
                assert mech.choose_aggregation_site(
                    origin, destination
                ) == mech.choose_aggregation_site_reference(origin, destination), (
                    f"diverged on {origin} -> {destination}"
                )

    def test_grid_fleet_all_pairs(self, fleet):
        mech = IncentiveMechanism(fleet, ChargingCostParams())
        self._assert_parity(mech, len(fleet.stations))

    def test_explicit_targets_all_pairs(self, fleet):
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(), aggregation_targets={0: 2, 3: 7, 8: 4}
        )
        self._assert_parity(mech, len(fleet.stations))

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_random_fleets_all_pairs(self, seed):
        rng = np.random.default_rng(seed)
        stations = [
            Point(float(x), float(y)) for x, y in rng.uniform(0, 1500, (12, 2))
        ]
        f = Fleet(stations, n_bikes=60, rng=np.random.default_rng(seed + 100))
        for b in f.bikes:
            b.battery.level = float(rng.uniform(0.05, 1.0))
        targets = {int(rng.integers(0, 12)): int(rng.integers(0, 12))}
        mech = IncentiveMechanism(
            f, ChargingCostParams(), aggregation_targets=targets,
            config=IncentiveConfig(mileage_slack=float(rng.uniform(0.1, 0.6))),
        )
        self._assert_parity(mech, len(stations))

    def test_coincident_stations_tie_break(self):
        # Duplicate positions force exact distance ties; the id tie-break
        # must resolve identically in both paths.
        stations = [Point(0.0, 0.0), Point(400.0, 0.0), Point(400.0, 0.0),
                    Point(0.0, 400.0), Point(400.0, 400.0)]
        f = Fleet(stations, n_bikes=10, rng=np.random.default_rng(7))
        mech = IncentiveMechanism(f, ChargingCostParams())
        for origin in range(len(stations)):
            for destination in range(len(stations)):
                assert mech.choose_aggregation_site(
                    origin, destination
                ) == mech.choose_aggregation_site_reference(origin, destination)
