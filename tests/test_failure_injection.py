"""Failure injection: degenerate states the system must survive.

Dead fleets, coincident anchors, constant series, zero capacities,
all-zero demand — states a long-running deployment will eventually hit.
The system should degrade gracefully (empty results, explicit errors),
never crash with an unrelated exception or corrupt its accounting.
"""

from datetime import datetime

import numpy as np
import pytest

from repro.core import (
    DemandPoint,
    EsharingConfig,
    EsharingPlanner,
    assign_with_capacity,
    constant_facility_cost,
    esharing_placement,
    meyerson_placement,
    offline_placement,
)
from repro.datasets import TripRecord
from repro.energy import Battery, BatteryConfig, Fleet
from repro.forecast import LstmConfig, LstmForecaster, MovingAverage
from repro.geo import Point
from repro.incentives import ChargingCostParams, IncentiveMechanism, UserPopulation
from repro.sim import ChargingOperator, OperatorConfig
from repro.stats import ks2d_fast


class TestDegenerateGeometry:
    def test_all_requests_at_one_point(self):
        stream = [Point(5.0, 5.0)] * 50
        res = meyerson_placement(
            stream, constant_facility_cost(100.0), np.random.default_rng(0)
        )
        assert res.n_stations == 1
        assert res.walking == 0.0

    def test_offline_with_identical_demands(self):
        demands = [DemandPoint(Point(1, 1), weight=3.0)] * 10
        res = offline_placement(demands, constant_facility_cost(50.0))
        assert res.n_stations == 1
        assert res.walking == 0.0

    def test_esharing_with_coincident_anchors(self):
        """All anchors on one point: w* = 0 must not divide-by-zero."""
        anchors = [Point(0, 0), Point(0, 0), Point(0, 0)]
        historical = np.zeros((20, 2))
        stream = [Point(float(i * 10), 0.0) for i in range(30)]
        res = esharing_placement(
            stream, anchors, constant_facility_cost(1000.0), historical,
            np.random.default_rng(1),
        )
        assert len(res.assignment) == 30
        assert np.isfinite(res.total)

    def test_esharing_single_anchor(self):
        res = esharing_placement(
            [Point(100, 100)], [Point(0, 0)], constant_facility_cost(1000.0),
            np.zeros((5, 2)), np.random.default_rng(2),
        )
        assert res.n_stations >= 1


class TestDeadFleet:
    def test_operator_on_fully_dead_fleet(self):
        fleet = Fleet([Point(0, 0), Point(1000, 0)], n_bikes=10,
                      rng=np.random.default_rng(0))
        for b in fleet.bikes:
            b.battery.level = 0.01
        report = ChargingOperator(
            ChargingCostParams(), OperatorConfig(working_hours=100.0)
        ).service_period(fleet)
        assert report.bikes_charged == 10
        assert fleet.low_energy_count() == 0

    def test_incentives_on_fully_dead_fleet(self):
        """Every bike too dead to relocate: offers must be refused, not
        crash, and no money paid."""
        fleet = Fleet([Point(0, 0), Point(500, 0), Point(1000, 0)], n_bikes=9,
                      rng=np.random.default_rng(1))
        for b in fleet.bikes:
            b.battery.level = 0.001
        mech = IncentiveMechanism(
            fleet, ChargingCostParams(),
            population=UserPopulation(walk_mean=1e6, reward_mean=0.0),
            rng=np.random.default_rng(2),
        )
        out = mech.offer_ride(0, 2, fleet.stations[2])
        assert not out.accepted
        assert mech.total_incentives_paid == 0.0

    def test_battery_cannot_go_negative_through_abuse(self):
        b = Battery(BatteryConfig(), level=0.001)
        for _ in range(50):
            b.ride(100_000.0)
            b.idle(10.0)
        assert b.level == 0.0


class TestDegenerateData:
    def test_ks_on_constant_samples(self):
        a = np.ones((50, 2))
        b = np.ones((50, 2))
        res = ks2d_fast(a, b)
        assert res.statistic == pytest.approx(0.0)

    def test_ks_on_disjoint_constant_samples(self):
        a = np.zeros((50, 2))
        b = np.ones((50, 2))
        assert ks2d_fast(a, b).statistic == pytest.approx(1.0)

    def test_lstm_on_constant_series(self):
        """std = 0 must not divide by zero; forecasts return the constant."""
        model = LstmForecaster(
            LstmConfig(lookback=6, hidden_size=8, n_layers=1, epochs=3, seed=0)
        )
        series = np.full(60, 42.0)
        model.fit(series)
        out = model.forecast(series, 3)
        assert np.all(np.isfinite(out))
        assert np.allclose(out, 42.0, atol=5.0)

    def test_ma_on_single_point_history(self):
        assert MovingAverage(window=5).forecast(np.array([7.0]), 2).tolist() == [7.0, 7.0]


class TestZeroCapacity:
    def test_all_zero_capacities(self):
        demands = [DemandPoint(Point(0, 0)), DemandPoint(Point(5, 5))]
        out = assign_with_capacity(demands, [Point(0, 0)], [0.0])
        assert out.unassigned == [0, 1]
        assert out.walking == 0.0
        assert not out.is_feasible


class TestPlannerAbuse:
    def test_remove_all_but_one_station_then_serve(self):
        anchors = [Point(0, 0), Point(500, 0), Point(1000, 0)]
        planner = EsharingPlanner(
            anchors, constant_facility_cost(1000.0), np.zeros((10, 2)),
            np.random.default_rng(3), EsharingConfig(),
        )
        planner.remove_station(2)
        planner.remove_station(1)
        decision = planner.offer(Point(100, 100))
        # Stable ids: the decision references an active station whose id
        # survives the removals (ids are never re-packed).
        assert decision.station_index in planner.station_set
        assert (
            planner.station_set.location(decision.station_index)
            in planner.stations
        )

    def test_zero_facility_cost_everywhere(self):
        """Free parking: everything opens, nothing breaks."""
        stream = [Point(float(i), float(i)) for i in range(20)]
        res = esharing_placement(
            stream, [Point(-100, -100)], constant_facility_cost(0.0),
            np.zeros((5, 2)), np.random.default_rng(4),
        )
        assert res.space == 0.0
        assert np.isfinite(res.total)
