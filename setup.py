"""Editable-install shim: this offline environment lacks the `wheel`
package, so `pip install -e .` (PEP 660) cannot build an editable wheel.
`python setup.py develop` installs the same editable package using only
setuptools. All metadata lives in pyproject.toml."""

from setuptools import setup

setup()
