"""Scenario: a concert causes a demand surge at an unexpected location.

Section III-C motivates the online algorithm with exactly this case —
"events such as concerts or sports games might lead to short-time demand
surge at previously unexpected locations".  This example shows the full
detection loop: the KS test flags the distribution shift, the planner
switches to the lenient Type-I penalty, and new stations open near the
venue; when the surge subsides, the system swings back to the strict
penalty anchored on history.

Run:  python examples/event_surge.py
"""

import numpy as np

from repro.core import (
    DemandPoint,
    EsharingConfig,
    EsharingPlanner,
    offline_placement,
    uniform_facility_cost,
)
from repro.datasets import SyntheticConfig, default_city, mobike_like_dataset
from repro.geo import DemandGrid, Point, UniformGrid


def main() -> None:
    city = default_city()
    dataset = mobike_like_dataset(
        seed=3, days=6,
        config=SyntheticConfig(trips_per_weekday=1200, trips_per_weekend_day=900),
    )

    # Anchor on normal history.
    grid = UniformGrid(city.box, cell_size=150.0)
    demand = DemandGrid(grid)
    demand.add_many(r.end for r in dataset)
    n_days = len(dataset.split_by_day())
    demands = [
        DemandPoint(grid.centroid(cell), count / n_days)
        for cell, count in demand.top_cells(120)
    ]
    cost_fn = uniform_facility_cost(10_000.0, np.random.default_rng(4))
    anchor = offline_placement(demands, cost_fn)
    historical = dataset.destination_array()
    print(f"anchor from history: {anchor.n_stations} stations")

    planner = EsharingPlanner(
        anchor.stations, cost_fn, historical, np.random.default_rng(5),
        EsharingConfig(beta=1.0, adaptive_tolerance=True),
    )

    rng = np.random.default_rng(6)
    venue = Point(city.box.max_x - 200.0, city.box.max_y - 200.0)

    def normal_request():
        return city.sample_destination(rng, weekend=False)

    def surge_request():
        off = rng.normal(0, 80.0, size=2)
        return city.box.clamp(venue.translate(float(off[0]), float(off[1])))

    phases = [
        ("normal evening", [normal_request() for _ in range(300)]),
        ("concert surge near the venue", [surge_request() for _ in range(250)]),
        ("back to normal", [normal_request() for _ in range(300)]),
    ]
    for label, stream in phases:
        opened_before = len(planner.online_opened)
        for dest in stream:
            planner.offer(dest)
        opened = len(planner.online_opened) - opened_before
        sim = planner.similarity_history[-1] if planner.similarity_history else float("nan")
        near_venue = sum(
            1 for i in planner.online_opened
            if planner.stations[i].distance_to(venue) < 400.0
        )
        print(
            f"[{label:32s}] penalty={planner.penalty.name:8s} "
            f"similarity={sim:5.1f}% opened={opened:2d} "
            f"(total near venue: {near_venue})"
        )

    result = planner.result()
    print(f"\nfinal placement: {result.summary()}")
    print(f"stations opened online over the whole evening: {len(result.online_opened)}")


if __name__ == "__main__":
    main()
