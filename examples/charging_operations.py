"""Scenario: a day of charging operations, with and without incentives.

Tier 2 end-to-end: riders stream through the system draining batteries,
the incentive mechanism (Algorithm 3) pays cooperative riders to ride
low-energy bikes to aggregation sites, and the charging operator tours
the demand sites at the end of the day.  The run is repeated with
incentives disabled to show the cost difference the paper reports in
Table VI.

Run:  python examples/charging_operations.py
"""

import numpy as np

from repro.core import (
    DemandPoint,
    EsharingPlanner,
    offline_placement,
    uniform_facility_cost,
)
from repro.datasets import SyntheticConfig, default_city, mobike_like_dataset
from repro.energy import Fleet
from repro.geo import DemandGrid, UniformGrid
from repro.incentives import ChargingCostParams, IncentiveConfig, UserPopulation
from repro.sim import OperatorConfig, SystemSimulator


def build_system(alpha: float, seed: int = 0):
    city = default_city()
    dataset = mobike_like_dataset(
        seed=seed, days=6,
        config=SyntheticConfig(trips_per_weekday=1200, trips_per_weekend_day=900),
    )
    by_day = dataset.split_by_day()
    days = sorted(by_day)
    history_days, test_day = days[:-1], days[-1]

    grid = UniformGrid(city.box, cell_size=150.0)
    demand = DemandGrid(grid)
    for day in history_days:
        demand.add_many(r.end for r in by_day[day])
    demands = [
        DemandPoint(grid.centroid(cell), count / len(history_days))
        for cell, count in demand.top_cells(120)
    ]
    cost_fn = uniform_facility_cost(4_000.0, np.random.default_rng(seed + 1))
    anchor = offline_placement(demands, cost_fn)
    historical = np.asarray(
        [(r.end.x, r.end.y) for day in history_days for r in by_day[day]]
    )
    planner = EsharingPlanner(
        anchor.stations, cost_fn, historical, np.random.default_rng(seed + 2)
    )
    fleet = Fleet(planner.stations, n_bikes=800, rng=np.random.default_rng(seed + 3))
    sim = SystemSimulator(
        planner,
        fleet,
        charging_params=ChargingCostParams(service_cost=60.0, delay_cost=5.0, energy_cost=2.0),
        incentive_config=IncentiveConfig(alpha=alpha, position_cap=10),
        population=UserPopulation(walk_mean=800.0, walk_std=300.0,
                                  reward_mean=2.0, reward_std=1.5),
        operator_config=OperatorConfig(
            working_hours=2.0, travel_speed_kmh=12.0, service_time_h=0.25,
            min_bikes_to_visit=1 if alpha == 0 else 2,
        ),
        rng=np.random.default_rng(seed + 4),
    )
    return sim, list(by_day[test_day])


def main() -> None:
    for alpha in (0.0, 0.4):
        sim, trips = build_system(alpha)
        label = "no incentives" if alpha == 0 else f"alpha = {alpha}"
        print(f"--- {label} ---")
        report = sim.run_period(trips)
        s = report.service
        print(f"trips executed: {report.trips_executed}/{report.trips_requested}")
        if alpha > 0:
            print(f"offers: {report.offers_made}, accepted: {report.offers_accepted} "
                  f"({100 * report.acceptance_rate:.0f}%), "
                  f"incentives paid: ${report.incentives_paid:.0f}")
        print(f"demand sites: {s.stations_needing_service}, "
              f"toured: {s.stations_served}, "
              f"tour length: {s.moving_distance_km:.1f} km")
        print(f"cost breakdown: service=${s.service_cost:.0f} "
              f"delay=${s.delay_cost:.0f} energy=${s.energy_cost:.0f} "
              f"incentives=${s.incentives_paid:.0f}")
        print(f"TOTAL: ${s.total_cost:.0f}   "
              f"charged within shift: {s.percent_charged:.0f}%")
        print()


if __name__ == "__main__":
    main()
