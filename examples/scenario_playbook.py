"""Scenario playbook: a concert and a road closure on the same day.

Uses the scenario DSL to schedule two disturbances over the base
workload — an evening concert surge at a park and an all-day road
closure downtown — and drives the full placement *service* (stable
station ids, footnote-2 retirement of emptied stations) through the
resulting request stream.  The output shows how the system redistributes
parking: stations retire where the closure killed demand, new ones open
at the concert venue.

Run:  python examples/scenario_playbook.py
"""

from datetime import datetime

import numpy as np

from repro.core import (
    DemandPoint,
    EsharingPlanner,
    PlacementService,
    offline_placement,
    uniform_facility_cost,
)
from repro.datasets import DemandEvent, Scenario, SyntheticConfig, default_city
from repro.energy import Fleet
from repro.experiments.ascii_plots import heatmap
from repro.geo import DemandGrid, Point, UniformGrid


def demand_heatmap(points, box, cells=14):
    mat = np.zeros((cells, cells))
    for p in points:
        col = min(int((p.x - box.min_x) / (box.width / cells)), cells - 1)
        row = min(int((p.y - box.min_y) / (box.height / cells)), cells - 1)
        mat[row, col] += 1
    return heatmap(mat)


def main() -> None:
    city = default_city()
    cfg = SyntheticConfig(trips_per_weekday=1500, trips_per_weekend_day=1100)

    # --- History: quiet days, no events.
    history = Scenario(city=city, config=cfg).generate(
        datetime(2017, 5, 8), days=2, seed=0
    )

    # --- The eventful day: a concert at the NE park, a closure downtown.
    venue = Point(city.box.max_x - 400, city.box.max_y - 400)
    downtown = Point(1450, 1450)
    eventful = Scenario(city=city, config=cfg)
    eventful.add_event(DemandEvent(
        start=datetime(2017, 5, 10, 18), end=datetime(2017, 5, 10, 23),
        location=venue, radius_m=250.0, kind="surge", intensity=0.5,
    ))
    eventful.add_event(DemandEvent(
        start=datetime(2017, 5, 10, 0), end=datetime(2017, 5, 11, 0),
        location=downtown, radius_m=450.0, kind="closure",
    ))
    day = eventful.generate(datetime(2017, 5, 10), days=1, seed=1)

    print("historical demand:")
    print(demand_heatmap(history.destinations(), city.box))
    print("\neventful-day demand (concert NE, closure centre):")
    print(demand_heatmap(day.destinations(), city.box))

    # --- Anchor on history, serve the eventful day.
    grid = UniformGrid(city.box, cell_size=150.0)
    demand = DemandGrid(grid)
    demand.add_many(history.destinations())
    demands = [
        DemandPoint(grid.centroid(cell), count / 2)
        for cell, count in demand.top_cells(120)
    ]
    cost_fn = uniform_facility_cost(10_000.0, np.random.default_rng(2))
    anchor = offline_placement(demands, cost_fn)
    planner = EsharingPlanner(
        anchor.stations, cost_fn, history.destination_array(),
        np.random.default_rng(3),
    )
    fleet = Fleet(planner.stations, n_bikes=500, rng=np.random.default_rng(4))
    service = PlacementService(planner, fleet)

    for trip in day:
        service.handle_trip(trip)
    service.consistency_check()

    served = sum(1 for r in service.responses if r.served)
    opened = [r for r in service.responses if r.opened_new]
    near_venue = sum(
        1 for r in opened
        if service.station_location(r.destination_station).distance_to(venue) < 500
    )
    print(f"\nserved {served}/{len(service.responses)} trips")
    print(f"anchor stations: {anchor.n_stations}; opened online: {len(opened)} "
          f"({near_venue} near the concert venue)")
    print(f"stations retired after being emptied (footnote 2): {len(service.retired)}")
    print(f"similarity trace (KS vs history): "
          f"{[round(s, 1) for s in planner.similarity_history[-6:]]}")


if __name__ == "__main__":
    main()
