"""Scenario: the full Mobike data pipeline on real-format CSV files.

The paper evaluates on the Mobike Big Data Challenge dataset (geohashed
CSV).  This example materialises a synthetic dataset in that exact
schema, then runs the same pipeline a user with the *real* file would:
load, project geohashes to metres, measure day-of-week similarity with
the 2-D KS test (Table IV's block structure), build the hourly demand
series, and train the LSTM forecaster against the MA/ARIMA baselines.

Run:  python examples/mobike_pipeline.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro.datasets import (
    SyntheticConfig,
    default_city,
    load_mobike_csv,
    mobike_like_dataset,
    save_mobike_csv,
)
from repro.forecast import (
    Arima,
    LstmConfig,
    LstmForecaster,
    MovingAverage,
    build_demand_series,
    rolling_rmse,
    weekday_weekend_split,
)
from repro.geo import UniformGrid
from repro.stats import ks2d_fast


def main() -> None:
    # --- 1. Materialise a Mobike-schema CSV (drop-in for the real file).
    dataset = mobike_like_dataset(
        seed=11, days=14,
        config=SyntheticConfig(trips_per_weekday=1500, trips_per_weekend_day=1100),
    )
    with tempfile.TemporaryDirectory() as tmp:
        csv_path = Path(tmp) / "mobike_trips.csv"
        save_mobike_csv(dataset, csv_path)
        size_kb = csv_path.stat().st_size // 1024
        print(f"wrote {csv_path.name}: {len(dataset)} rows, {size_kb} KB "
              "(orderid,userid,bikeid,biketype,starttime,geohashed_*_loc)")

        # --- 2. Load it back the way a user loads the real dataset.
        trips = load_mobike_csv(csv_path)
    print(f"loaded {len(trips)} trips spanning {trips.span[0].date()} "
          f"to {trips.span[1].date()}")

    # --- 3. Day-of-week similarity (Table IV's block structure).
    mon = trips.on_weekday(0).destination_array()
    tue = trips.on_weekday(1).destination_array()
    sat = trips.on_weekday(5).destination_array()
    print(f"KS similarity Mon-Tue: {ks2d_fast(mon, tue).similarity:.1f}%  "
          f"Mon-Sat: {ks2d_fast(mon, sat).similarity:.1f}% "
          "(weekday block should be clearly higher)")

    # --- 4. Hourly demand series and the prediction engine (Table II).
    grid = UniformGrid(trips.bounding_box(margin=50.0), cell_size=300.0)
    series = build_demand_series(trips, grid)
    (wd_train, wd_test), _ = weekday_weekend_split(series)
    models = {
        "LSTM 2-layer back=12": LstmForecaster(
            LstmConfig(lookback=12, hidden_size=24, n_layers=2, epochs=30, seed=0)
        ),
        "MA wz=3": MovingAverage(window=3),
        "ARIMA(6,0,0)": Arima(p=6, d=0),
    }
    print("walk-forward RMSE over the next 6 h (weekday test split):")
    for name, model in models.items():
        err = rolling_rmse(model, wd_train, wd_test, horizon=6)
        print(f"  {name:22s} {err:6.2f}")


if __name__ == "__main__":
    main()
