"""Quickstart: plan parking locations for a dockless E-bike fleet.

Generates a week of synthetic city trips, computes the near-optimal
offline parking placement on the historical demand (Algorithm 1), then
streams the next day's requests through E-Sharing's online algorithm
(Algorithm 2) and compares it against the Meyerson baseline.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import (
    DemandPoint,
    esharing_placement,
    meyerson_placement,
    offline_placement,
    uniform_facility_cost,
)
from repro.datasets import SyntheticConfig, default_city, mobike_like_dataset
from repro.geo import UniformGrid


def main() -> None:
    # --- 1. A week of city trips (synthetic stand-in for the Mobike CSV).
    city = default_city()
    dataset = mobike_like_dataset(
        seed=7, days=8,
        config=SyntheticConfig(trips_per_weekday=1200, trips_per_weekend_day=900),
    )
    by_day = dataset.split_by_day()
    days = sorted(by_day)
    history_days, test_day = days[:-1], days[-1]
    print(f"workload: {len(dataset)} trips over {len(days)} days in a "
          f"{city.box.width / 1000:.0f}x{city.box.height / 1000:.0f} km field")

    # --- 2. Bin historical demand onto the grid (the candidate set N).
    grid = UniformGrid(city.box, cell_size=150.0)
    from repro.geo import DemandGrid

    demand = DemandGrid(grid)
    for day in history_days:
        demand.add_many(r.end for r in by_day[day])
    demands = [
        DemandPoint(grid.centroid(cell), count / len(history_days))
        for cell, count in demand.top_cells(120)
    ]

    # --- 3. Offline anchor (Algorithm 1, the 1.61-factor greedy).
    cost_fn = uniform_facility_cost(10_000.0, np.random.default_rng(1))
    anchor = offline_placement(demands, cost_fn)
    print(f"offline anchor: {anchor.summary()}")

    # --- 4. Stream the test day online: E-Sharing vs Meyerson.
    stream = [r.end for r in by_day[test_day]]
    historical = np.asarray(
        [(r.end.x, r.end.y) for day in history_days for r in by_day[day]]
    )
    es = esharing_placement(
        stream, anchor.stations, cost_fn, historical, np.random.default_rng(2)
    )
    mey = meyerson_placement(stream, cost_fn, np.random.default_rng(2))
    print(f"E-Sharing online: {es.summary()} "
          f"({len(es.online_opened)} stations opened online)")
    print(f"Meyerson online:  {mey.summary()}")
    saving = 100.0 * (1.0 - es.total / mey.total)
    print(f"=> E-Sharing saves {saving:.0f}% of total cost vs Meyerson "
          f"on {len(stream)} live requests")
    print(f"   average walk per user: {es.walking / len(stream):.0f} m")


if __name__ == "__main__":
    main()
